//! The multi-project fleet: thousands of registered tenants served by a
//! bounded pool of engine workers behind one front door.
//!
//! One process = one [`ProjectServer`] was the story until now; a fleet
//! turns that into one process = one **root directory** of per-project
//! journal dirs. The moving parts, outermost first:
//!
//! * [`ProjectRegistry`] — owns the fleet root, the set of registered
//!   project names (one subdirectory each) and the shared
//!   [`BlueprintCache`], so every tenant on the same blueprint source
//!   shares a single [`CompiledBlueprint`] allocation.
//! * [`spawn_fleet`] — starts one **router** thread plus `N` **engine
//!   worker** threads. The router maps sessions to projects (the
//!   `project <name>` attach), pins each project to exactly one worker
//!   while it is resident, and LRU-evicts idle projects when more than
//!   `max_active` want to be in memory at once. Workers host the
//!   [`ProjectService`]s currently pinned to them and run the same
//!   group-commit batch loop as a single-project node.
//! * [`FleetSession`] — a [`RequestSink`], so the existing TCP front
//!   door ([`serve_with`](crate::engine::service::serve_with)) serves a
//!   fleet unchanged: one connection, one session, `project <name>`
//!   first, then the ordinary command protocol.
//!
//! # Pinning and the single-threaded-interpreter invariant
//!
//! A project is served by **at most one worker at a time**. The router
//! enforces this by construction: a cold project is pinned to a worker
//! before its first request is forwarded, stays pinned until an eviction
//! completes (the worker acknowledges with a `RouterMsg::Evicted` after
//! flushing and checkpointing), and requests arriving mid-eviction are
//! parked at the router and re-dispatched after the acknowledgement.
//! Inside a worker each service is exactly the single-threaded
//! interpreter of [`crate::engine::service`] — the fleet adds routing
//! around it, never concurrency inside it.
//!
//! # Eviction state machine
//!
//! A registered project is in one of three states at the router:
//!
//! ```text
//!           activate (pin to least-loaded worker)
//!   Cold ───────────────────────────────────────────▶ Resident
//!    ▲                                                   │
//!    │  Evicted ack (worker flushed + checkpointed)      │ LRU victim
//!    └──────────────────────────── Evicting ◀────────────┘
//! ```
//!
//! Activation is lazy and goes through the journal: the worker builds a
//! service from the shared compiled blueprint and either recovers
//! `snapshot + journal` (warm disk state) or enables a fresh journal
//! (first activation). Eviction flushes the group-commit buffer and
//! folds the journal into a checkpoint, so a cold project is exactly
//! `snapshot.ddb` + an empty journal tail — which is why an
//! evict/reactivate cycle is byte-identical to a server that never
//! evicted (proven in `tests/fleet.rs`).
//!
//! # Failure modes
//!
//! A panic inside a request poisons **only that project**: the worker
//! catches it, drops the service without flushing (the group-commit
//! window is lost, exactly the crash contract), answers
//! [`ApiError::ProjectPoisoned`], and the next request re-activates the
//! project from its journal. Other projects resident on the same worker
//! are untouched. A worker *thread* death (send failure) unpins all its
//! projects; they re-activate elsewhere on demand.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::engine::api::{ApiError, ProjectEntry, Request, Response, SessionId};
use crate::engine::compile::CompiledBlueprint;
use crate::engine::exec::ScriptExecutor;
use crate::engine::server::{ProjectServer, SNAPSHOT_FILE};
use crate::engine::service::{
    loop_gone, Envelope, ProjectService, RequestSink, MAX_GROUP_COMMIT_WINDOW,
};
use crate::lang::ast::Blueprint;
use crate::lang::{parser, validate};

/// How often an otherwise-idle worker wakes to absorb finished detached
/// tool invocations (mirrors the single-project command loop).
const INVOKE_PUMP: std::time::Duration = std::time::Duration::from_millis(25);

// ---------------------------------------------------------------------
// Configuration and counters
// ---------------------------------------------------------------------

/// Fleet sizing knobs (`damocles_server --fleet <root> --engine-workers N
/// --max-active M`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Engine worker threads (each hosts the projects pinned to it).
    pub engine_workers: usize,
    /// Ceiling on simultaneously pinned (resident or evicting) projects;
    /// beyond it the least-recently-used resident is evicted.
    pub max_active: usize,
    /// `checkpoint_every` handed to each project's journal (fold the
    /// journal into a snapshot every this many records).
    pub checkpoint_every: u64,
    /// Requests parked per project while it waits for a slot or an
    /// eviction to finish; past it the router answers
    /// [`ApiError::ProjectBusy`] instead of queueing (backpressure).
    pub park_limit: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            engine_workers: 4,
            max_active: 64,
            checkpoint_every: 1024,
            park_limit: 1024,
        }
    }
}

/// Fleet-wide gauges and lifetime counters, surfaced through `stat`
/// (`active_projects`, `resident_projects`, `activations`, `evictions`).
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Gauge: projects registered under the fleet root.
    pub registered: AtomicU64,
    /// Gauge: project services currently in memory across all workers.
    pub resident: AtomicU64,
    /// Lifetime cold→resident transitions (journal recoveries + first
    /// activations).
    pub activations: AtomicU64,
    /// Lifetime resident→cold transitions, including panic poisonings.
    pub evictions: AtomicU64,
}

// ---------------------------------------------------------------------
// The blueprint cache
// ---------------------------------------------------------------------

/// FNV-1a 64-bit over the blueprint source — the cache's content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug, Clone)]
struct CachedBlueprint {
    /// The exact source text — compared on every lookup so a hash
    /// collision degrades to a recompile, never to the wrong blueprint.
    source: String,
    blueprint: Arc<Blueprint>,
    compiled: Arc<CompiledBlueprint>,
}

/// Content-hash cache of validated, compiled blueprints: tenants loading
/// the same source share one [`CompiledBlueprint`] allocation (they are
/// immutable per generation, so sharing is free).
#[derive(Debug, Default)]
pub struct BlueprintCache {
    entries: Mutex<HashMap<u64, Vec<CachedBlueprint>>>,
    hits: AtomicU64,
}

impl BlueprintCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses, validates and compiles `source` — or returns the shared
    /// handles from an earlier call with byte-identical source.
    ///
    /// # Errors
    ///
    /// [`ApiError::BlueprintSyntax`] on parse errors,
    /// [`ApiError::InvalidBlueprint`] when validation finds errors.
    #[allow(clippy::missing_panics_doc)] // mutex poisoning only
    pub fn get_or_compile(
        &self,
        source: &str,
    ) -> Result<(Arc<Blueprint>, Arc<CompiledBlueprint>), ApiError> {
        let hash = fnv1a(source.as_bytes());
        let mut entries = self.entries.lock().expect("blueprint cache poisoned");
        if let Some(bucket) = entries.get(&hash) {
            if let Some(hit) = bucket.iter().find(|c| c.source == source) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&hit.blueprint), Arc::clone(&hit.compiled)));
            }
        }
        let blueprint = parser::parse(source).map_err(|e| ApiError::BlueprintSyntax {
            message: e.to_string(),
        })?;
        validate::check(&blueprint).map_err(|issues| ApiError::InvalidBlueprint {
            issues: issues.iter().map(ToString::to_string).collect(),
        })?;
        let compiled = Arc::new(CompiledBlueprint::compile(&blueprint));
        let blueprint = Arc::new(blueprint);
        entries.entry(hash).or_default().push(CachedBlueprint {
            source: source.to_string(),
            blueprint: Arc::clone(&blueprint),
            compiled: Arc::clone(&compiled),
        });
        Ok((blueprint, compiled))
    }

    /// Lookups answered from the cache since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Distinct blueprints cached.
    #[allow(clippy::missing_panics_doc)] // mutex poisoning only
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("blueprint cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// Validates a project name as a single safe path component under the
/// fleet root.
fn check_name(name: &str) -> Result<(), ApiError> {
    let bad = |detail: String| ApiError::Policy { detail };
    if name.is_empty() || name.len() > 128 {
        return Err(bad(format!(
            "project name must be 1..=128 bytes, got {}",
            name.len()
        )));
    }
    if name == "." || name == ".." {
        return Err(bad(format!("project name `{name}` is reserved")));
    }
    if name
        .chars()
        .any(|c| c == '/' || c == '\\' || c == '\0' || c.is_control())
    {
        return Err(bad(format!(
            "project name `{name}` may not contain path separators or control characters"
        )));
    }
    Ok(())
}

/// The fleet root: a directory of per-project journal dirs, the set of
/// registered project names, and the blueprint every tenant runs
/// (shared through a [`BlueprintCache`]).
#[derive(Debug)]
pub struct ProjectRegistry {
    root: PathBuf,
    config: FleetConfig,
    blueprint: Arc<Blueprint>,
    compiled: Arc<CompiledBlueprint>,
    cache: Arc<BlueprintCache>,
    registered: BTreeSet<String>,
}

impl ProjectRegistry {
    /// Opens (creating if needed) a fleet root, compiling `source`
    /// through a fresh [`BlueprintCache`], and adopts every existing
    /// subdirectory as a registered project.
    ///
    /// # Errors
    ///
    /// Blueprint parse/validation errors, or [`ApiError::Io`] when the
    /// root cannot be created or scanned.
    pub fn open(
        root: impl Into<PathBuf>,
        source: &str,
        config: FleetConfig,
    ) -> Result<Self, ApiError> {
        Self::open_with_cache(root, source, config, Arc::new(BlueprintCache::new()))
    }

    /// [`ProjectRegistry::open`] with a caller-supplied cache — so
    /// several fleets (or a fleet and a harness) share compilations.
    ///
    /// # Errors
    ///
    /// As [`ProjectRegistry::open`].
    pub fn open_with_cache(
        root: impl Into<PathBuf>,
        source: &str,
        config: FleetConfig,
        cache: Arc<BlueprintCache>,
    ) -> Result<Self, ApiError> {
        let root = root.into();
        let (blueprint, compiled) = cache.get_or_compile(source)?;
        std::fs::create_dir_all(&root).map_err(|e| ApiError::Io {
            reason: format!("cannot create fleet root {}: {e}", root.display()),
        })?;
        let mut registered = BTreeSet::new();
        let scan = std::fs::read_dir(&root).map_err(|e| ApiError::Io {
            reason: format!("cannot scan fleet root {}: {e}", root.display()),
        })?;
        for entry in scan {
            let entry = entry.map_err(|e| ApiError::Io {
                reason: format!("cannot scan fleet root {}: {e}", root.display()),
            })?;
            if !entry.path().is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if check_name(name).is_ok() {
                    registered.insert(name.to_string());
                }
            }
        }
        Ok(ProjectRegistry {
            root,
            config,
            blueprint,
            compiled,
            cache,
            registered,
        })
    }

    /// Registers a project (creating its journal directory); returns
    /// `false` when it already existed.
    ///
    /// # Errors
    ///
    /// [`ApiError::Policy`] for an invalid name, [`ApiError::Io`] when
    /// the directory cannot be created.
    pub fn register(&mut self, name: &str) -> Result<bool, ApiError> {
        check_name(name)?;
        if self.registered.contains(name) {
            return Ok(false);
        }
        std::fs::create_dir_all(self.root.join(name)).map_err(|e| ApiError::Io {
            reason: format!("cannot create project dir for `{name}`: {e}"),
        })?;
        self.registered.insert(name.to_string());
        Ok(true)
    }

    /// The fleet root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The sizing knobs.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Registered project names, sorted.
    pub fn projects(&self) -> impl Iterator<Item = &str> {
        self.registered.iter().map(String::as_str)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.registered.contains(name)
    }

    /// The blueprint cache compilations go through.
    pub fn blueprint_cache(&self) -> Arc<BlueprintCache> {
        Arc::clone(&self.cache)
    }

    /// The shared compiled blueprint every tenant runs.
    pub fn compiled(&self) -> Arc<CompiledBlueprint> {
        Arc::clone(&self.compiled)
    }
}

// ---------------------------------------------------------------------
// Fleet wiring: messages, shared state, handles
// ---------------------------------------------------------------------

/// Everything a worker needs to activate a project on demand.
#[derive(Debug)]
struct FleetShared {
    root: PathBuf,
    config: FleetConfig,
    blueprint: Arc<Blueprint>,
    compiled: Arc<CompiledBlueprint>,
    counters: Arc<FleetCounters>,
}

/// Router inbox.
#[derive(Debug)]
enum RouterMsg {
    /// A client request (attach, list, or a routable project command).
    Client(Envelope),
    /// A worker finished evicting `project` (flushed + checkpointed).
    Evicted { project: String },
    /// The last [`FleetHandle`]/[`FleetSession`] was dropped.
    Shutdown,
}

/// Worker inbox.
#[derive(Debug)]
enum WorkerMsg {
    /// Execute one request against `project` (activating it if cold).
    Execute { project: String, env: Envelope },
    /// Flush + checkpoint `project`, drop it, and acknowledge with
    /// [`RouterMsg::Evicted`].
    Evict { project: String },
}

/// Shared by every handle and session; dropping the last one tells the
/// router to shut the fleet down (workers then drain and exit on channel
/// disconnect).
#[derive(Debug)]
struct HandleInner {
    tx: Sender<RouterMsg>,
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        let _ = self.tx.send(RouterMsg::Shutdown);
    }
}

/// A cloneable handle to a running fleet; client surfaces open sessions
/// through it exactly as [`ProjectHandle`](crate::engine::service::ProjectHandle)
/// does for a single project.
#[derive(Debug, Clone)]
pub struct FleetHandle {
    inner: Arc<HandleInner>,
    next_session: Arc<AtomicU64>,
    counters: Arc<FleetCounters>,
}

impl FleetHandle {
    /// Opens a new tagged session (attach a project before routing
    /// commands through it).
    pub fn session(&self) -> FleetSession {
        FleetSession {
            id: SessionId(self.next_session.fetch_add(1, Ordering::Relaxed)),
            inner: Arc::clone(&self.inner),
        }
    }

    /// The fleet's counters (shared with every worker).
    pub fn counters(&self) -> Arc<FleetCounters> {
        Arc::clone(&self.counters)
    }
}

/// One client session at the fleet router. Attach with
/// [`Request::Attach`] (`project <name>`), then use the ordinary command
/// protocol; requests of all sessions attached to one project serialize
/// through that project's worker pin.
#[derive(Debug, Clone)]
pub struct FleetSession {
    id: SessionId,
    inner: Arc<HandleInner>,
}

impl FleetSession {
    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Submits a request without waiting; the receiver yields the
    /// response once the serving worker has executed and journaled it.
    pub fn submit(&self, request: Request) -> Receiver<Response> {
        let (reply, rx) = unbounded();
        let env = Envelope::new(self.id, request, reply.clone());
        if self.inner.tx.send(RouterMsg::Client(env)).is_err() {
            let _ = reply.send(Response::Error(loop_gone()));
        }
        rx
    }

    /// Submits a request and waits for its response.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request)
            .recv()
            .unwrap_or_else(|| Response::Error(loop_gone()))
    }
}

impl RequestSink for FleetSession {
    fn id(&self) -> SessionId {
        FleetSession::id(self)
    }

    fn submit(&self, request: Request) -> Receiver<Response> {
        FleetSession::submit(self, request)
    }
}

/// Join handles for a fleet's threads; [`FleetJoin::join`] after
/// dropping every [`FleetHandle`] and [`FleetSession`].
#[derive(Debug)]
pub struct FleetJoin {
    router: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl FleetJoin {
    /// Waits for the router and every worker to exit (each worker
    /// flushes and checkpoints its resident projects on the way out).
    pub fn join(self) {
        let _ = self.router.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Spawns the fleet: one router thread plus
/// [`FleetConfig::engine_workers`] engine worker threads serving the
/// registry's projects.
pub fn spawn_fleet<E>(registry: ProjectRegistry) -> (FleetHandle, FleetJoin)
where
    E: ScriptExecutor + Default + Send + 'static,
{
    let ProjectRegistry {
        root,
        config,
        blueprint,
        compiled,
        registered,
        ..
    } = registry;
    let counters = Arc::new(FleetCounters::default());
    counters
        .registered
        .store(registered.len() as u64, Ordering::Relaxed);
    let shared = Arc::new(FleetShared {
        root,
        config: config.clone(),
        blueprint,
        compiled,
        counters: Arc::clone(&counters),
    });
    let (router_tx, router_rx) = unbounded();
    let n_workers = config.engine_workers.max(1);
    let mut worker_txs = Vec::with_capacity(n_workers);
    let mut workers = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        let (tx, rx) = unbounded();
        let shared = Arc::clone(&shared);
        let router = router_tx.clone();
        let join = std::thread::Builder::new()
            .name(format!("fleet-worker-{w}"))
            .spawn(move || run_worker::<E>(&rx, &router, &shared))
            .expect("spawn fleet worker");
        worker_txs.push(Some(tx));
        workers.push(join);
    }
    let router_shared = Arc::clone(&shared);
    let router = std::thread::Builder::new()
        .name("fleet-router".to_string())
        .spawn(move || {
            Router::new(worker_txs, registered, router_shared).run(&router_rx);
        })
        .expect("spawn fleet router");
    (
        FleetHandle {
            inner: Arc::new(HandleInner { tx: router_tx }),
            next_session: Arc::new(AtomicU64::new(1)),
            counters,
        },
        FleetJoin { router, workers },
    )
}

// ---------------------------------------------------------------------
// The router
// ---------------------------------------------------------------------

/// Where a pinned project is in its life cycle (absent = cold).
#[derive(Debug)]
enum ProjState {
    /// Pinned to `worker`; `last_used` is the LRU stamp.
    Resident { worker: usize, last_used: u64 },
    /// An eviction is in flight on `worker`; requests park until the
    /// [`RouterMsg::Evicted`] acknowledgement frees the slot.
    Evicting { worker: usize },
}

struct Router {
    /// Worker inboxes; `None` marks a dead worker thread.
    workers: Vec<Option<Sender<WorkerMsg>>>,
    /// Pinned projects per worker (for least-loaded placement).
    worker_load: Vec<usize>,
    registered: BTreeSet<String>,
    /// Pinned projects (resident or evicting); `len()` is the count the
    /// `max_active` ceiling applies to.
    state: HashMap<String, ProjState>,
    /// Which project each session attached to.
    attachments: HashMap<SessionId, String>,
    /// Requests waiting for their project's slot, per project.
    parked: HashMap<String, VecDeque<Envelope>>,
    /// Projects with parked requests, in arrival order, waiting for a
    /// free slot.
    waiting: VecDeque<String>,
    /// LRU clock (bumped per routed request).
    clock: u64,
    shared: Arc<FleetShared>,
}

impl Router {
    fn new(
        workers: Vec<Option<Sender<WorkerMsg>>>,
        registered: BTreeSet<String>,
        shared: Arc<FleetShared>,
    ) -> Self {
        let worker_load = vec![0; workers.len()];
        Router {
            workers,
            worker_load,
            registered,
            state: HashMap::new(),
            attachments: HashMap::new(),
            parked: HashMap::new(),
            waiting: VecDeque::new(),
            clock: 0,
            shared,
        }
    }

    fn run(mut self, rx: &Receiver<RouterMsg>) {
        loop {
            match rx.recv() {
                Some(RouterMsg::Client(env)) => self.route(env),
                Some(RouterMsg::Evicted { project }) => self.on_evicted(&project),
                Some(RouterMsg::Shutdown) | None => break,
            }
        }
        // Parked requests will never run: say so instead of hanging the
        // client. Dropping the worker senders (with `self`) disconnects
        // the workers, which flush + checkpoint their residents and exit.
        for (_, queue) in self.parked.drain() {
            for env in queue {
                env.respond(Response::Error(loop_gone()));
            }
        }
    }

    fn route(&mut self, env: Envelope) {
        match &env.request {
            Request::Attach { .. } => {
                let (session, request, reply) = env.into_parts();
                let (project, create) = match request {
                    Request::Attach { project, create } => (project, create),
                    _ => unreachable!("matched Attach above"),
                };
                match self.attach(&project, create) {
                    Ok(created) => {
                        self.attachments.insert(session, project.clone());
                        let _ = reply.send(Response::Attached { project, created });
                    }
                    Err(e) => {
                        let _ = reply.send(Response::Error(e));
                    }
                }
            }
            Request::ListProjects => {
                let entries = self
                    .registered
                    .iter()
                    .map(|name| ProjectEntry {
                        name: name.clone(),
                        active: matches!(self.state.get(name), Some(ProjState::Resident { .. })),
                    })
                    .collect();
                env.respond(Response::Projects { entries });
            }
            Request::TailFrom { .. } => {
                // Tail streaming switches the *transport* into a record
                // stream — a per-project concern the multiplexing front
                // door cannot honor. Follow a project's journal dir
                // directly instead.
                env.respond(Response::Error(ApiError::Journal {
                    reason: "tail streaming is not available through a fleet front door; \
                             run a follower on the project's journal directory instead"
                        .to_string(),
                }));
            }
            _ => match self.attachments.get(&env.session).cloned() {
                Some(project) => self.dispatch(&project, env),
                None => env.respond(Response::Error(ApiError::NotAttached)),
            },
        }
    }

    fn attach(&mut self, project: &str, create: bool) -> Result<bool, ApiError> {
        check_name(project)?;
        if self.registered.contains(project) {
            return Ok(false);
        }
        if !create {
            return Err(ApiError::NoSuchProject {
                project: project.to_string(),
            });
        }
        std::fs::create_dir_all(self.shared.root.join(project)).map_err(|e| ApiError::Io {
            reason: format!("cannot create project dir for `{project}`: {e}"),
        })?;
        self.registered.insert(project.to_string());
        self.shared
            .counters
            .registered
            .store(self.registered.len() as u64, Ordering::Relaxed);
        Ok(true)
    }

    fn dispatch(&mut self, project: &str, env: Envelope) {
        self.clock += 1;
        match self.state.get_mut(project) {
            Some(ProjState::Resident { worker, last_used }) => {
                *last_used = self.clock;
                let worker = *worker;
                self.forward(worker, project, env);
            }
            Some(ProjState::Evicting { .. }) => self.park(project, env),
            None => {
                if self.state.len() < self.shared.config.max_active {
                    match self.pin(project) {
                        Some(worker) => self.forward(worker, project, env),
                        None => env.respond(Response::Error(no_workers())),
                    }
                } else {
                    self.park(project, env);
                    self.ensure_evictions();
                }
            }
        }
    }

    /// Pins a cold project to the least-loaded live worker.
    fn pin(&mut self, project: &str) -> Option<usize> {
        let worker = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, tx)| tx.is_some())
            .map(|(w, _)| w)
            .min_by_key(|&w| self.worker_load[w])?;
        self.clock += 1;
        self.state.insert(
            project.to_string(),
            ProjState::Resident {
                worker,
                last_used: self.clock,
            },
        );
        self.worker_load[worker] += 1;
        Some(worker)
    }

    fn forward(&mut self, worker: usize, project: &str, env: Envelope) {
        let sent = match self.workers[worker].as_ref() {
            Some(tx) => tx
                .send(WorkerMsg::Execute {
                    project: project.to_string(),
                    env,
                })
                .map_err(|e| match e.0 {
                    WorkerMsg::Execute { env, .. } => env,
                    WorkerMsg::Evict { .. } => unreachable!("sent an Execute"),
                }),
            None => unreachable!("forward targets come from live pins"),
        };
        if let Err(env) = sent {
            // The worker thread died mid-send: unpin everything it held
            // and re-dispatch (the projects re-activate from their
            // journals on other workers).
            self.worker_gone(worker);
            self.dispatch(project, env);
        }
    }

    fn park(&mut self, project: &str, env: Envelope) {
        let queue = self.parked.entry(project.to_string()).or_default();
        if queue.len() >= self.shared.config.park_limit {
            env.respond(Response::Error(ApiError::ProjectBusy {
                project: project.to_string(),
            }));
            return;
        }
        let first = queue.is_empty();
        queue.push_back(env);
        // A cold project parks only while waiting for a slot; an
        // evicting one joins the waiting list when its ack arrives.
        if first && !self.state.contains_key(project) {
            self.enqueue_waiting(project);
        }
    }

    fn enqueue_waiting(&mut self, project: &str) {
        if !self.waiting.iter().any(|p| p == project) {
            self.waiting.push_back(project.to_string());
        }
    }

    /// Starts enough LRU evictions to eventually free a slot for every
    /// waiting project.
    fn ensure_evictions(&mut self) {
        let evicting = self
            .state
            .values()
            .filter(|s| matches!(s, ProjState::Evicting { .. }))
            .count();
        let needed = self.waiting.len().saturating_sub(evicting);
        for _ in 0..needed {
            if !self.begin_eviction() {
                break;
            }
        }
    }

    /// Asks the worker holding the least-recently-used resident project
    /// to evict it. Returns `false` when no resident victim exists.
    fn begin_eviction(&mut self) -> bool {
        let victim = self
            .state
            .iter()
            .filter_map(|(p, s)| match s {
                ProjState::Resident { worker, last_used } => Some((p.clone(), *worker, *last_used)),
                ProjState::Evicting { .. } => None,
            })
            .min_by_key(|&(_, _, last_used)| last_used);
        let Some((project, worker, _)) = victim else {
            return false;
        };
        match self.workers[worker].as_ref() {
            Some(tx) => {
                if tx
                    .send(WorkerMsg::Evict {
                        project: project.clone(),
                    })
                    .is_ok()
                {
                    self.state.insert(project, ProjState::Evicting { worker });
                    true
                } else {
                    self.worker_gone(worker);
                    // The dead worker freed its slots; the waiting list
                    // drains through `worker_gone`.
                    true
                }
            }
            None => unreachable!("resident pins only point at live workers"),
        }
    }

    fn on_evicted(&mut self, project: &str) {
        if let Some(state) = self.state.remove(project) {
            let worker = match state {
                ProjState::Resident { worker, .. } | ProjState::Evicting { worker } => worker,
            };
            self.worker_load[worker] = self.worker_load[worker].saturating_sub(1);
        }
        if self.parked.get(project).is_some_and(|q| !q.is_empty()) {
            self.enqueue_waiting(project);
        }
        self.drain_waiting();
    }

    /// Activates waiting projects while slots are free, forwarding their
    /// parked requests; restarts evictions if demand remains.
    fn drain_waiting(&mut self) {
        while self.state.len() < self.shared.config.max_active {
            let Some(project) = self.waiting.pop_front() else {
                break;
            };
            if self.state.contains_key(&project) {
                continue;
            }
            let queue = self.parked.remove(&project).unwrap_or_default();
            if queue.is_empty() {
                continue;
            }
            match self.pin(&project) {
                Some(worker) => {
                    for env in queue {
                        self.forward(worker, &project, env);
                    }
                }
                None => {
                    for env in queue {
                        env.respond(Response::Error(no_workers()));
                    }
                }
            }
        }
        self.ensure_evictions();
    }

    /// A worker thread died: unpin every project it held (their
    /// unflushed windows are lost — the journal has the flushed prefix)
    /// and let them re-activate elsewhere on demand.
    fn worker_gone(&mut self, worker: usize) {
        self.workers[worker] = None;
        self.worker_load[worker] = 0;
        let orphans: Vec<String> = self
            .state
            .iter()
            .filter_map(|(p, s)| match s {
                ProjState::Resident { worker: w, .. } | ProjState::Evicting { worker: w } => {
                    (*w == worker).then(|| p.clone())
                }
            })
            .collect();
        for project in orphans {
            self.state.remove(&project);
            if self.parked.get(&project).is_some_and(|q| !q.is_empty()) {
                self.enqueue_waiting(&project);
            }
        }
        self.drain_waiting();
    }
}

fn no_workers() -> ApiError {
    ApiError::Io {
        reason: "the fleet has no live engine workers".to_string(),
    }
}

// ---------------------------------------------------------------------
// The engine worker
// ---------------------------------------------------------------------

/// An executed-but-unacked reply of the current group-commit batch.
type PendingReply = (String, Sender<Response>, bool, Response);

/// Requests a fleet worker refuses: they re-point a project's durability
/// or swap its blueprint, which are fleet-root decisions (the journal
/// dir layout and the shared compiled blueprint would silently diverge).
fn fleet_forbidden(request: &Request) -> bool {
    matches!(
        request,
        Request::Init { .. }
            | Request::Reinit { .. }
            | Request::EnableJournal { .. }
            | Request::Recover { .. }
            | Request::LoadProject { .. }
    )
}

fn run_worker<E>(rx: &Receiver<WorkerMsg>, router: &Sender<RouterMsg>, shared: &Arc<FleetShared>)
where
    E: ScriptExecutor + Default,
{
    let mut resident: HashMap<String, ProjectService<E>> = HashMap::new();
    let mut pending: Vec<PendingReply> = Vec::new();
    let mut touched: BTreeSet<String> = BTreeSet::new();
    loop {
        // Block for the next message — but while any resident project
        // has detached invocations in flight, wake periodically to pump
        // results back in (and flush what they journaled).
        let in_flight = resident.values().any(|s| s.invocations_in_flight() > 0);
        let first = if in_flight {
            match rx.recv_timeout(INVOKE_PUMP) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    for svc in resident.values_mut() {
                        if svc.invocations_in_flight() > 0 {
                            let _ = svc.call(Request::PumpInvocations);
                            let _ = svc.flush();
                            let _ = svc.take_journal_poisoned();
                        }
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Some(msg) => msg,
                None => break,
            }
        };
        // Same adaptive group-commit window as the single-project loop:
        // the backlog at batch formation is the batch.
        let window = rx.len().saturating_add(1).clamp(1, MAX_GROUP_COMMIT_WINDOW);
        let mut batch = Vec::with_capacity(window);
        batch.push(first);
        while batch.len() < window {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        for msg in batch {
            match msg {
                WorkerMsg::Execute { project, env } => {
                    execute(
                        &mut resident,
                        &mut pending,
                        &mut touched,
                        shared,
                        &project,
                        env,
                    );
                }
                WorkerMsg::Evict { project } => {
                    settle_project(&mut resident, &mut pending, &project);
                    touched.remove(&project);
                    if let Some(svc) = resident.remove(&project) {
                        retire(svc, shared);
                    }
                    // Always acknowledge — a poisoned (already dropped)
                    // project still frees its router slot.
                    let _ = router.send(RouterMsg::Evicted { project });
                }
            }
        }
        for project in std::mem::take(&mut touched) {
            settle_project(&mut resident, &mut pending, &project);
        }
        debug_assert!(pending.is_empty());
    }
    // Channel disconnected (fleet shutdown): flush + checkpoint every
    // resident project on the way out.
    for project in std::mem::take(&mut touched) {
        settle_project(&mut resident, &mut pending, &project);
    }
    for (_, svc) in resident.drain() {
        retire(svc, shared);
    }
}

/// Executes one routed request, activating the project if it is not in
/// memory (the lazy half of the LRU cycle).
fn execute<E>(
    resident: &mut HashMap<String, ProjectService<E>>,
    pending: &mut Vec<PendingReply>,
    touched: &mut BTreeSet<String>,
    shared: &Arc<FleetShared>,
    project: &str,
    env: Envelope,
) where
    E: ScriptExecutor + Default,
{
    let (_, request, reply) = env.into_parts();
    if fleet_forbidden(&request) {
        let _ = reply.send(Response::Error(ApiError::Policy {
            detail: format!(
                "`{}` is a fleet-root operation: fleet projects keep their journal under \
                 the fleet root and share the fleet blueprint",
                request.encode().split(' ').next().unwrap_or("request")
            ),
        }));
        return;
    }
    if !resident.contains_key(project) {
        match activate::<E>(shared, project) {
            Ok(svc) => {
                resident.insert(project.to_string(), svc);
            }
            Err(e) => {
                let _ = reply.send(Response::Error(e));
                return;
            }
        }
    }
    touched.insert(project.to_string());
    // Barriers re-base durable state: settle the project's window before
    // and after, exactly like the single-project loop.
    let barrier = request.is_barrier();
    if barrier {
        settle_project(resident, pending, project);
    }
    let mutating = request.is_mutation();
    let svc = resident
        .get_mut(project)
        .expect("activated or already resident");
    match catch_unwind(AssertUnwindSafe(|| svc.call(request))) {
        Ok(resp) => {
            let resp = patch_stat(resp, shared);
            pending.push((project.to_string(), reply, mutating, resp));
            if barrier {
                settle_project(resident, pending, project);
            }
        }
        Err(_) => {
            // The interpreter panicked mid-request: drop the service
            // without flushing (its group-commit window is gone — the
            // crash contract), fail this project's unacked window, and
            // leave every other project on this worker untouched. The
            // next request re-activates from the journal.
            drop(resident.remove(project));
            touched.remove(project);
            shared.counters.resident.fetch_sub(1, Ordering::Relaxed);
            shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
            settle_project(resident, pending, project);
            let _ = reply.send(Response::Error(ApiError::ProjectPoisoned {
                project: project.to_string(),
            }));
        }
    }
}

/// Builds a service for `project` around the shared compiled blueprint
/// and brings its journal up: recover `snapshot + tail` when the project
/// has disk state, enable a fresh journal on first activation.
fn activate<E>(shared: &FleetShared, project: &str) -> Result<ProjectService<E>, ApiError>
where
    E: ScriptExecutor + Default,
{
    let dir = shared.root.join(project);
    std::fs::create_dir_all(&dir).map_err(|e| ApiError::Io {
        reason: format!("cannot create project dir for `{project}`: {e}"),
    })?;
    let server = ProjectServer::with_shared(
        Arc::clone(&shared.blueprint),
        Arc::clone(&shared.compiled),
        E::default(),
    );
    let mut svc = ProjectService::with_server(server);
    svc.set_group_commit(true).map_err(ApiError::from)?;
    let _ = svc.take_journal_poisoned();
    let dir = dir.to_string_lossy().into_owned();
    let every = shared.config.checkpoint_every;
    let bring_up = if std::path::Path::new(&dir).join(SNAPSHOT_FILE).exists() {
        Request::Recover { dir, every }
    } else {
        Request::EnableJournal { dir, every }
    };
    match svc.call(bring_up) {
        Response::Error(e) => Err(e),
        _ => {
            shared.counters.resident.fetch_add(1, Ordering::Relaxed);
            shared.counters.activations.fetch_add(1, Ordering::Relaxed);
            Ok(svc)
        }
    }
}

/// Flushes the group-commit buffer and folds the journal into a fresh
/// checkpoint, leaving the cold form (`snapshot.ddb` + empty tail) on
/// disk — then drops the service.
fn retire<E>(mut svc: ProjectService<E>, shared: &FleetShared)
where
    E: ScriptExecutor + Default,
{
    let _ = svc.set_group_commit(false); // flushes buffered ops
    let _ = svc.call(Request::Checkpoint);
    shared.counters.resident.fetch_sub(1, Ordering::Relaxed);
    shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
}

/// Settles one project's slice of the pending window: flush, consume the
/// poison marker, and send the replies — downgrading acked mutations
/// when the flush failed (or the service is gone entirely, the panic
/// path), exactly mirroring the single-project loop's `settle`.
fn settle_project<E>(
    resident: &mut HashMap<String, ProjectService<E>>,
    pending: &mut Vec<PendingReply>,
    project: &str,
) where
    E: ScriptExecutor + Default,
{
    let error = match resident.get_mut(project) {
        Some(svc) => {
            let flushed = svc.flush();
            let poisoned = svc.take_journal_poisoned();
            match flushed {
                Err(e) => Some(ApiError::from(e)),
                Ok(()) if poisoned => Some(ApiError::Journal {
                    reason: "durability was disabled mid-batch; the batch is not on stable storage"
                        .to_string(),
                }),
                Ok(()) => None,
            }
        }
        None => Some(ApiError::ProjectPoisoned {
            project: project.to_string(),
        }),
    };
    let mut keep = Vec::with_capacity(pending.len());
    for (owner, reply, mutating, resp) in pending.drain(..) {
        if owner != project {
            keep.push((owner, reply, mutating, resp));
            continue;
        }
        let resp = match &error {
            Some(err) if mutating && !resp.is_error() => Response::Error(err.clone()),
            _ => resp,
        };
        let _ = reply.send(resp);
    }
    *pending = keep;
}

/// Patches the fleet gauges onto a `stat` reply (a project service
/// answers zeros — it cannot see the fleet).
fn patch_stat(resp: Response, shared: &FleetShared) -> Response {
    match resp {
        Response::Stat { mut stat } => {
            stat.active_projects = shared.counters.resident.load(Ordering::Relaxed);
            stat.resident_projects = shared.counters.registered.load(Ordering::Relaxed);
            stat.activations = shared.counters.activations.load(Ordering::Relaxed);
            stat.evictions = shared.counters.evictions.load(Ordering::Relaxed);
            Response::Stat { stat }
        }
        other => other,
    }
}

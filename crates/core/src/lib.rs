//! # blueprint-core — the project BluePrint
//!
//! This crate implements the primary contribution of *Controlling Change
//! Propagation and Project Policies in IC Design* (Mathys, Morgan, Soudagar —
//! DATE 1995): the **project BluePrint**, an event-driven design-data-flow
//! management layer over the DAMOCLES meta-database (`damocles-meta`).
//!
//! Two halves, mirroring the paper's split of configuration vs run-time
//! information:
//!
//! * [`lang`] — the ASCII rule language: template rules (`property …`,
//!   `link_from …`, `use_link …`), continuous assignments (`let state = …`)
//!   and run-time rules (`when <event> do <actions> done`), with a lexer,
//!   recursive-descent parser, pretty-printer and static validator.
//! * [`engine`] — the run-time engine: a FIFO design-event queue, rule
//!   execution, selective change propagation across PROPAGATE-filtered
//!   links, template application on version creation, project policies, an
//!   audit trail, and the [`engine::server::ProjectServer`] façade that ties
//!   everything to a meta-database and a workspace.
//!
//! # Quickstart
//!
//! ```
//! use blueprint_core::engine::server::ProjectServer;
//!
//! # fn main() -> Result<(), blueprint_core::engine::error::EngineError> {
//! let mut server = ProjectServer::from_source(r#"
//!     blueprint demo
//!     view default
//!         property uptodate default true
//!         when ckin do uptodate = true; post outofdate down done
//!         when outofdate do uptodate = false done
//!     endview
//!     view HDL_model endview
//!     view schematic
//!         link_from HDL_model move propagates outofdate type derived
//!     endview
//!     endblueprint
//! "#)?;
//! let hdl = server.checkin("cpu", "HDL_model", "yves", b"module cpu;".to_vec())?;
//! let sch = server.checkin("cpu", "schematic", "yves", b"cell cpu".to_vec())?;
//! server.connect_oids(&hdl, &sch)?;
//! server.process_all()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lang;

pub use engine::api::{ApiError, Request, Response, SessionId};
pub use engine::error::EngineError;
pub use engine::server::{ProcessReport, ProjectServer};
pub use engine::service::{
    run_command_loop, run_command_loop_with_window, serve_listener, spawn_project_loop,
    spawn_project_loop_with_window, ClientSession, ProjectHandle, ProjectService,
    MAX_GROUP_COMMIT_WINDOW,
};
pub use lang::ast::Blueprint;
pub use lang::parser::parse;

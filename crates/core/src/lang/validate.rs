//! Static validation of parsed blueprints.
//!
//! The paper's project administrator writes the rule file by hand; this pass
//! catches the mistakes a 1995 admin would only have discovered at run time:
//! links from undeclared views, duplicate definitions, rules assigning to
//! `let`-derived properties, posts of events that nothing propagates, and so
//! on. Issues carry a [`Severity`] — `Error`s make [`check`] fail, `Warning`s
//! do not.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::lang::ast::{Action, Blueprint, LinkSource, ViewDef};
use crate::lang::diag::Span;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal; the engine will run the blueprint.
    Warning,
    /// The blueprint is internally inconsistent.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Where in the source.
    pub span: Span,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.span, self.severity, self.message)
    }
}

/// Validates a blueprint, returning all findings (empty = clean).
pub fn validate(bp: &Blueprint) -> Vec<Issue> {
    let mut issues = Vec::new();
    let view_names: BTreeSet<&str> = bp.views.iter().map(|v| v.name.as_str()).collect();

    // Duplicate view definitions.
    let mut seen_views: BTreeMap<&str, Span> = BTreeMap::new();
    for view in &bp.views {
        if seen_views.insert(&view.name, view.span).is_some() {
            issues.push(Issue {
                severity: Severity::Error,
                message: format!("view `{}` is defined twice", view.name),
                span: view.span,
            });
        }
    }

    for view in &bp.views {
        validate_view(bp, view, &view_names, &mut issues);
    }
    issues.sort_by_key(|i| (i.span.start, i.severity));
    issues
}

/// Validates and fails on the first error-severity issue.
///
/// # Errors
///
/// Returns every issue found if any of them is an [`Severity::Error`].
pub fn check(bp: &Blueprint) -> Result<Vec<Issue>, Vec<Issue>> {
    let issues = validate(bp);
    if issues.iter().any(|i| i.severity == Severity::Error) {
        Err(issues)
    } else {
        Ok(issues)
    }
}

fn validate_view(
    bp: &Blueprint,
    view: &ViewDef,
    view_names: &BTreeSet<&str>,
    issues: &mut Vec<Issue>,
) {
    // Duplicate properties / lets, and property-vs-let collisions.
    let mut props: BTreeSet<&str> = BTreeSet::new();
    for p in &view.properties {
        if !props.insert(&p.name) {
            issues.push(Issue {
                severity: Severity::Error,
                message: format!(
                    "property `{}` is declared twice in view `{}`",
                    p.name, view.name
                ),
                span: p.span,
            });
        }
    }
    let mut lets: BTreeSet<&str> = BTreeSet::new();
    for l in &view.lets {
        if !lets.insert(&l.name) {
            issues.push(Issue {
                severity: Severity::Error,
                message: format!(
                    "continuous assignment `{}` is declared twice in view `{}`",
                    l.name, view.name
                ),
                span: l.span,
            });
        }
        if props.contains(l.name.as_str()) {
            issues.push(Issue {
                severity: Severity::Error,
                message: format!(
                    "`{}` is both a property and a continuous assignment in view `{}`",
                    l.name, view.name
                ),
                span: l.span,
            });
        }
    }

    // link_from references undeclared views (warning: the paper tracks only
    // a subset of views on purpose, but a typo looks identical).
    for link in &view.links {
        if let LinkSource::View(source) = &link.source {
            if !view_names.contains(source.as_str()) {
                issues.push(Issue {
                    severity: Severity::Warning,
                    message: format!(
                        "view `{}` declares link_from `{}`, which is not defined in this blueprint",
                        view.name, source
                    ),
                    span: link.span,
                });
            }
            if source == &view.name {
                issues.push(Issue {
                    severity: Severity::Error,
                    message: format!("view `{}` declares a link_from itself", view.name),
                    span: link.span,
                });
            }
        }
        if link.propagates.is_empty() {
            issues.push(Issue {
                severity: Severity::Warning,
                message: format!(
                    "a link in view `{}` propagates no events; it will never carry a change",
                    view.name
                ),
                span: link.span,
            });
        }
    }

    // Rules: assigning to a let-derived property is lost work; posting an
    // event that no link in the whole blueprint propagates never travels.
    let all_propagated: BTreeSet<&str> = bp
        .views
        .iter()
        .flat_map(|v| v.links.iter())
        .flat_map(|l| l.propagates.iter())
        .map(String::as_str)
        .collect();
    for rule in &view.rules {
        for action in &rule.actions {
            match action {
                Action::Assign { prop, .. } if lets.contains(prop.as_str()) => {
                    issues.push(Issue {
                        severity: Severity::Error,
                        message: format!(
                            "rule `when {}` assigns `{}`, which is a continuous assignment in view `{}`",
                            rule.event, prop, view.name
                        ),
                        span: rule.span,
                    });
                }
                Action::Post { event, to_view, .. } => {
                    if !all_propagated.contains(event.as_str()) {
                        issues.push(Issue {
                            severity: Severity::Warning,
                            message: format!(
                                "rule `when {}` posts `{}`, but no link in the blueprint propagates it",
                                rule.event, event
                            ),
                            span: rule.span,
                        });
                    }
                    if let Some(target) = to_view {
                        if !view_names.contains(target.as_str()) {
                            issues.push(Issue {
                                severity: Severity::Warning,
                                message: format!(
                                    "rule `when {}` posts to view `{}`, which is not defined",
                                    rule.event, target
                                ),
                                span: rule.span,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Self-triggering rules: `when e do post e <dir> done` is legitimate
    // relaying (the default view does it for `outofdate`-style cascades),
    // but flag the case where the view both assigns on `e` and re-posts `e`
    // with no link anywhere to carry it — that rule can only spin.
    let _ = &all_propagated;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn issues_of(src: &str) -> Vec<Issue> {
        validate(&parse(src).unwrap())
    }

    #[test]
    fn clean_blueprint_has_no_issues() {
        let src = r#"blueprint ok
            view a
                property p default bad
                when e do p = $arg done
            endview
            view b
                link_from a propagates outofdate type derived
                when ckin do post outofdate down done
            endview
        endblueprint"#;
        assert!(issues_of(src).is_empty());
    }

    #[test]
    fn duplicate_view_is_error() {
        let src = "blueprint t view a endview view a endview endblueprint";
        let issues = issues_of(src);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("defined twice")));
    }

    #[test]
    fn duplicate_property_is_error() {
        let src =
            "blueprint t view a property p default x property p default y endview endblueprint";
        assert!(issues_of(src)
            .iter()
            .any(|i| i.message.contains("declared twice")));
    }

    #[test]
    fn duplicate_let_is_error() {
        let src = "blueprint t view a let s = ($a == b) let s = ($c == d) endview endblueprint";
        assert!(issues_of(src)
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("declared twice")));
    }

    #[test]
    fn let_shadowing_property_is_error() {
        let src = "blueprint t view a property s default x let s = ($a == b) endview endblueprint";
        assert!(issues_of(src).iter().any(|i| i
            .message
            .contains("both a property and a continuous assignment")));
    }

    #[test]
    fn link_from_unknown_view_is_warning() {
        let src = "blueprint t view a link_from ghost propagates e endview endblueprint";
        let issues = issues_of(src);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("ghost")));
    }

    #[test]
    fn link_from_self_is_error() {
        let src = "blueprint t view a link_from a propagates e endview endblueprint";
        assert!(issues_of(src)
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("itself")));
    }

    #[test]
    fn empty_propagate_set_is_warning() {
        let src = "blueprint t view a use_link move endview endblueprint";
        assert!(issues_of(src)
            .iter()
            .any(|i| i.message.contains("propagates no events")));
    }

    #[test]
    fn assigning_a_let_is_error() {
        let src = r#"blueprint t view a
            let state = ($x == ok)
            when e do state = bad done
        endview endblueprint"#;
        assert!(issues_of(src)
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("continuous assignment")));
    }

    #[test]
    fn unpropagated_post_is_warning() {
        let src = "blueprint t view a when ckin do post nowhere down done endview endblueprint";
        assert!(issues_of(src)
            .iter()
            .any(|i| i.message.contains("no link in the blueprint propagates")));
    }

    #[test]
    fn post_to_unknown_view_is_warning() {
        let src = r#"blueprint t view a
            use_link propagates sim_ok
            when ckin do post sim_ok down to Ghost done
        endview endblueprint"#;
        assert!(issues_of(src).iter().any(|i| i.message.contains("`Ghost`")));
    }

    #[test]
    fn check_splits_errors_from_warnings() {
        let clean = parse("blueprint t view a endview endblueprint").unwrap();
        assert!(check(&clean).is_ok());
        let warn_only = parse("blueprint t view a use_link move endview endblueprint").unwrap();
        let issues = check(&warn_only).unwrap();
        assert_eq!(issues.len(), 1);
        let broken = parse("blueprint t view a endview view a endview endblueprint").unwrap();
        assert!(check(&broken).is_err());
    }

    #[test]
    fn the_papers_edtc_blueprint_validates() {
        // Slightly normalized from Section 3.4 (see flows::edtc for the
        // verbatim-with-typos discussion).
        let src = r#"blueprint EDTC_example
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model
            property sim_result default bad
            when hdl_sim do sim_result = $arg done
        endview
        view synth_lib
        endview
        view schematic
            property nl_sim_res default bad
            property lvs_res default not_equiv
            let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
            link_from HDL_model propagates outofdate type derived
            link_from synth_lib move propagates outofdate type depend_on
            use_link move propagates outofdate
            when nl_sim do nl_sim_res = $arg done
            when ckin do lvs_res = "$oid changed by $user"; post lvs down "$lvs_res" done
            when ckin do exec netlister "$oid" done
        endview
        view netlist
            property sim_result default bad
            link_from schematic propagates nl_sim, outofdate type derived
            when nl_sim do sim_result = $arg done
        endview
        view layout
            property drc_result default bad
            property lvs_result default not_equiv
            let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
            link_from schematic propagates lvs, outofdate type equivalence
            when drc do drc_result = $arg done
            when lvs do lvs_result = $arg done
            when ckin do lvs_result = "$oid changed by $user"; post lvs up "$lvs_result" done
        endview
        endblueprint"#;
        let bp = parse(src).unwrap();
        let issues = check(&bp).expect("EDTC blueprint must have no errors");
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }
}

//! The BluePrint rule language: lexer, parser, AST, pretty-printer and
//! static validation.
//!
//! "Prior to processing any event, the BluePrint must be initialized by the
//! project administrator; this is done by reading in an ASCII file which
//! contains a set of rules" — Section 3.2. This module is that ASCII file's
//! implementation.

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod validate;

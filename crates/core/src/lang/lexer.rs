//! Lexer for the BluePrint rule language.
//!
//! Notable choices, all derived from the paper's listings:
//!
//! * `#` starts a line comment ("# note: keywords appear in bold…").
//! * `$name` is a variable reference token.
//! * Double-quoted strings keep their raw content; `$` interpolation inside
//!   them is resolved later (at rule execution, like a shell).
//! * Bare words that are not keywords are identifiers — view names, event
//!   names and atom values (`good`, `not_equiv`) share one namespace.
//! * Identifiers may contain `.` so prose OID forms like `CPU.HDL_model.1`
//!   lex as single atoms where they appear in argument position.

use crate::lang::diag::{ParseError, Pos, Span};
use crate::lang::token::{Keyword, Token, TokenKind};

/// Tokenizes a full BluePrint source.
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated strings or characters outside
/// the language's alphabet.
///
/// # Example
///
/// ```
/// use blueprint_core::lang::lexer::lex;
/// use blueprint_core::lang::token::TokenKind;
///
/// let tokens = lex("when ckin do uptodate = true done")?;
/// assert_eq!(tokens.len(), 8); // 7 tokens + Eof
/// assert!(matches!(tokens[0].kind, TokenKind::Keyword(_)));
/// # Ok::<(), blueprint_core::lang::diag::ParseError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    pos: Pos,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            pos: Pos::new(1, 1),
            tokens: Vec::new(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn push(&mut self, kind: TokenKind, start: Pos) {
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while let Some(c) = self.peek() {
            let start = self.pos;
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '(' => {
                    self.bump();
                    self.push(TokenKind::LParen, start);
                }
                ')' => {
                    self.bump();
                    self.push(TokenKind::RParen, start);
                }
                ';' => {
                    self.bump();
                    self.push(TokenKind::Semi, start);
                }
                ',' => {
                    self.bump();
                    self.push(TokenKind::Comma, start);
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::EqEq, start);
                    } else {
                        self.push(TokenKind::Assign, start);
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::NotEq, start);
                    } else {
                        return Err(ParseError::new(
                            "stray `!` (use `!=` or `not`)",
                            Span::point(start),
                        ));
                    }
                }
                '"' => self.lex_string(start)?,
                '$' => {
                    self.bump();
                    let name = self.take_word();
                    if name.is_empty() {
                        return Err(ParseError::new(
                            "`$` must be followed by a variable name",
                            Span::point(start),
                        ));
                    }
                    self.push(TokenKind::Var(name), start);
                }
                c if c.is_ascii_digit() || c == '-' => {
                    let word = self.take_word_with(|ch| {
                        ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' || ch == '.'
                    });
                    match word.parse::<i64>() {
                        Ok(n) => self.push(TokenKind::Int(n), start),
                        // `3v3` or `1.2um`: treat as a bare atom.
                        Err(_) => self.push(TokenKind::Ident(word), start),
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let word = self.take_word();
                    match Keyword::from_word(&word) {
                        Some(kw) => self.push(TokenKind::Keyword(kw), start),
                        None => self.push(TokenKind::Ident(word), start),
                    }
                }
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character `{other}`"),
                        Span::point(start),
                    ));
                }
            }
        }
        let end = self.pos;
        self.push(TokenKind::Eof, end);
        Ok(self.tokens)
    }

    fn take_word(&mut self) -> String {
        self.take_word_with(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
    }

    fn take_word_with(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        word
    }

    fn lex_string(&mut self, start: Pos) -> Result<(), ParseError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    // `\$` stays marked so interpolation can tell an escaped
                    // dollar from a variable reference.
                    Some('$') => value.push_str("\\$"),
                    Some(escaped) => value.push(escaped),
                    None => {
                        return Err(ParseError::new(
                            "unterminated string literal",
                            Span::new(start, self.pos),
                        ))
                    }
                },
                Some(c) => value.push(c),
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ))
                }
            }
        }
        self.push(TokenKind::Str(value), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_papers_property_rule() {
        let ks = kinds("property sim_result default bad");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Property),
                TokenKind::Ident("sim_result".into()),
                TokenKind::Keyword(Keyword::Default),
                TokenKind::Ident("bad".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_when_rule_with_var_and_semi() {
        let ks = kinds("when hdl_sim do sim_result = $arg done");
        assert!(ks.contains(&TokenKind::Var("arg".into())));
        assert!(ks.contains(&TokenKind::Assign));
    }

    #[test]
    fn lexes_continuous_assignment() {
        let ks = kinds("let state = ($nl_sim_res == good) and ($uptodate == true)");
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Let)));
        assert!(ks.contains(&TokenKind::EqEq));
        assert!(ks.contains(&TokenKind::LParen));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::And)));
    }

    #[test]
    fn strings_keep_dollar_signs_raw() {
        let ks = kinds(r#"notify "$owner: Your oid $OID has been modified""#);
        assert_eq!(
            ks[1],
            TokenKind::Str("$owner: Your oid $OID has been modified".into())
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("# note: keywords appear in bold\nview schematic");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::View));
    }

    #[test]
    fn event_list_with_commas() {
        let ks = kinds("link_from schematic propagates nl_sim, outofdate type derived");
        assert!(ks.contains(&TokenKind::Comma));
        assert!(ks.contains(&TokenKind::Ident("nl_sim".into())));
    }

    #[test]
    fn integers_and_negative() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("-3")[0], TokenKind::Int(-3));
    }

    #[test]
    fn not_eq_operator() {
        assert_eq!(kinds("$a != bad")[1], TokenKind::NotEq);
    }

    #[test]
    fn errors_on_stray_bang_and_bad_char() {
        assert!(lex("a ! b").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("\"open").is_err());
        assert!(lex("$ alone").is_err());
    }

    #[test]
    fn escaped_quote_in_string() {
        let ks = kinds(r#""say \"hi\"""#);
        assert_eq!(ks[0], TokenKind::Str(r#"say "hi""#.into()));
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("view a\nview b").unwrap();
        let second_view = &tokens[2];
        assert_eq!(second_view.span.start.line, 2);
        assert_eq!(second_view.span.start.col, 1);
    }

    #[test]
    fn uppercase_move_is_keyword() {
        // Fig. 3 writes `MOVE` in caps.
        let ks = kinds("link_from NetList propagates OutOfDate type derive_from MOVE");
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Move)));
    }
}

//! Pretty-printer emitting canonical BluePrint source.
//!
//! `parse(print(bp))` recovers `bp` modulo source spans (see the round-trip
//! property test in `tests/lang_roundtrip.rs`). The canonical form always
//! writes `endview`, lowercases keywords, and orders link clauses as
//! *transfer, propagates, type*.

use std::fmt::Write;

use damocles_meta::Direction;

use crate::lang::ast::{
    Action, Blueprint, Expr, LinkDef, LinkSource, PropertyDef, RuleDef, Segment, Template, ViewDef,
};
use crate::lang::token::Keyword;

/// Renders a blueprint as canonical source text.
///
/// # Example
///
/// ```
/// use blueprint_core::lang::{parser::parse, printer::print};
///
/// let bp = parse("blueprint t view a property p default x copy endview endblueprint")?;
/// let src = print(&bp);
/// assert!(src.contains("property p default x copy"));
/// let reparsed = parse(&src)?;
/// assert_eq!(reparsed.normalized(), bp.normalized());
/// # Ok::<(), blueprint_core::lang::diag::ParseError>(())
/// ```
pub fn print(bp: &Blueprint) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "blueprint {}", bp.name);
    for view in &bp.views {
        print_view(&mut out, view);
    }
    out.push_str("endblueprint\n");
    out
}

fn print_view(out: &mut String, view: &ViewDef) {
    let _ = writeln!(out, "view {}", view.name);
    for p in &view.properties {
        print_property(out, p);
    }
    for l in &view.links {
        print_link(out, l);
    }
    for l in &view.lets {
        let _ = writeln!(out, "    let {} = {}", l.name, print_expr(&l.expr));
    }
    for r in &view.rules {
        print_rule(out, r);
    }
    out.push_str("endview\n");
}

fn print_property(out: &mut String, p: &PropertyDef) {
    let _ = write!(
        out,
        "    property {} default {}",
        p.name,
        bare_or_quoted(&p.default)
    );
    if let Some(kw) = p.transfer.keyword() {
        let _ = write!(out, " {kw}");
    }
    out.push('\n');
}

fn print_link(out: &mut String, l: &LinkDef) {
    match &l.source {
        LinkSource::View(v) => {
            let _ = write!(out, "    link_from {v}");
        }
        LinkSource::UseLink => out.push_str("    use_link"),
    }
    if let Some(kw) = l.transfer.keyword() {
        let _ = write!(out, " {kw}");
    }
    if !l.propagates.is_empty() {
        let _ = write!(out, " propagates {}", l.propagates.join(", "));
    }
    if let Some(kind) = &l.kind {
        let _ = write!(out, " type {kind}");
    }
    out.push('\n');
}

fn print_rule(out: &mut String, r: &RuleDef) {
    let actions: Vec<String> = r.actions.iter().map(print_action).collect();
    let _ = writeln!(out, "    when {} do {} done", r.event, actions.join("; "));
}

fn print_action(a: &Action) -> String {
    match a {
        Action::Assign { prop, value } => format!("{prop} = {}", print_template(value)),
        Action::Exec { script, args } => {
            let mut s = format!("exec {}", print_template(script));
            for arg in args {
                s.push(' ');
                s.push_str(&print_template(arg));
            }
            s
        }
        Action::Notify { message } => format!("notify {}", print_template(message)),
        Action::Post {
            event,
            direction,
            to_view,
            args,
        } => {
            let mut s = format!(
                "post {event} {}",
                match direction {
                    Direction::Up => "up",
                    Direction::Down => "down",
                }
            );
            if let Some(v) = to_view {
                s.push_str(" to ");
                s.push_str(v);
            }
            for arg in args {
                s.push(' ');
                s.push_str(&print_template(arg));
            }
            s
        }
    }
}

/// Prints a template: bare when it is a single keyword-free atom, a `$var`
/// when it is a single variable, quoted otherwise.
fn print_template(t: &Template) -> String {
    if let Some(v) = t.as_single_var() {
        return format!("${v}");
    }
    match t.segments.as_slice() {
        [Segment::Lit(text)] => bare_or_quoted(text),
        segments => {
            let mut s = String::from("\"");
            for seg in segments {
                match seg {
                    Segment::Lit(text) => s.push_str(&escape(text)),
                    Segment::Var(v) => {
                        s.push('$');
                        s.push_str(v);
                    }
                }
            }
            s.push('"');
            s
        }
    }
}

/// Whether `text` survives re-lexing as a single bare atom with the same
/// meaning.
fn is_bare_atom(text: &str) -> bool {
    if text.is_empty() || Keyword::from_word(text).is_some() {
        return false;
    }
    let mut chars = text.chars();
    let first = chars.next().expect("non-empty");
    if !(first.is_ascii_alphabetic() || first == '_' || first.is_ascii_digit() || first == '-') {
        return false;
    }
    text.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
}

fn bare_or_quoted(text: &str) -> String {
    if is_bare_atom(text) && !text.contains('$') {
        text.to_string()
    } else {
        format!("\"{}\"", escape(text))
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('$', "\\$")
}

fn print_expr(e: &Expr) -> String {
    // Fully parenthesized: unambiguous and stable under re-parsing.
    match e {
        Expr::Var(v) => format!("${v}"),
        Expr::Atom(a) => bare_or_quoted(a),
        Expr::Str(s) => format!("\"{}\"", escape(s)),
        Expr::Eq(a, b) => format!("({} == {})", print_expr(a), print_expr(b)),
        Expr::Ne(a, b) => format!("({} != {})", print_expr(a), print_expr(b)),
        Expr::And(a, b) => format!("({} and {})", print_expr(a), print_expr(b)),
        Expr::Or(a, b) => format!("({} or {})", print_expr(a), print_expr(b)),
        Expr::Not(a) => format!("(not {})", print_expr(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn roundtrip(src: &str) {
        let bp = parse(src).unwrap();
        let printed = print(&bp);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted source:\n{printed}"));
        assert_eq!(
            reparsed.normalized(),
            bp.normalized(),
            "printed:\n{printed}"
        );
    }

    #[test]
    fn roundtrips_simple_blueprint() {
        roundtrip("blueprint t view a property p default x copy endview endblueprint");
    }

    #[test]
    fn roundtrips_links_and_rules() {
        roundtrip(
            r#"blueprint t
            view schematic
                property nl_sim_res default bad
                link_from HDL_model propagates outofdate type derived
                use_link move propagates outofdate
                let state = ($nl_sim_res == good) and ($uptodate == true)
                when nl_sim do nl_sim_res = $arg done
                when ckin do lvs_res = "$oid changed by $user"; post lvs down "$lvs_res" done
                when ckin do exec netlister "$oid" done
            endview
            endblueprint"#,
        );
    }

    #[test]
    fn roundtrips_post_to_view_and_notify() {
        roundtrip(
            r#"blueprint t view a
            when checkin do post behavioral_sim_ok down to VerilogNetList done
            when checkin do notify "$owner: modified" done
            endview endblueprint"#,
        );
    }

    #[test]
    fn quoted_default_with_spaces_roundtrips() {
        roundtrip(r#"blueprint t view a property msg default "4 errors" endview endblueprint"#);
    }

    #[test]
    fn keyword_valued_atom_is_quoted() {
        // An atom spelled like a keyword must be quoted to survive.
        let bp =
            parse(r#"blueprint t view a property p default "move" endview endblueprint"#).unwrap();
        let printed = print(&bp);
        assert!(printed.contains("\"move\""), "printed:\n{printed}");
        roundtrip(r#"blueprint t view a property p default "move" endview endblueprint"#);
    }

    #[test]
    fn literal_dollar_survives() {
        roundtrip(r#"blueprint t view a when e do msg = "cost \$5" done endview endblueprint"#);
    }

    #[test]
    fn expression_printing_parenthesizes() {
        let bp = parse(
            "blueprint t view a let s = not ($a == 1) or ($b != 2) and ($c == 3) endview endblueprint",
        )
        .unwrap();
        let printed = print(&bp);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed.normalized(), bp.normalized());
    }

    #[test]
    fn empty_view_roundtrips() {
        roundtrip("blueprint t view synth_lib endview endblueprint");
    }
}

//! Source positions and parse diagnostics for the BluePrint rule language.

use std::fmt;

/// A position in a BluePrint source file (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open source span from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Where the spanned item begins.
    pub start: Pos,
    /// Where it ends (exclusive).
    pub end: Pos,
}

impl Span {
    /// Creates a span.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// A diagnostic produced while lexing or parsing a BluePrint source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
    /// Optional hint suggesting a fix.
    pub hint: Option<String>,
}

impl ParseError {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            hint: None,
        }
    }

    /// Attaches a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_and_span_display() {
        let span = Span::new(Pos::new(3, 7), Pos::new(3, 12));
        assert_eq!(span.to_string(), "3:7");
        assert_eq!(Pos::new(1, 1).to_string(), "1:1");
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(Pos::new(1, 5), Pos::new(1, 9));
        let b = Span::new(Pos::new(2, 1), Pos::new(2, 4));
        let m = a.merge(b);
        assert_eq!(m.start, Pos::new(1, 5));
        assert_eq!(m.end, Pos::new(2, 4));
    }

    #[test]
    fn error_display_includes_hint() {
        let e = ParseError::new("unexpected `done`", Span::point(Pos::new(4, 2)))
            .with_hint("did you forget `when`?");
        let s = e.to_string();
        assert!(s.contains("4:2"));
        assert!(s.contains("hint"));
    }
}

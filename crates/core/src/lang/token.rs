//! Token definitions for the BluePrint rule language.
//!
//! The keyword set is exactly the bold vocabulary of the paper's Section 3
//! listings (`blueprint`, `view`, `property`, `default`, `copy`, `move`,
//! `link_from`, `use_link`, `propagates`, `type`, `let`, `when`, `do`,
//! `done`, `post`, `exec`, `notify`, `up`, `down`, `to`, `and`, `or`,
//! `not`, `endview`, `endblueprint`).

use std::fmt;

use crate::lang::diag::Span;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A keyword from the reserved vocabulary.
    Keyword(Keyword),
    /// An identifier / bare atom (view names, event names, values like `ok`).
    Ident(String),
    /// A `$`-prefixed variable reference (`$arg`, `$oid`, `$sim_result`).
    Var(String),
    /// A double-quoted string literal, raw (interpolation happens later).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{k}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Var(s) => write!(f, "variable `${s}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Int(n) => write!(f, "integer {n}"),
            TokenKind::Assign => f.write_str("`=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::NotEq => f.write_str("`!=`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// The reserved words of the BluePrint language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Blueprint,
    Endblueprint,
    View,
    Endview,
    Property,
    Default,
    Copy,
    Move,
    LinkFrom,
    UseLink,
    Propagates,
    Type,
    Let,
    When,
    Do,
    Done,
    Post,
    Exec,
    Notify,
    Up,
    Down,
    To,
    And,
    Or,
    Not,
}

impl Keyword {
    /// Looks a word up in the keyword table.
    ///
    /// Keywords are matched case-insensitively because the paper's Fig. 3
    /// writes `MOVE` in caps while the listings use lowercase.
    pub fn from_word(word: &str) -> Option<Keyword> {
        let lower = word.to_ascii_lowercase();
        Some(match lower.as_str() {
            "blueprint" => Keyword::Blueprint,
            "endblueprint" => Keyword::Endblueprint,
            "view" => Keyword::View,
            "endview" => Keyword::Endview,
            "property" => Keyword::Property,
            "default" => Keyword::Default,
            "copy" => Keyword::Copy,
            "move" => Keyword::Move,
            "link_from" => Keyword::LinkFrom,
            "use_link" => Keyword::UseLink,
            "propagates" => Keyword::Propagates,
            "type" => Keyword::Type,
            "let" => Keyword::Let,
            "when" => Keyword::When,
            "do" => Keyword::Do,
            "done" => Keyword::Done,
            "post" => Keyword::Post,
            "exec" => Keyword::Exec,
            "notify" => Keyword::Notify,
            "up" => Keyword::Up,
            "down" => Keyword::Down,
            "to" => Keyword::To,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            _ => return None,
        })
    }

    /// The canonical (lowercase) spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Blueprint => "blueprint",
            Keyword::Endblueprint => "endblueprint",
            Keyword::View => "view",
            Keyword::Endview => "endview",
            Keyword::Property => "property",
            Keyword::Default => "default",
            Keyword::Copy => "copy",
            Keyword::Move => "move",
            Keyword::LinkFrom => "link_from",
            Keyword::UseLink => "use_link",
            Keyword::Propagates => "propagates",
            Keyword::Type => "type",
            Keyword::Let => "let",
            Keyword::When => "when",
            Keyword::Do => "do",
            Keyword::Done => "done",
            Keyword::Post => "post",
            Keyword::Exec => "exec",
            Keyword::Notify => "notify",
            Keyword::Up => "up",
            Keyword::Down => "down",
            Keyword::To => "to",
            Keyword::And => "and",
            Keyword::Or => "or",
            Keyword::Not => "not",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// The identifier text if this token can serve as a *name* — plain
    /// identifiers, and keywords used in name position (the paper's special
    /// `view default`, or an event called `copy`).
    pub fn name_text(&self) -> Option<String> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.clone()),
            TokenKind::Keyword(k) => Some(k.as_str().to_string()),
            TokenKind::Int(n) => Some(n.to_string()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table_roundtrip() {
        for word in [
            "blueprint",
            "endblueprint",
            "view",
            "endview",
            "property",
            "default",
            "copy",
            "move",
            "link_from",
            "use_link",
            "propagates",
            "type",
            "let",
            "when",
            "do",
            "done",
            "post",
            "exec",
            "notify",
            "up",
            "down",
            "to",
            "and",
            "or",
            "not",
        ] {
            let kw = Keyword::from_word(word).unwrap();
            assert_eq!(kw.as_str(), word);
        }
        assert!(Keyword::from_word("schematic").is_none());
    }

    #[test]
    fn keywords_match_case_insensitively() {
        assert_eq!(Keyword::from_word("MOVE"), Some(Keyword::Move));
        assert_eq!(Keyword::from_word("Copy"), Some(Keyword::Copy));
    }

    #[test]
    fn name_text_accepts_keywords() {
        let t = Token::new(TokenKind::Keyword(Keyword::Default), Span::default());
        assert_eq!(t.name_text(), Some("default".into()));
        let t = Token::new(TokenKind::Ident("schematic".into()), Span::default());
        assert_eq!(t.name_text(), Some("schematic".into()));
        let t = Token::new(TokenKind::Semi, Span::default());
        assert_eq!(t.name_text(), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TokenKind::EqEq.to_string(), "`==`");
        assert_eq!(TokenKind::Var("arg".into()).to_string(), "variable `$arg`");
    }
}

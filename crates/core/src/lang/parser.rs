//! Recursive-descent parser for BluePrint rule files.
//!
//! The grammar is reconstructed from every listing in the paper:
//!
//! ```text
//! blueprint   := "blueprint" NAME view* "endblueprint"
//! view        := "view" NAME item* ["endview"]
//! item        := property | link_from | use_link | let | when
//! property    := "property" NAME "default" VALUE ["copy" | "move"]
//! link_from   := "link_from" NAME clause*
//! use_link    := "use_link" clause*
//! clause      := "move" | "copy" | "propagates" NAME ("," NAME)* | "type" NAME
//! let         := "let" NAME "=" expr
//! when        := "when" NAME "do" action (";" action)* "done"
//! action      := NAME "=" value
//!              | "exec" value value*
//!              | "notify" value
//!              | "post" NAME ("up"|"down") ["to" NAME] value*
//! value       := IDENT | INT | STRING | $VAR
//! expr        := and_expr ("or" and_expr)*
//! and_expr    := not_expr ("and" not_expr)*
//! not_expr    := "not" not_expr | cmp
//! cmp         := primary [("==" | "!=") primary]
//! primary     := "(" expr ")" | $VAR | IDENT | INT | STRING
//! ```
//!
//! Two deliberate liberalities, both needed to accept the paper's own
//! listings verbatim: `endview` is optional (the Section 3.4 listing omits it
//! after the `netlist` view), and link clauses may appear in any order
//! (`move propagates …` in the prose, `propagates … type … MOVE` in Fig. 3).

use damocles_meta::Direction;

use crate::lang::ast::{
    Action, Blueprint, Expr, LetDef, LinkDef, LinkSource, PropertyDef, RuleDef, Segment, Template,
    Transfer, ViewDef,
};
use crate::lang::diag::{ParseError, Span};
use crate::lang::lexer::lex;
use crate::lang::token::{Keyword, Token, TokenKind};

/// Parses a complete BluePrint source file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Example
///
/// ```
/// use blueprint_core::lang::parser::parse;
///
/// let bp = parse(r#"
///     blueprint demo
///     view HDL_model
///         property sim_result default bad
///         when hdl_sim do sim_result = $arg done
///     endview
///     endblueprint
/// "#)?;
/// assert_eq!(bp.name, "demo");
/// assert_eq!(bp.views.len(), 1);
/// # Ok::<(), blueprint_core::lang::diag::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Blueprint, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.blueprint()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<Token, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected `{kw}`, found {}", self.peek_kind()),
                self.peek().span,
            ))
        }
    }

    /// An identifier in strict position (event names, property names).
    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::new(
                format!("expected {what}, found {other}"),
                self.peek().span,
            )),
        }
    }

    /// A name that may also be a keyword (`view default`).
    fn expect_name(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().name_text() {
            Some(name) => {
                self.bump();
                Ok(name)
            }
            None => Err(ParseError::new(
                format!("expected {what}, found {}", self.peek_kind()),
                self.peek().span,
            )),
        }
    }

    // ------------------------------------------------------------------

    fn blueprint(&mut self) -> Result<Blueprint, ParseError> {
        let start = self.expect_kw(Keyword::Blueprint)?.span;
        let name = self.expect_name("blueprint name")?;
        let mut views = Vec::new();
        while self.at_kw(Keyword::View) {
            views.push(self.view()?);
        }
        let end = self.expect_kw(Keyword::Endblueprint)?.span;
        if !matches!(self.peek_kind(), TokenKind::Eof) {
            return Err(ParseError::new(
                format!("trailing input after `endblueprint`: {}", self.peek_kind()),
                self.peek().span,
            ));
        }
        Ok(Blueprint {
            name,
            views,
            span: start.merge(end),
        })
    }

    fn view(&mut self) -> Result<ViewDef, ParseError> {
        let start = self.expect_kw(Keyword::View)?.span;
        let name = self.expect_name("view name")?;
        let mut view = ViewDef::empty(name);
        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Property) => {
                    view.properties.push(self.property()?);
                }
                TokenKind::Keyword(Keyword::LinkFrom) => {
                    view.links.push(self.link(false)?);
                }
                TokenKind::Keyword(Keyword::UseLink) => {
                    view.links.push(self.link(true)?);
                }
                TokenKind::Keyword(Keyword::Let) => {
                    view.lets.push(self.let_def()?);
                }
                TokenKind::Keyword(Keyword::When) => {
                    view.rules.push(self.rule()?);
                }
                TokenKind::Keyword(Keyword::Endview) => {
                    let end = self.bump().span;
                    view.span = start.merge(end);
                    return Ok(view);
                }
                // `endview` omitted (as in the paper's own listing): the next
                // `view` or the closing `endblueprint` ends this view.
                TokenKind::Keyword(Keyword::View) | TokenKind::Keyword(Keyword::Endblueprint) => {
                    view.span = start.merge(self.peek().span);
                    return Ok(view);
                }
                other => {
                    return Err(ParseError::new(
                        format!("expected a view item or `endview`, found {other}"),
                        self.peek().span,
                    )
                    .with_hint(
                        "view items start with `property`, `link_from`, `use_link`, `let` or `when`",
                    ));
                }
            }
        }
    }

    fn property(&mut self) -> Result<PropertyDef, ParseError> {
        let start = self.expect_kw(Keyword::Property)?.span;
        let name = self.expect_ident("property name")?;
        self.expect_kw(Keyword::Default)?;
        let (default, vspan) = self.value_atom()?;
        let mut span = start.merge(vspan);
        let transfer = if self.at_kw(Keyword::Copy) {
            span = span.merge(self.bump().span);
            Transfer::Copy
        } else if self.at_kw(Keyword::Move) {
            span = span.merge(self.bump().span);
            Transfer::Move
        } else {
            Transfer::Create
        };
        Ok(PropertyDef {
            name,
            default,
            transfer,
            span,
        })
    }

    /// A bare value: identifier, integer or quoted string.
    fn value_atom(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                let span = self.bump().span;
                Ok((s, span))
            }
            TokenKind::Int(n) => {
                let span = self.bump().span;
                Ok((n.to_string(), span))
            }
            TokenKind::Str(s) => {
                let span = self.bump().span;
                Ok((Template::unescape_raw(&s), span))
            }
            other => Err(ParseError::new(
                format!("expected a value, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn link(&mut self, is_use: bool) -> Result<LinkDef, ParseError> {
        let start = self
            .expect_kw(if is_use {
                Keyword::UseLink
            } else {
                Keyword::LinkFrom
            })?
            .span;
        let source = if is_use {
            LinkSource::UseLink
        } else {
            LinkSource::View(self.expect_ident("source view name")?)
        };
        let mut def = LinkDef {
            source,
            transfer: Transfer::Create,
            propagates: Vec::new(),
            kind: None,
            span: start,
        };
        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Move) => {
                    def.span = def.span.merge(self.bump().span);
                    def.transfer = Transfer::Move;
                }
                TokenKind::Keyword(Keyword::Copy) => {
                    def.span = def.span.merge(self.bump().span);
                    def.transfer = Transfer::Copy;
                }
                TokenKind::Keyword(Keyword::Propagates) => {
                    self.bump();
                    loop {
                        let ev = self.expect_ident("event name")?;
                        def.propagates.push(ev);
                        if matches!(self.peek_kind(), TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                TokenKind::Keyword(Keyword::Type) => {
                    self.bump();
                    def.kind = Some(self.expect_ident("link type")?);
                }
                _ => break,
            }
        }
        def.span = def.span.merge(self.peek().span);
        Ok(def)
    }

    fn let_def(&mut self) -> Result<LetDef, ParseError> {
        let start = self.expect_kw(Keyword::Let)?.span;
        let name = self.expect_ident("property name")?;
        if !matches!(self.peek_kind(), TokenKind::Assign) {
            return Err(ParseError::new(
                format!(
                    "expected `=` in continuous assignment, found {}",
                    self.peek_kind()
                ),
                self.peek().span,
            ));
        }
        self.bump();
        let expr = self.expr()?;
        Ok(LetDef {
            name,
            expr,
            span: start.merge(self.peek().span),
        })
    }

    fn rule(&mut self) -> Result<RuleDef, ParseError> {
        let start = self.expect_kw(Keyword::When)?.span;
        let event = self.expect_ident("event name")?;
        self.expect_kw(Keyword::Do)?;
        let mut actions = vec![self.action()?];
        loop {
            if matches!(self.peek_kind(), TokenKind::Semi) {
                self.bump();
                // Tolerate a trailing `;` before `done`.
                if self.at_kw(Keyword::Done) {
                    break;
                }
                actions.push(self.action()?);
            } else {
                break;
            }
        }
        let end = self.expect_kw(Keyword::Done)?.span;
        Ok(RuleDef {
            event,
            actions,
            span: start.merge(end),
        })
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Exec) => {
                self.bump();
                let script = self.template_value("script name")?;
                let mut args = Vec::new();
                while self.at_template_value() {
                    args.push(self.template_value("script argument")?);
                }
                Ok(Action::Exec { script, args })
            }
            TokenKind::Keyword(Keyword::Notify) => {
                self.bump();
                let message = self.template_value("notification message")?;
                Ok(Action::Notify { message })
            }
            TokenKind::Keyword(Keyword::Post) => {
                self.bump();
                let event = self.expect_ident("event name")?;
                let direction = if self.eat_kw(Keyword::Up) {
                    Direction::Up
                } else if self.eat_kw(Keyword::Down) {
                    Direction::Down
                } else {
                    return Err(ParseError::new(
                        format!("expected `up` or `down`, found {}", self.peek_kind()),
                        self.peek().span,
                    ));
                };
                let to_view = if self.eat_kw(Keyword::To) {
                    Some(self.expect_ident("target view name")?)
                } else {
                    None
                };
                let mut args = Vec::new();
                while self.at_template_value() {
                    args.push(self.template_value("post argument")?);
                }
                Ok(Action::Post {
                    event,
                    direction,
                    to_view,
                    args,
                })
            }
            TokenKind::Ident(prop) => {
                self.bump();
                if !matches!(self.peek_kind(), TokenKind::Assign) {
                    return Err(ParseError::new(
                        format!("expected `=` after `{prop}`, found {}", self.peek_kind()),
                        self.peek().span,
                    )
                    .with_hint("actions are `prop = value`, `exec …`, `notify …` or `post …`"));
                }
                self.bump();
                let value = self.template_value("assigned value")?;
                Ok(Action::Assign { prop, value })
            }
            other => Err(ParseError::new(
                format!("expected an action, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn at_template_value(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Str(_) | TokenKind::Var(_)
        ) && !self.next_is_assignment()
    }

    /// Lookahead: an identifier followed by `=` starts the next assignment
    /// action, not an argument (only relevant after a missing `;`, which we
    /// report as an error at the assignment).
    fn next_is_assignment(&self) -> bool {
        if !matches!(self.peek_kind(), TokenKind::Ident(_)) {
            return false;
        }
        matches!(
            self.tokens.get(self.pos + 1).map(|t| &t.kind),
            Some(TokenKind::Assign)
        )
    }

    fn template_value(&mut self, what: &str) -> Result<Template, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Template::lit(s))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Template::lit(n.to_string()))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Template::parse_interpolated(&s))
            }
            TokenKind::Var(v) => {
                self.bump();
                Ok(Template {
                    segments: vec![Segment::Var(v)],
                })
            }
            other => Err(ParseError::new(
                format!("expected {what}, found {other}"),
                self.peek().span,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.primary()?;
        match self.peek_kind() {
            TokenKind::EqEq => {
                self.bump();
                let rhs = self.primary()?;
                Ok(Expr::Eq(Box::new(lhs), Box::new(rhs)))
            }
            TokenKind::NotEq => {
                self.bump();
                let rhs = self.primary()?;
                Ok(Expr::Ne(Box::new(lhs), Box::new(rhs)))
            }
            _ => Ok(lhs),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                if !matches!(self.peek_kind(), TokenKind::RParen) {
                    return Err(ParseError::new(
                        format!("expected `)`, found {}", self.peek_kind()),
                        self.peek().span,
                    ));
                }
                self.bump();
                Ok(inner)
            }
            TokenKind::Var(v) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            TokenKind::Ident(a) => {
                self.bump();
                Ok(Expr::Atom(a))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Atom(n.to_string()))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(Template::unescape_raw(&s)))
            }
            other => Err(ParseError::new(
                format!("expected an expression, found {other}"),
                self.peek().span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_view(body: &str) -> ViewDef {
        let src = format!("blueprint t view X {body} endview endblueprint");
        parse(&src).unwrap().views.into_iter().next().unwrap()
    }

    #[test]
    fn parses_fig2_property_rule() {
        // Fig. 2: "view GDSII / property DRC default bad copy / endview"
        let bp =
            parse("blueprint f2 view GDSII property DRC default bad copy endview endblueprint")
                .unwrap();
        let prop = &bp.views[0].properties[0];
        assert_eq!(prop.name, "DRC");
        assert_eq!(prop.default, "bad");
        assert_eq!(prop.transfer, Transfer::Copy);
    }

    #[test]
    fn parses_fig3_link_rule_with_trailing_move() {
        // Fig. 3: "link_from NetList propagates OutOfDate type derive_from MOVE"
        let v = parse_view("link_from NetList propagates OutOfDate type derive_from MOVE");
        let link = &v.links[0];
        assert_eq!(link.source, LinkSource::View("NetList".into()));
        assert_eq!(link.propagates, vec!["OutOfDate"]);
        assert_eq!(link.kind.as_deref(), Some("derive_from"));
        assert_eq!(link.transfer, Transfer::Move);
    }

    #[test]
    fn parses_prose_order_link_rule() {
        // Prose: "link_from HDL_model move propagates outofdate type derived"
        let v = parse_view("link_from HDL_model move propagates outofdate type derived");
        let link = &v.links[0];
        assert_eq!(link.transfer, Transfer::Move);
        assert_eq!(link.kind.as_deref(), Some("derived"));
    }

    #[test]
    fn parses_use_link_and_event_list() {
        let v = parse_view("use_link move propagates outofdate\nlink_from schematic propagates nl_sim, outofdate type derived");
        assert_eq!(v.links[0].source, LinkSource::UseLink);
        assert_eq!(v.links[1].propagates, vec!["nl_sim", "outofdate"]);
    }

    #[test]
    fn parses_continuous_assignment() {
        let v = parse_view(
            "let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)",
        );
        let l = &v.lets[0];
        assert_eq!(l.name, "state");
        assert_eq!(
            l.expr.variables(),
            vec!["lvs_res", "nl_sim_res", "uptodate"]
        );
    }

    #[test]
    fn parses_multi_action_rule() {
        let v = parse_view(r#"when ckin do uptodate = true; post outofdate down done"#);
        let r = &v.rules[0];
        assert_eq!(r.event, "ckin");
        assert_eq!(r.actions.len(), 2);
        assert!(matches!(r.actions[0], Action::Assign { .. }));
        assert!(matches!(
            &r.actions[1],
            Action::Post {
                event,
                direction: Direction::Down,
                to_view: None,
                ..
            } if event == "outofdate"
        ));
    }

    #[test]
    fn parses_post_to_view() {
        let v = parse_view("when checkin do post behavioral_sim_ok down to VerilogNetList done");
        match &v.rules[0].actions[0] {
            Action::Post {
                event,
                direction,
                to_view,
                ..
            } => {
                assert_eq!(event, "behavioral_sim_ok");
                assert_eq!(*direction, Direction::Down);
                assert_eq!(to_view.as_deref(), Some("VerilogNetList"));
            }
            other => panic!("expected post, got {other:?}"),
        }
    }

    #[test]
    fn parses_exec_with_interpolated_arg() {
        let v = parse_view(r#"when ckin do exec netlister "$oid" done"#);
        match &v.rules[0].actions[0] {
            Action::Exec { script, args } => {
                assert!(script.is_literal());
                assert_eq!(args.len(), 1);
                assert_eq!(args[0].as_single_var(), Some("oid"));
            }
            other => panic!("expected exec, got {other:?}"),
        }
    }

    #[test]
    fn parses_notify() {
        let v =
            parse_view(r#"when checkin do notify "$owner: Your oid $OID has been modified" done"#);
        match &v.rules[0].actions[0] {
            Action::Notify { message } => {
                assert!(!message.is_literal());
            }
            other => panic!("expected notify, got {other:?}"),
        }
    }

    #[test]
    fn parses_assignment_with_interpolation_and_post_arg() {
        let v = parse_view(
            r#"when ckin do lvs_res = "$oid changed by $user"; post lvs down "$lvs_res" done"#,
        );
        assert_eq!(v.rules[0].actions.len(), 2);
    }

    #[test]
    fn view_default_is_allowed() {
        let bp =
            parse("blueprint t view default property uptodate default true endview endblueprint")
                .unwrap();
        assert_eq!(bp.views[0].name, "default");
    }

    #[test]
    fn endview_is_optional_like_the_papers_listing() {
        let bp = parse(
            "blueprint t view a property p default x view b property q default y endview endblueprint",
        )
        .unwrap();
        assert_eq!(bp.views.len(), 2);
        assert_eq!(bp.views[0].properties.len(), 1);
        assert_eq!(bp.views[1].properties.len(), 1);
    }

    #[test]
    fn empty_view_is_allowed() {
        // The paper's synth_lib view has an empty body.
        let bp = parse("blueprint t view synth_lib endview endblueprint").unwrap();
        assert!(bp.views[0].properties.is_empty());
    }

    #[test]
    fn trailing_semicolon_tolerated() {
        let v = parse_view("when ckin do uptodate = true; done");
        assert_eq!(v.rules[0].actions.len(), 1);
    }

    #[test]
    fn error_on_missing_do() {
        let err = parse("blueprint t view a when ckin uptodate = true done endview endblueprint")
            .unwrap_err();
        assert!(err.message.contains("`do`"));
    }

    #[test]
    fn error_on_bad_direction() {
        let err =
            parse("blueprint t view a when ckin do post x sideways done endview endblueprint")
                .unwrap_err();
        assert!(err.message.contains("up"));
    }

    #[test]
    fn error_on_trailing_input() {
        let err = parse("blueprint t endblueprint garbage").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn error_spans_point_at_problem() {
        let err =
            parse("blueprint t\nview a\nproperty = default x\nendview endblueprint").unwrap_err();
        assert_eq!(err.span.start.line, 3);
    }

    #[test]
    fn parses_or_and_not_expressions() {
        let v = parse_view("let odd = not ($a == 1) or ($b != 2)");
        match &v.lets[0].expr {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(**lhs, Expr::Not(_)));
                assert!(matches!(**rhs, Expr::Ne(_, _)));
            }
            other => panic!("expected or, got {other:?}"),
        }
    }
}

//! Abstract syntax of BluePrint rule files.
//!
//! A [`Blueprint`] divides, as the paper does, into *template rules*
//! (configuration information: [`PropertyDef`], [`LinkDef`]) and *run-time*
//! information ([`LetDef`] continuous assignments and [`RuleDef`] event
//! rules).

use damocles_meta::Direction;

use crate::lang::diag::Span;

/// A complete `blueprint … endblueprint` description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blueprint {
    /// The project name following the `blueprint` keyword.
    pub name: String,
    /// View descriptions, in source order. The special view named `default`
    /// "applies to all the views" (Section 3.4).
    pub views: Vec<ViewDef>,
    /// Source extent.
    pub span: Span,
}

impl Blueprint {
    /// Looks up a view by name.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.iter().find(|v| v.name == name)
    }

    /// The special `default` view applying to all views, if declared.
    pub fn default_view(&self) -> Option<&ViewDef> {
        self.view("default")
    }

    /// A copy with every source span cleared, for structural comparison of
    /// blueprints from different sources (e.g. print/parse round-trips).
    pub fn normalized(&self) -> Blueprint {
        let mut bp = self.clone();
        bp.span = Span::default();
        for view in &mut bp.views {
            view.span = Span::default();
            for p in &mut view.properties {
                p.span = Span::default();
            }
            for l in &mut view.links {
                l.span = Span::default();
            }
            for l in &mut view.lets {
                l.span = Span::default();
            }
            for r in &mut view.rules {
                r.span = Span::default();
            }
        }
        bp
    }

    /// Every event name mentioned anywhere (rule triggers, propagate sets,
    /// post actions) — useful for policy checks and workload generation.
    pub fn known_events(&self) -> Vec<String> {
        let mut events: Vec<String> = Vec::new();
        for view in &self.views {
            for rule in &view.rules {
                events.push(rule.event.clone());
                for action in &rule.actions {
                    if let Action::Post { event, .. } = action {
                        events.push(event.clone());
                    }
                }
            }
            for link in &view.links {
                events.extend(link.propagates.iter().cloned());
            }
        }
        events.sort();
        events.dedup();
        events
    }
}

/// A `view … endview` description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// The view-type name (`HDL_model`, `schematic`, …) or `default`.
    pub name: String,
    /// Template properties attached to each new OID of this view.
    pub properties: Vec<PropertyDef>,
    /// Template links (`link_from` and `use_link` declarations).
    pub links: Vec<LinkDef>,
    /// Continuous assignments (`let state = …`).
    pub lets: Vec<LetDef>,
    /// Run-time rules (`when … do … done`).
    pub rules: Vec<RuleDef>,
    /// Source extent.
    pub span: Span,
}

impl ViewDef {
    /// An empty view definition (used by builders and tests).
    pub fn empty(name: impl Into<String>) -> Self {
        ViewDef {
            name: name.into(),
            properties: Vec::new(),
            links: Vec::new(),
            lets: Vec::new(),
            rules: Vec::new(),
            span: Span::default(),
        }
    }

    /// The rules triggered by `event`, in source order.
    pub fn rules_for<'a>(&'a self, event: &'a str) -> impl Iterator<Item = &'a RuleDef> + 'a {
        self.rules.iter().filter(move |r| r.event == event)
    }

    /// The `use_link` template of this view, if declared.
    pub fn use_link(&self) -> Option<&LinkDef> {
        self.links.iter().find(|l| l.source == LinkSource::UseLink)
    }

    /// The `link_from <view>` template naming `source_view`, if declared.
    pub fn link_from(&self, source_view: &str) -> Option<&LinkDef> {
        self.links
            .iter()
            .find(|l| matches!(&l.source, LinkSource::View(v) if v == source_view))
    }
}

/// How a template item carries over when a new version of an OID is created
/// (Figs. 2–3: "property COPY or MOVE … default value for 1st version").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transfer {
    /// Fresh default on every version (no keyword).
    #[default]
    Create,
    /// Copied from the previous version (stays on the old one too).
    Copy,
    /// Moved from the previous version (removed from the old one).
    Move,
}

impl Transfer {
    /// The source keyword, if any.
    pub fn keyword(self) -> Option<&'static str> {
        match self {
            Transfer::Create => None,
            Transfer::Copy => Some("copy"),
            Transfer::Move => Some("move"),
        }
    }
}

/// A template property: `property DRC default bad copy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    /// Property name.
    pub name: String,
    /// Default value atom, used for the first version (and for
    /// [`Transfer::Create`] on every version).
    pub default: String,
    /// Version-transfer behaviour.
    pub transfer: Transfer,
    /// Source extent.
    pub span: Span,
}

/// Where a template link comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkSource {
    /// `link_from <view>`: a derive link whose *from* end is an OID of the
    /// named view and whose *to* end is an OID of the declaring view.
    View(String),
    /// `use_link`: hierarchy within the declaring view ("the parent and
    /// child views of the use link are of the same view type").
    UseLink,
}

/// A template link declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkDef {
    /// `link_from <view>` or `use_link`.
    pub source: LinkSource,
    /// Version-transfer behaviour (`move` shifts the link to new versions).
    pub transfer: Transfer,
    /// The PROPAGATE property: events allowed through instances of the link.
    pub propagates: Vec<String>,
    /// The TYPE property keyword (`derived`, `equivalence`, `depend_on`, …).
    pub kind: Option<String>,
    /// Source extent.
    pub span: Span,
}

/// A continuous assignment: `let state = ($sim == ok) and ($DRC == good)`.
///
/// "Such an assignment is continuously being reevaluated." — Section 3.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetDef {
    /// The derived property name.
    pub name: String,
    /// The defining expression.
    pub expr: Expr,
    /// Source extent.
    pub span: Span,
}

/// A run-time rule: `when <event> do <action> [; <action>]* done`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleDef {
    /// Triggering event name.
    pub event: String,
    /// Actions executed in order.
    pub actions: Vec<Action>,
    /// Source extent.
    pub span: Span,
}

/// One action of a run-time rule.
///
/// Section 3.2 enumerates the three action classes: property assignment,
/// script execution, and event posting; `notify` is the messaging form of
/// script execution shown in the same section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// `prop = <value>` — assign a (possibly interpolated) value.
    Assign {
        /// Target property name.
        prop: String,
        /// Value template, interpolated at execution time.
        value: Template,
    },
    /// `exec <script> [args…]` — invoke a wrapper script / tool.
    Exec {
        /// Script name template.
        script: Template,
        /// Argument templates.
        args: Vec<Template>,
    },
    /// `notify "<message>"` — send a message to users.
    Notify {
        /// Message template.
        message: Template,
    },
    /// `post <event> <up|down> [to <view>] [args…]`.
    Post {
        /// Event to post.
        event: String,
        /// Propagation direction.
        direction: Direction,
        /// Targeted view for the `post … to <view>` form.
        to_view: Option<String>,
        /// Argument templates.
        args: Vec<Template>,
    },
}

/// A `$`-interpolatable string: a sequence of literal and variable segments.
///
/// `"$oid changed by $user"` becomes
/// `[Var("oid"), Lit(" changed by "), Var("user")]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Template {
    /// The segments, in order.
    pub segments: Vec<Segment>,
}

/// One segment of a [`Template`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal text.
    Lit(String),
    /// A `$variable` reference.
    Var(String),
}

impl Template {
    /// A template consisting of a single literal.
    pub fn lit(text: impl Into<String>) -> Self {
        Template {
            segments: vec![Segment::Lit(text.into())],
        }
    }

    /// A template consisting of a single variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Template {
            segments: vec![Segment::Var(name.into())],
        }
    }

    /// Splits a raw double-quoted string into literal and `$var` segments,
    /// shell-style. A variable name starts with a letter or `_`; `$` followed
    /// by anything else is literal, and the lexer's `\$` marker is an escaped
    /// literal dollar.
    pub fn parse_interpolated(raw: &str) -> Self {
        let mut segments = Vec::new();
        let mut lit = String::new();
        let mut chars = raw.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '\\' && chars.peek() == Some(&'$') {
                chars.next();
                lit.push('$');
            } else if c == '$' {
                let starts_name = chars
                    .peek()
                    .is_some_and(|&n| n.is_ascii_alphabetic() || n == '_');
                if !starts_name {
                    lit.push('$');
                    continue;
                }
                let mut name = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        name.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if !lit.is_empty() {
                    segments.push(Segment::Lit(std::mem::take(&mut lit)));
                }
                segments.push(Segment::Var(name));
            } else {
                lit.push(c);
            }
        }
        if !lit.is_empty() {
            segments.push(Segment::Lit(lit));
        }
        Template { segments }
    }

    /// Removes the lexer's `\$` escape marker from a raw string that is used
    /// verbatim (not interpolated), e.g. expression string literals.
    pub fn unescape_raw(raw: &str) -> String {
        raw.replace("\\$", "$")
    }

    /// Whether the template is a single bare variable (`$arg`).
    pub fn as_single_var(&self) -> Option<&str> {
        match self.segments.as_slice() {
            [Segment::Var(v)] => Some(v),
            _ => None,
        }
    }

    /// Whether the template contains no variables at all.
    pub fn is_literal(&self) -> bool {
        self.segments.iter().all(|s| matches!(s, Segment::Lit(_)))
    }
}

/// A boolean/comparison expression for continuous assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A `$property` (or builtin) reference.
    Var(String),
    /// A bare atom (`good`, `true`, `42`).
    Atom(String),
    /// A quoted string literal.
    Str(String),
    /// `a == b`
    Eq(Box<Expr>, Box<Expr>),
    /// `a != b`
    Ne(Box<Expr>, Box<Expr>),
    /// `a and b`
    And(Box<Expr>, Box<Expr>),
    /// `a or b`
    Or(Box<Expr>, Box<Expr>),
    /// `not a`
    Not(Box<Expr>),
}

impl Expr {
    /// All `$var` names referenced by the expression, deduplicated.
    pub fn variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.sort();
        vars.dedup();
        vars
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Atom(_) | Expr::Str(_) => {}
            Expr::Eq(a, b) | Expr::Ne(a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) => a.collect_vars(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_interpolation_splits_segments() {
        let t = Template::parse_interpolated("$oid changed by $user");
        assert_eq!(
            t.segments,
            vec![
                Segment::Var("oid".into()),
                Segment::Lit(" changed by ".into()),
                Segment::Var("user".into()),
            ]
        );
    }

    #[test]
    fn lone_dollar_is_literal() {
        let t = Template::parse_interpolated("costs 5$ only");
        assert!(t.is_literal());
        assert_eq!(t.segments, vec![Segment::Lit("costs 5$ only".into())]);
    }

    #[test]
    fn single_var_detection() {
        assert_eq!(Template::var("arg").as_single_var(), Some("arg"));
        assert_eq!(Template::lit("bad").as_single_var(), None);
        assert_eq!(
            Template::parse_interpolated("$arg").as_single_var(),
            Some("arg")
        );
    }

    #[test]
    fn expr_variables_deduplicated() {
        let e = Expr::And(
            Box::new(Expr::Eq(
                Box::new(Expr::Var("uptodate".into())),
                Box::new(Expr::Atom("true".into())),
            )),
            Box::new(Expr::Ne(
                Box::new(Expr::Var("uptodate".into())),
                Box::new(Expr::Var("drc_result".into())),
            )),
        );
        assert_eq!(e.variables(), vec!["drc_result", "uptodate"]);
    }

    #[test]
    fn view_lookup_helpers() {
        let mut v = ViewDef::empty("schematic");
        v.links.push(LinkDef {
            source: LinkSource::View("HDL_model".into()),
            transfer: Transfer::Create,
            propagates: vec!["outofdate".into()],
            kind: Some("derived".into()),
            span: Span::default(),
        });
        v.links.push(LinkDef {
            source: LinkSource::UseLink,
            transfer: Transfer::Move,
            propagates: vec!["outofdate".into()],
            kind: None,
            span: Span::default(),
        });
        assert!(v.use_link().is_some());
        assert!(v.link_from("HDL_model").is_some());
        assert!(v.link_from("netlist").is_none());

        let bp = Blueprint {
            name: "t".into(),
            views: vec![ViewDef::empty("default"), v],
            span: Span::default(),
        };
        assert!(bp.default_view().is_some());
        assert!(bp.view("schematic").is_some());
        assert_eq!(bp.known_events(), vec!["outofdate"]);
    }

    #[test]
    fn transfer_keywords() {
        assert_eq!(Transfer::Create.keyword(), None);
        assert_eq!(Transfer::Copy.keyword(), Some("copy"));
        assert_eq!(Transfer::Move.keyword(), Some("move"));
    }
}

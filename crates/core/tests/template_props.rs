//! Property tests on template-rule invariants (Figs. 2–3) across random
//! version histories.

use blueprint_core::engine::audit::AuditLog;
use blueprint_core::engine::template;
use blueprint_core::lang::parser::parse;
use damocles_meta::{MetaDb, Oid, Value};
use proptest::prelude::*;

fn mode_keyword(mode: u8) -> &'static str {
    match mode % 3 {
        0 => "",
        1 => "copy",
        _ => "move",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After template application, the new version carries *every* template
    /// property; `copy` preserves the predecessor's annotation, `move`
    /// strips it, `default` resets.
    #[test]
    fn every_template_property_is_attached(
        n_props in 1usize..12,
        modes in proptest::collection::vec(any::<u8>(), 12),
        chain_len in 1u32..6,
        edits in proptest::collection::vec((0usize..12, "[a-z]{1,6}"), 0..12),
    ) {
        let mut src = String::from("blueprint t view V\n");
        for (i, mode) in modes.iter().enumerate().take(n_props) {
            src.push_str(&format!(
                "    property p{i} default d{i} {}\n",
                mode_keyword(*mode)
            ));
        }
        src.push_str("endview endblueprint");
        let bp = parse(&src).unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();

        let mut prev = None;
        for version in 1..=chain_len {
            let id = db.create_oid(Oid::new("b", "V", version)).unwrap();
            let report = template::apply_on_create(&bp, &mut db, id, &mut audit).unwrap();
            prop_assert_eq!(report.props_attached, n_props);
            // Every template property is present on the new version.
            #[allow(clippy::needless_range_loop)]
            for i in 0..n_props {
                let present = db.get_prop(id, &format!("p{i}")).unwrap().is_some();
                prop_assert!(present);
            }
            // Move templates stripped the predecessor.
            if let Some(prev_id) = prev {
                #[allow(clippy::needless_range_loop)]
                for i in 0..n_props {
                    let mode = mode_keyword(modes[i]);
                    let on_prev = db.get_prop(prev_id, &format!("p{i}")).unwrap();
                    if mode == "move" {
                        let stripped = on_prev.is_none();
                        prop_assert!(stripped, "move must strip the old version");
                    } else {
                        let kept = on_prev.is_some();
                        prop_assert!(kept);
                    }
                }
            }
            // Designer edits between versions.
            if version < chain_len {
                for (slot, value) in &edits {
                    if slot % n_props.max(1) < n_props {
                        let name = format!("p{}", slot % n_props);
                        db.set_prop(id, &name, Value::from_atom(value)).unwrap();
                    }
                }
            }
            prev = Some(id);
        }
    }

    /// Copy semantics: the value seen on version k+1 equals whatever version
    /// k held at creation time of k+1.
    #[test]
    fn copy_carries_the_latest_value(values in proptest::collection::vec("[a-z]{1,5}", 1..6)) {
        let bp = parse("blueprint t view V property tag default init copy endview endblueprint")
            .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let v1 = db.create_oid(Oid::new("b", "V", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, v1, &mut audit).unwrap();
        let mut prev = v1;
        for (i, value) in values.iter().enumerate() {
            db.set_prop(prev, "tag", Value::from_atom(value)).unwrap();
            let next = db.create_oid(Oid::new("b", "V", i as u32 + 2)).unwrap();
            template::apply_on_create(&bp, &mut db, next, &mut audit).unwrap();
            prop_assert_eq!(
                db.get_prop(next, "tag").unwrap().unwrap().as_atom(),
                value.clone()
            );
            prev = next;
        }
    }

    /// Link conservation: under a `move` template the live link count is
    /// invariant across version creation; under `copy` it grows by the
    /// number of incident links; with no transfer keyword it is invariant
    /// (links stay on the old version).
    #[test]
    fn link_counts_follow_transfer_mode(
        n_links in 1usize..10,
        mode in 0u8..3,
    ) {
        let keyword = mode_keyword(mode);
        let src = format!(
            "blueprint t view S endview view T link_from S {keyword} propagates e type derived endview endblueprint"
        );
        let bp = parse(&src).unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let t1 = db.create_oid(Oid::new("b", "T", 1)).unwrap();
        for i in 0..n_links {
            let s = db.create_oid(Oid::new(format!("s{i}"), "S", 1)).unwrap();
            template::instantiate_link(&bp, &mut db, s, t1).unwrap();
        }
        let before = db.link_count();
        let t2 = db.create_oid(Oid::new("b", "T", 2)).unwrap();
        let report = template::apply_on_create(&bp, &mut db, t2, &mut audit).unwrap();
        let after = db.link_count();
        match keyword {
            "move" => {
                prop_assert_eq!(after, before);
                prop_assert_eq!(report.links_moved, n_links);
                prop_assert!(db.entry(t1).unwrap().link_ids().is_empty());
            }
            "copy" => {
                prop_assert_eq!(after, before + n_links);
                prop_assert_eq!(report.links_copied, n_links);
                prop_assert_eq!(db.entry(t1).unwrap().link_ids().len(), n_links);
            }
            _ => {
                prop_assert_eq!(after, before);
                prop_assert_eq!(report.links_moved + report.links_copied, 0);
                prop_assert_eq!(db.entry(t2).unwrap().link_ids().len(), 0);
            }
        }
    }

    /// Version chains built through templates never lose the invariant that
    /// the newest version holds every `move`-mode link.
    #[test]
    fn moved_links_always_track_the_head(versions in 2u32..8) {
        let bp = parse(
            "blueprint t view S endview view T link_from S move propagates e type derived endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let s = db.create_oid(Oid::new("src", "S", 1)).unwrap();
        let t1 = db.create_oid(Oid::new("b", "T", 1)).unwrap();
        template::instantiate_link(&bp, &mut db, s, t1).unwrap();
        for v in 2..=versions {
            let t = db.create_oid(Oid::new("b", "T", v)).unwrap();
            template::apply_on_create(&bp, &mut db, t, &mut audit).unwrap();
        }
        let head = db.latest_version("b", "T").unwrap();
        let links = db.entry(head).unwrap().link_ids();
        prop_assert_eq!(links.len(), 1);
        let link = db.link(links[0]).unwrap();
        prop_assert_eq!(link.from, s);
        prop_assert_eq!(link.to, head);
        // All non-head versions are bare.
        for v in 1..versions {
            let id = db.resolve(&Oid::new("b", "T", v)).unwrap();
            prop_assert!(db.entry(id).unwrap().link_ids().is_empty());
        }
    }
}

//! Differential property tests of the engine's execution modes.
//!
//! 1. The compiled dispatch path must be observationally identical to the
//!    seed's AST-walking path.
//! 2. The sharded batch path ([`RuntimeEngine::process_batch_sharded`])
//!    must be observationally identical to sequential compiled execution
//!    at **every** worker count (`n ∈ {1, 2, 4, 8}`).
//!
//! For randomized blueprints, design graphs and event streams, the paths
//! are run side by side on cloned databases and held to the same
//! [`ProcessOutcome`] (delivered count and script invocations), the same
//! retained audit-record sequence, the same journal-op stream
//! ([`MetaDb::drain_journal_ops`]) and the same final database image
//! (`damocles_meta::persist::save`). The random graphs deliberately
//! include raw links that bridge compile-time shard components, and a
//! dedicated case runs disjoint instance chains of one view family —
//! per-OID [`ShardMap`] groups that only exist with instance-level
//! sharding — so both merge and split behaviour are exercised.

use blueprint_core::engine::audit::AuditLog;
use blueprint_core::engine::compile::{CompiledBlueprint, ShardMap};
use blueprint_core::engine::event::QueuedEvent;
use blueprint_core::engine::policy::Policy;
use blueprint_core::engine::runtime::RuntimeEngine;
use blueprint_core::lang::ast::{
    Action, Blueprint, Expr, LetDef, LinkDef, LinkSource, PropertyDef, RuleDef, Template, Transfer,
    ViewDef,
};
use blueprint_core::lang::diag::Span;
use damocles_meta::{persist, Direction, LinkClass, LinkKind, MetaDb, Oid, OidId};
use proptest::prelude::*;

const VIEWS: &[&str] = &["alpha", "beta", "gamma", "delta"];
const EVENTS: &[&str] = &["ckin", "ev0", "ev1", "ev2", "mystery"];
const PROPS: &[&str] = &["p0", "p1", "state"];

fn view_name() -> impl Strategy<Value = String> {
    (0usize..VIEWS.len()).prop_map(|i| VIEWS[i].to_string())
}

fn event_name() -> impl Strategy<Value = String> {
    (0usize..EVENTS.len()).prop_map(|i| EVENTS[i].to_string())
}

fn prop_name() -> impl Strategy<Value = String> {
    (0usize..PROPS.len()).prop_map(|i| PROPS[i].to_string())
}

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Up), Just(Direction::Down)]
}

fn template() -> impl Strategy<Value = Template> {
    prop_oneof![
        "[a-z]{1,6}".prop_map(Template::lit),
        prop_name().prop_map(Template::var),
        Just(Template::var("arg")),
        Just(Template::var("oid")),
        Just(Template::parse_interpolated("$event by $user")),
    ]
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (prop_name(), template()).prop_map(|(prop, value)| Action::Assign { prop, value }),
        (template(), proptest::collection::vec(template(), 0..2))
            .prop_map(|(script, args)| Action::Exec { script, args }),
        template().prop_map(|message| Action::Notify { message }),
        (
            event_name(),
            direction(),
            proptest::option::of(view_name()),
            proptest::collection::vec(template(), 0..2),
        )
            .prop_map(|(event, direction, to_view, args)| Action::Post {
                event,
                direction,
                to_view,
                args,
            }),
    ]
}

fn rule() -> impl Strategy<Value = RuleDef> {
    (event_name(), proptest::collection::vec(action(), 1..4)).prop_map(|(event, actions)| RuleDef {
        event,
        actions,
        span: Span::default(),
    })
}

fn view_def(name: String) -> impl Strategy<Value = ViewDef> {
    (
        proptest::collection::vec(rule(), 0..3),
        proptest::collection::vec((prop_name(), "[a-z]{1,4}"), 0..2),
        proptest::option::of(prop_name()),
    )
        .prop_map(move |(rules, props, let_prop)| {
            let mut v = ViewDef::empty(name.clone());
            for (pname, default) in props {
                if v.properties.iter().all(|p| p.name != pname) {
                    v.properties.push(PropertyDef {
                        name: pname,
                        default,
                        transfer: Transfer::Create,
                        span: Span::default(),
                    });
                }
            }
            if let Some(p) = let_prop {
                v.lets.push(LetDef {
                    name: "derived".to_string(),
                    expr: Expr::Eq(
                        Box::new(Expr::Var(p)),
                        Box::new(Expr::Atom("true".to_string())),
                    ),
                    span: Span::default(),
                });
            }
            v.rules = rules;
            v
        })
}

/// A blueprint over a random subset of the view pool, optionally with a
/// `default` view, plus link templates (unused by the engines directly but
/// realistic for compilation).
fn blueprint() -> impl Strategy<Value = Blueprint> {
    (any::<bool>(), 2usize..5)
        .prop_flat_map(|(with_default, n_views)| {
            let mut names: Vec<String> = VIEWS[..n_views.min(VIEWS.len())]
                .iter()
                .map(|s| s.to_string())
                .collect();
            if with_default {
                names.insert(0, "default".to_string());
            }
            names.into_iter().map(view_def).collect::<Vec<_>>()
        })
        .prop_map(|mut views| {
            // Give one view a link template so compilation sees PROPAGATE sets.
            if views.len() > 1 {
                let link = LinkDef {
                    source: LinkSource::View(views[0].name.clone()),
                    transfer: Transfer::Move,
                    propagates: vec!["ev0".to_string(), "ckin".to_string()],
                    kind: Some("derived".to_string()),
                    span: Span::default(),
                };
                let last = views.len() - 1;
                views[last].links.push(link);
            }
            Blueprint {
                name: "difftest".to_string(),
                views,
                span: Span::default(),
            }
        })
}

/// A design graph: OIDs spread over the view pool (plus an undeclared
/// "ghost" view), and links with random PROPAGATE subsets.
#[derive(Debug, Clone)]
struct GraphSpec {
    oids: Vec<usize>,                  // index into VIEWS + ghost slot
    links: Vec<(usize, usize, usize)>, // from, to, propagate mask
}

fn graph() -> impl Strategy<Value = GraphSpec> {
    (
        proptest::collection::vec(0usize..VIEWS.len() + 1, 2..8),
        proptest::collection::vec((0usize..8, 0usize..8, 0usize..32), 0..12),
    )
        .prop_map(|(oids, links)| GraphSpec { oids, links })
}

fn build_db(spec: &GraphSpec) -> (MetaDb, Vec<OidId>) {
    let mut db = MetaDb::new();
    let mut ids = Vec::new();
    for (i, &view_idx) in spec.oids.iter().enumerate() {
        let view = if view_idx < VIEWS.len() {
            VIEWS[view_idx]
        } else {
            "ghost"
        };
        let id = db
            .create_oid(Oid::new(format!("blk{i}"), view, 1))
            .expect("fresh oid");
        ids.push(id);
    }
    for &(from, to, mask) in &spec.links {
        let (from, to) = (from % ids.len(), to % ids.len());
        if from == to {
            continue;
        }
        let propagates: Vec<String> = EVENTS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, e)| e.to_string())
            .collect();
        db.add_link_with(
            ids[from],
            ids[to],
            LinkClass::Derive,
            LinkKind::DeriveFrom,
            propagates,
        )
        .expect("link endpoints live");
    }
    (db, ids)
}

/// One queued event: (event index, direction, target oid index, arg).
type EventSpec = (usize, bool, usize, String);

fn events() -> impl Strategy<Value = Vec<EventSpec>> {
    proptest::collection::vec(
        (0usize..EVENTS.len(), any::<bool>(), 0usize..8, "[a-z]{0,4}"),
        1..6,
    )
}

/// A fixed two-view blueprint for the instance-chain cases: both chain
/// views carry write-heavy rules so every delivery produces prop writes
/// that the sharded apply pipeline must order exactly like sequential.
fn chain_blueprint() -> Blueprint {
    let mut alpha = ViewDef::empty("alpha".to_string());
    alpha.rules.push(RuleDef {
        event: "ev0".to_string(),
        actions: vec![
            Action::Assign {
                prop: "p0".to_string(),
                value: Template::var("arg"),
            },
            Action::Assign {
                prop: "state".to_string(),
                value: Template::parse_interpolated("$event by $user"),
            },
        ],
        span: Span::default(),
    });
    alpha.rules.push(RuleDef {
        event: "ckin".to_string(),
        actions: vec![Action::Assign {
            prop: "state".to_string(),
            value: Template::lit("fresh"),
        }],
        span: Span::default(),
    });
    let mut beta = ViewDef::empty("beta".to_string());
    beta.rules.push(RuleDef {
        event: "ev0".to_string(),
        actions: vec![
            Action::Assign {
                prop: "p1".to_string(),
                value: Template::var("arg"),
            },
            Action::Notify {
                message: Template::parse_interpolated("chain hit $oid"),
            },
        ],
        span: Span::default(),
    });
    Blueprint {
        name: "chaintest".to_string(),
        views: vec![alpha, beta],
        span: Span::default(),
    }
}

/// Builds `chains` disjoint instance chains of `length` OIDs each, all
/// drawn from the same alpha/beta view family, linked along the chain
/// with PROPAGATE ev0+ckin, plus raw bridge links (tail of chain `a` to
/// head of chain `b`) for each requested bridge pair.
fn build_chains(
    chains: usize,
    length: usize,
    bridges: &[(usize, usize)],
) -> (MetaDb, Vec<OidId>, Vec<Vec<OidId>>) {
    let mut db = MetaDb::new();
    let mut all = Vec::new();
    let mut per_chain = Vec::new();
    for c in 0..chains {
        let mut ids = Vec::new();
        for i in 0..length {
            let view = if i % 2 == 0 { "alpha" } else { "beta" };
            let id = db
                .create_oid(Oid::new(format!("c{c}n{i}"), view, 1))
                .expect("fresh oid");
            ids.push(id);
            all.push(id);
        }
        for pair in ids.windows(2) {
            db.add_link_with(
                pair[0],
                pair[1],
                LinkClass::Derive,
                LinkKind::DeriveFrom,
                vec!["ev0".to_string(), "ckin".to_string()],
            )
            .expect("chain endpoints live");
        }
        per_chain.push(ids);
    }
    for &(a, b) in bridges {
        let (a, b) = (a % chains, b % chains);
        if a == b {
            continue;
        }
        db.add_link_with(
            per_chain[a][length - 1],
            per_chain[b][0],
            LinkClass::Derive,
            LinkKind::DeriveFrom,
            vec!["ev0".to_string()],
        )
        .expect("bridge endpoints live");
    }
    (db, all, per_chain)
}

/// Per-event observation: delivered count and debug-rendered invocations.
type Observation = (u64, Vec<String>);
/// Full-stream observation: per-event outcomes, final db image, audit trail.
type StreamObservation = (Vec<Observation>, String, Vec<String>);

fn run_stream(
    process: impl Fn(&mut RuntimeEngine, &mut MetaDb, &mut AuditLog, QueuedEvent) -> Observation,
    db: &mut MetaDb,
    ids: &[OidId],
    stream: &[EventSpec],
    policy: &Policy,
) -> StreamObservation {
    let mut engine = RuntimeEngine::new(policy.clone());
    let mut audit = AuditLog::retaining();
    let mut outcomes = Vec::new();
    for (event_idx, up, target, arg) in stream {
        let dir = if *up { Direction::Up } else { Direction::Down };
        let id = ids[target % ids.len()];
        let ev = QueuedEvent::target(EVENTS[*event_idx], dir, id, "difftest").with_arg(arg.clone());
        outcomes.push(process(&mut engine, db, &mut audit, ev));
    }
    let records: Vec<String> = audit.records().iter().map(|r| format!("{r:?}")).collect();
    (outcomes, persist::save(db), records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both dispatch paths produce identical outcomes, audit sequences and
    /// database state on randomized blueprints, graphs and event streams.
    #[test]
    fn compiled_path_matches_ast_path(
        bp in blueprint(),
        spec in graph(),
        stream in events(),
        shallow in any::<bool>(),
    ) {
        let policy = Policy {
            // Exercise depth truncation on some cases.
            max_post_depth: if shallow { 1 } else { 64 },
            ..Policy::default()
        };

        let (mut db_ast, ids) = build_db(&spec);
        let mut db_compiled = db_ast.clone();
        let compiled = CompiledBlueprint::compile(&bp);

        let (ast_outcomes, ast_image, ast_records) = run_stream(
            |engine, db, audit, ev| {
                let out = engine.process(&bp, db, audit, ev).expect("lenient policy");
                (
                    out.delivered,
                    out.invocations.iter().map(|i| format!("{i:?}")).collect(),
                )
            },
            &mut db_ast,
            &ids,
            &stream,
            &policy,
        );
        let (compiled_outcomes, compiled_image, compiled_records) = run_stream(
            |engine, db, audit, ev| {
                let out = engine
                    .process_compiled(&compiled, db, audit, ev)
                    .expect("lenient policy");
                (
                    out.delivered,
                    out.invocations.iter().map(|i| format!("{i:?}")).collect(),
                )
            },
            &mut db_compiled,
            &ids,
            &stream,
            &policy,
        );

        prop_assert_eq!(ast_outcomes, compiled_outcomes);
        prop_assert_eq!(ast_records, compiled_records);
        prop_assert_eq!(ast_image, compiled_image);
    }

    /// The sharded batch path matches sequential compiled execution —
    /// outcomes, merged audit-record sequence and persisted database image
    /// byte-for-byte — at every worker count.
    #[test]
    fn sharded_batches_match_sequential_at_any_worker_count(
        bp in blueprint(),
        spec in graph(),
        stream in events(),
        shallow in any::<bool>(),
    ) {
        let policy = Policy {
            max_post_depth: if shallow { 1 } else { 64 },
            ..Policy::default()
        };
        let compiled = CompiledBlueprint::compile(&bp);
        let (mut db_seq, ids) = build_db(&spec);
        db_seq.attach_journal();

        // Sequential reference: one process_compiled call per event.
        let (seq_outcomes, seq_image, seq_records) = run_stream(
            |engine, db, audit, ev| {
                let out = engine
                    .process_compiled(&compiled, db, audit, ev)
                    .expect("lenient policy");
                (
                    out.delivered,
                    out.invocations.iter().map(|i| format!("{i:?}")).collect(),
                )
            },
            &mut db_seq,
            &ids,
            &stream,
            &policy,
        );
        let seq_journal: Vec<String> = db_seq
            .drain_journal_ops()
            .iter()
            .map(|op| format!("{op:?}"))
            .collect();

        for workers in [1usize, 2, 4, 8] {
            let (mut db, ids) = build_db(&spec);
            db.attach_journal();
            let shards = ShardMap::build(&compiled, &db);
            let mut engine = RuntimeEngine::new(policy.clone());
            let mut audit = AuditLog::retaining();
            let events: Vec<QueuedEvent> = stream
                .iter()
                .map(|(event_idx, up, target, arg)| {
                    let dir = if *up { Direction::Up } else { Direction::Down };
                    let id = ids[target % ids.len()];
                    QueuedEvent::target(EVENTS[*event_idx], dir, id, "difftest")
                        .with_arg(arg.clone())
                })
                .collect();
            let batch = engine.process_batch_sharded(
                &compiled,
                &shards,
                &mut db,
                &mut audit,
                events,
                workers,
            );
            prop_assert!(batch.error.is_none(), "lenient policy: {:?}", batch.error);
            prop_assert!(batch.unprocessed.is_empty());

            let outcomes: Vec<Observation> = batch
                .outcomes
                .iter()
                .map(|out| {
                    (
                        out.delivered,
                        out.invocations.iter().map(|i| format!("{i:?}")).collect(),
                    )
                })
                .collect();
            let records: Vec<String> =
                audit.records().iter().map(|r| format!("{r:?}")).collect();
            let journal: Vec<String> = db
                .drain_journal_ops()
                .iter()
                .map(|op| format!("{op:?}"))
                .collect();
            prop_assert_eq!(&outcomes, &seq_outcomes, "workers={}", workers);
            prop_assert_eq!(&records, &seq_records, "workers={}", workers);
            prop_assert_eq!(&journal, &seq_journal, "workers={}", workers);
            prop_assert_eq!(&persist::save(&db), &seq_image, "workers={}", workers);
        }
    }

    /// Disjoint instance chains of a *single* view family must land in
    /// distinct per-OID shard groups, and — with random raw bridge links
    /// welding some chains together — the sharded path must still match
    /// sequential execution byte-for-byte at every worker count,
    /// including the journal-op stream.
    #[test]
    fn same_view_instance_chains_shard_apart_and_match_sequential(
        chains in 2usize..5,
        length in 2usize..5,
        bridges in proptest::collection::vec((0usize..4, 0usize..4), 0..3),
        stream in events(),
    ) {
        let bp = chain_blueprint();
        let policy = Policy::default();
        let compiled = CompiledBlueprint::compile(&bp);

        let (db_probe, _, per_chain) = build_chains(chains, length, &bridges);
        let effective: Vec<(usize, usize)> = bridges
            .iter()
            .map(|&(a, b)| (a % chains, b % chains))
            .filter(|(a, b)| a != b)
            .collect();
        let shards = ShardMap::build(&compiled, &db_probe);
        if effective.is_empty() {
            // No bridges: every chain is its own group, and per-view-
            // component sharding (which keyed on the shared view family)
            // could never have told them apart.
            let heads: Vec<_> = per_chain
                .iter()
                .map(|chain| shards.group_of(&compiled, &db_probe, chain[0]))
                .collect();
            for (ci, chain) in per_chain.iter().enumerate() {
                for id in chain {
                    prop_assert_eq!(
                        shards.group_of(&compiled, &db_probe, *id),
                        heads[ci],
                        "chain {} is internally split", ci
                    );
                }
            }
            let distinct: std::collections::BTreeSet<_> = heads.iter().collect();
            prop_assert_eq!(distinct.len(), chains);
        } else {
            // Bridged chains must share a group.
            for &(a, b) in &effective {
                prop_assert_eq!(
                    shards.group_of(&compiled, &db_probe, per_chain[a][length - 1]),
                    shards.group_of(&compiled, &db_probe, per_chain[b][0]),
                    "bridge {}->{} not merged", a, b
                );
            }
        }

        let (mut db_seq, ids, _) = build_chains(chains, length, &bridges);
        db_seq.attach_journal();
        let (seq_outcomes, seq_image, seq_records) = run_stream(
            |engine, db, audit, ev| {
                let out = engine
                    .process_compiled(&compiled, db, audit, ev)
                    .expect("lenient policy");
                (
                    out.delivered,
                    out.invocations.iter().map(|i| format!("{i:?}")).collect(),
                )
            },
            &mut db_seq,
            &ids,
            &stream,
            &policy,
        );
        let seq_journal: Vec<String> = db_seq
            .drain_journal_ops()
            .iter()
            .map(|op| format!("{op:?}"))
            .collect();

        for workers in [1usize, 2, 4, 8] {
            let (mut db, ids, _) = build_chains(chains, length, &bridges);
            db.attach_journal();
            let shards = ShardMap::build(&compiled, &db);
            let mut engine = RuntimeEngine::new(policy.clone());
            let mut audit = AuditLog::retaining();
            let events: Vec<QueuedEvent> = stream
                .iter()
                .map(|(event_idx, up, target, arg)| {
                    let dir = if *up { Direction::Up } else { Direction::Down };
                    let id = ids[target % ids.len()];
                    QueuedEvent::target(EVENTS[*event_idx], dir, id, "difftest")
                        .with_arg(arg.clone())
                })
                .collect();
            let batch = engine.process_batch_sharded(
                &compiled,
                &shards,
                &mut db,
                &mut audit,
                events,
                workers,
            );
            prop_assert!(batch.error.is_none(), "lenient policy: {:?}", batch.error);
            prop_assert!(batch.unprocessed.is_empty());

            let outcomes: Vec<Observation> = batch
                .outcomes
                .iter()
                .map(|out| {
                    (
                        out.delivered,
                        out.invocations.iter().map(|i| format!("{i:?}")).collect(),
                    )
                })
                .collect();
            let records: Vec<String> =
                audit.records().iter().map(|r| format!("{r:?}")).collect();
            let journal: Vec<String> = db
                .drain_journal_ops()
                .iter()
                .map(|op| format!("{op:?}"))
                .collect();
            prop_assert_eq!(&outcomes, &seq_outcomes, "workers={}", workers);
            prop_assert_eq!(&records, &seq_records, "workers={}", workers);
            prop_assert_eq!(&journal, &seq_journal, "workers={}", workers);
            prop_assert_eq!(&persist::save(&db), &seq_image, "workers={}", workers);
        }
    }
}

//! Fine-grained semantics of the run-time engine, pinned as crate-level
//! tests: the Section 3.2 phase ordering (assign → let → exec → post),
//! default-view layering, argument plumbing, and audit-trail ordering.

use blueprint_core::engine::audit::AuditRecord;
use blueprint_core::engine::exec::RecordingExecutor;
use blueprint_core::engine::policy::{Policy, Strictness};
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::lang::parser::parse;
use damocles_meta::{Oid, Value};

#[test]
fn assigns_run_before_lets_before_execs_before_posts() {
    // The exec argument reads a property assigned in the *same* rule, and a
    // let-derived property: both must be visible, proving the phase order.
    let bp = parse(
        r#"blueprint order
        view v
            property raw default none
            let derived = ($raw == fresh)
            when go do raw = fresh; exec probe "$raw" "$derived" done
        endview endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::with_executor(bp, RecordingExecutor::new()).unwrap();
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent go up {oid}"), "d").unwrap();
    s.process_all().unwrap();
    let inv = &s.executor().invocations_of("probe")[0];
    assert_eq!(
        inv.args,
        vec!["fresh".to_string(), "true".to_string()],
        "assign ran first, then the continuous assignment, then exec rendering"
    );
}

#[test]
fn posts_render_arguments_after_assigns() {
    // The §3.4 schematic pattern: `lvs_res = "$oid changed by $user"; post
    // lvs down "$lvs_res"` — the posted argument must carry the *new* value.
    let bp = parse(
        r#"blueprint t
        view a
            property note default empty
            when go do note = "$user was here"; post relay down "$note" done
        endview
        view b
            property got default empty
            link_from a propagates relay type derived
            when relay do got = $arg done
        endview
        endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::new(bp).unwrap();
    let a = s.checkin("x", "a", "yves", b"1".to_vec()).unwrap();
    let b = s.checkin("x", "b", "yves", b"1".to_vec()).unwrap();
    s.connect_oids(&a, &b).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent go up {a}"), "marc")
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(
        s.prop(&b, "got").unwrap().as_atom(),
        "marc was here",
        "the rendered note travelled as $arg"
    );
}

#[test]
fn default_view_rules_run_before_view_rules() {
    // Both the default view and the specific view assign the same property;
    // the view-specific rule must win by running second.
    let bp = parse(
        r#"blueprint t
        view default
            property who default nobody
            when mark do who = generic done
        endview
        view special
            when mark do who = specific done
        endview
        endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::new(bp).unwrap();
    let sp = s.checkin("b", "special", "d", b"x".to_vec()).unwrap();
    let other = s.checkin("b", "plain_view", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    for oid in [&sp, &other] {
        s.post_line(&format!("postEvent mark up {oid}"), "d")
            .unwrap();
    }
    s.process_all().unwrap();
    assert_eq!(s.prop(&sp, "who").unwrap().as_atom(), "specific");
    // Views without their own rule get the default behaviour.
    assert_eq!(s.prop(&other, "who").unwrap().as_atom(), "generic");
}

#[test]
fn multiple_rules_for_one_event_run_in_source_order() {
    let bp = parse(
        r#"blueprint t
        view v
            property trail default start
            when go do trail = "$trail-a" done
            when go do trail = "$trail-b" done
            when go do trail = "$trail-c" done
        endview endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::new(bp).unwrap();
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent go up {oid}"), "d").unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&oid, "trail").unwrap().as_atom(), "start-a-b-c");
}

#[test]
fn audit_retention_records_full_wave_order() {
    let bp = parse(
        r#"blueprint t
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view src endview
        view dst
            link_from src move propagates outofdate type derived
        endview
        endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::new(bp).unwrap().with_audit_retention();
    let a = s.checkin("b", "src", "d", b"1".to_vec()).unwrap();
    let b = s.checkin("b", "dst", "d", b"1".to_vec()).unwrap();
    s.connect_oids(&a, &b).unwrap();
    s.process_all().unwrap();
    s.reset_audit();

    s.checkin("b", "src", "d", b"2".to_vec()).unwrap();
    s.process_all().unwrap();

    let kinds: Vec<&'static str> = s
        .audit()
        .records()
        .iter()
        .map(|r| match r {
            AuditRecord::TemplateApplied { .. } => "template",
            AuditRecord::Delivered { .. } => "delivered",
            AuditRecord::Assigned { .. } => "assigned",
            AuditRecord::Reevaluated { .. } => "let",
            AuditRecord::EventPosted { .. } => "posted",
            AuditRecord::Propagated { .. } => "propagated",
            AuditRecord::ScriptInvoked { .. } => "script",
            AuditRecord::CycleSkipped { .. } => "cycle",
            AuditRecord::DepthTruncated { .. } => "depth",
            AuditRecord::UnmatchedEvent { .. } => "unmatched",
        })
        .collect();
    // template application (+ owner assign is a raw set, not audited), then
    // the ckin delivery at src: assign, post, propagation to dst, delivery
    // at dst with its own assign.
    let expected_subsequence = [
        "template",
        "delivered",
        "assigned",
        "posted",
        "propagated",
        "delivered",
        "assigned",
    ];
    let mut it = kinds.iter();
    for want in expected_subsequence {
        assert!(
            it.any(|k| *k == want),
            "missing `{want}` in audit order {kinds:?}"
        );
    }
}

#[test]
fn observe_strictness_records_unmatched_events() {
    let bp = parse("blueprint t view v endview endblueprint").unwrap();
    let policy = Policy {
        unmatched_events: Strictness::Observe,
        ..Policy::default()
    };
    let mut s = ProjectServer::new(bp)
        .unwrap()
        .with_policy(policy)
        .with_audit_retention();
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent mystery up {oid}"), "d")
        .unwrap();
    s.process_all().unwrap();
    let unmatched = s
        .audit()
        .records()
        .iter()
        .filter(|r| matches!(r, AuditRecord::UnmatchedEvent { .. }))
        .count();
    // ckin matched nothing either (no default view): 2 unmatched total.
    assert!(unmatched >= 1, "expected UnmatchedEvent records");
}

#[test]
fn reject_strictness_fails_unmatched_events() {
    let bp = parse("blueprint t view v when known do p = x done endview endblueprint").unwrap();
    let policy = Policy {
        unmatched_events: Strictness::Reject,
        ..Policy::default()
    };
    let mut s = ProjectServer::new(bp).unwrap().with_policy(policy);
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    // Even the built-in ckin event is unmatched here -> rejection.
    let err = s.process_all().unwrap_err();
    assert!(err.to_string().contains("matches no rule"), "{err}");
    // Known events are fine after draining the poisoned queue.
    let mut s2 = {
        let bp = parse("blueprint t view v property p default none when known do p = $arg done when ckin do p = checked done endview endblueprint").unwrap();
        let policy = Policy {
            unmatched_events: Strictness::Reject,
            ..Policy::default()
        };
        ProjectServer::new(bp).unwrap().with_policy(policy)
    };
    let oid2 = s2.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s2.process_all().unwrap();
    s2.post_line(&format!("postEvent known up {oid2} \"y\""), "d")
        .unwrap();
    s2.process_all().unwrap();
    assert_eq!(s2.prop(&oid2, "p").unwrap().as_atom(), "y");
    let _ = oid;
}

#[test]
fn version_variable_and_date_are_available() {
    let bp = parse(
        r#"blueprint t
        view v
            property stamp default none
            when go do stamp = "v$version at $date by $user" done
        endview endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::new(bp).unwrap();
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent go up {oid}"), "marc")
        .unwrap();
    s.process_all().unwrap();
    let stamp = s.prop(&oid, "stamp").unwrap().as_atom();
    assert!(stamp.starts_with("v1 at "), "{stamp}");
    assert!(stamp.ends_with("by marc"), "{stamp}");
}

#[test]
fn checkin_sets_owner_for_notify_rules() {
    let bp = parse(
        r#"blueprint t
        view v
            when poke do notify "$owner: Your oid $OID has been modified" done
        endview endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::with_executor(bp, RecordingExecutor::new()).unwrap();
    let oid = s.checkin("reg", "v", "salma", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent poke up {oid}"), "someone-else")
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(
        s.executor().notifications(),
        &[format!("salma: Your oid {oid} has been modified")]
    );
}

#[test]
fn values_assigned_by_rules_are_typed() {
    let bp = parse(
        r#"blueprint t
        view v
            property flag default maybe
            property count default 0
            when set do flag = false; count = 42 done
        endview endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::new(bp).unwrap();
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent set up {oid}"), "d")
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&oid, "flag").unwrap(), Value::Bool(false));
    assert_eq!(s.prop(&oid, "count").unwrap(), Value::Int(42));
}

#[test]
fn unknown_oid_in_post_line_is_an_error_for_direct_posts() {
    let bp = parse("blueprint t view v endview endblueprint").unwrap();
    let mut s = ProjectServer::new(bp).unwrap();
    let err = s.post_line("postEvent e up ghost,v,1", "d").unwrap_err();
    assert!(err.to_string().contains("unknown OID"));
    let _ = Oid::new("ghost", "v", 1);
}

#[test]
fn lazy_lets_defer_to_refresh() {
    let bp = parse(
        r#"blueprint t
        view v
            property raw default bad
            let ok = ($raw == good)
            when set do raw = $arg done
        endview endblueprint"#,
    )
    .unwrap();
    let policy = Policy {
        eager_lets: false,
        ..Policy::default()
    };
    let mut s = ProjectServer::new(bp).unwrap().with_policy(policy);
    let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent set up {oid} \"good\""), "d")
        .unwrap();
    s.process_all().unwrap();
    // The raw property changed but the let has not been evaluated at all.
    assert_eq!(s.prop(&oid, "raw").unwrap().as_atom(), "good");
    assert_eq!(s.prop(&oid, "ok"), None);
    // A batch refresh brings every derived property up to date.
    let written = s.refresh_lets().unwrap();
    assert_eq!(written, 1);
    assert_eq!(s.prop(&oid, "ok").unwrap(), Value::Bool(true));
}

#[test]
fn eager_and_lazy_lets_agree_after_refresh() {
    let src = r#"blueprint t
        view v
            property a default 0
            property b default 0
            let both = ($a == 1) and ($b == 1)
            when ev do a = $arg done
            when ev2 do b = $arg done
        endview endblueprint"#;
    let mut eager = ProjectServer::from_source(src).unwrap();
    let lazy_policy = Policy {
        eager_lets: false,
        ..Policy::default()
    };
    let mut lazy = ProjectServer::from_source(src)
        .unwrap()
        .with_policy(lazy_policy);
    for s in [&mut eager, &mut lazy] {
        let oid = s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
        s.process_all().unwrap();
        s.post_line(&format!("postEvent ev up {oid} \"1\""), "d")
            .unwrap();
        s.post_line(&format!("postEvent ev2 up {oid} \"1\""), "d")
            .unwrap();
        s.process_all().unwrap();
    }
    lazy.refresh_lets().unwrap();
    let oid = Oid::new("b", "v", 1);
    assert_eq!(eager.prop(&oid, "both"), lazy.prop(&oid, "both"));
    assert_eq!(eager.prop(&oid, "both").unwrap(), Value::Bool(true));
}

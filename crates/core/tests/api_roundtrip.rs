//! Property tests for the command-protocol text codec (ISSUE 3): every
//! [`Request`] / [`Response`] variant — including every [`ApiError`]
//! variant carried inside [`Response::Error`] — round-trips through the
//! line codec byte-identically: `decode(encode(x)) == x` and the encoding
//! is a fixed point (`encode(decode(encode(x))) == encode(x)`).

use proptest::prelude::*;

use blueprint_core::engine::api::{
    ApiError, AuditCounters, NodeRole, ProjectEntry, Request, Response, ServerStat, SnapshotInfo,
    SummaryRow, TraceMode, WorkLeftItem,
};
use damocles_meta::{Direction, EventMessage, Oid, Value};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Identifier-shaped names for OID components and views (the wire format
/// reserves `,`/`.` as OID separators, and components are trimmed).
fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_-]{1,8}"
}

/// Free-form text: printable (incl. spaces, quotes, `%`, latin-1) plus
/// explicit whitespace escapes, so the percent-escaping earns its keep.
fn text() -> impl Strategy<Value = String> {
    prop_oneof![
        "\\PC{0,16}".boxed(),
        "[\\n\\t\"\\\\% ]{0,8}".boxed(),
        "[a-z ]{0,12}".boxed(),
        // Unicode whitespace that is NOT a codec separator: must pass
        // through unescaped without splitting words.
        "[\u{0B}\u{0C}\u{85}\u{A0}\u{2028}x]{0,6}".boxed(),
    ]
}

fn oid() -> impl Strategy<Value = Oid> {
    (ident(), ident(), any::<u32>()).prop_map(|(b, v, n)| Oid::new(b, v, n))
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool).boxed(),
        any::<i64>().prop_map(Value::Int).boxed(),
        text().prop_map(Value::Str).boxed(),
    ]
}

fn message() -> impl Strategy<Value = EventMessage> {
    (
        ident(),
        any::<bool>(),
        oid(),
        proptest::collection::vec(text(), 0..3),
    )
        .prop_map(|(event, up, target, args)| {
            let dir = if up { Direction::Up } else { Direction::Down };
            let mut m = EventMessage::new(event, dir, target);
            for a in args {
                m = m.with_arg(a);
            }
            m
        })
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..24)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        text().prop_map(|source| Request::Init { source }).boxed(),
        text().prop_map(|source| Request::Reinit { source }).boxed(),
        (ident(), ident(), text(), payload())
            .prop_map(|(block, view, user, payload)| Request::Checkin {
                block,
                view,
                user,
                payload
            })
            .boxed(),
        (ident(), ident(), text())
            .prop_map(|(block, view, user)| Request::Checkout { block, view, user })
            .boxed(),
        oid().prop_map(|oid| Request::CreateObject { oid }).boxed(),
        (oid(), oid())
            .prop_map(|(from, to)| Request::Connect { from, to })
            .boxed(),
        (message(), text())
            .prop_map(|(message, user)| Request::Post { message, user })
            .boxed(),
        Just(Request::ProcessAll).boxed(),
        Just(Request::RefreshLets).boxed(),
        text().prop_map(|terms| Request::Query { terms }).boxed(),
        oid().prop_map(|oid| Request::Show { oid }).boxed(),
        (oid(), text())
            .prop_map(|(oid, prop)| Request::WorkLeft { oid, prop })
            .boxed(),
        text().prop_map(|prop| Request::Summary { prop }).boxed(),
        (text(), oid())
            .prop_map(|(name, root)| Request::Snapshot { name, root })
            .boxed(),
        Just(Request::ListSnapshots).boxed(),
        text().prop_map(|view| Request::Freeze { view }).boxed(),
        text().prop_map(|view| Request::Thaw { view }).boxed(),
        (text(), any::<u64>())
            .prop_map(|(dir, every)| Request::EnableJournal { dir, every })
            .boxed(),
        Just(Request::Checkpoint).boxed(),
        (text(), any::<u64>())
            .prop_map(|(dir, every)| Request::Recover { dir, every })
            .boxed(),
        text()
            .prop_map(|path| Request::SaveProject { path })
            .boxed(),
        text()
            .prop_map(|path| Request::LoadProject { path })
            .boxed(),
        Just(Request::Dump).boxed(),
        Just(Request::Dot).boxed(),
        Just(Request::Audit).boxed(),
        Just(Request::Stat).boxed(),
        any::<u32>()
            .prop_map(|workers| Request::SetWaveWorkers {
                workers: u64::from(workers),
            })
            .boxed(),
        (
            opt_text(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(script, max_retries, base_delay_ms, multiplier, timeout_ms)| {
                    Request::SetRetryPolicy {
                        script,
                        max_retries: u64::from(max_retries),
                        base_delay_ms: u64::from(base_delay_ms),
                        multiplier: u64::from(multiplier),
                        timeout_ms: u64::from(timeout_ms),
                    }
                }
            )
            .boxed(),
        Just(Request::PumpInvocations).boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, seq)| Request::TailFrom { epoch, seq })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, seq)| Request::Replay { epoch, seq })
            .boxed(),
        prop_oneof![
            Just(TraceMode::On),
            Just(TraceMode::Off),
            Just(TraceMode::Get)
        ]
        .prop_map(|mode| Request::Trace { mode })
        .boxed(),
        (text(), any::<bool>())
            .prop_map(|(project, create)| Request::Attach { project, create })
            .boxed(),
        Just(Request::ListProjects).boxed(),
        (text(), any::<u64>(), any::<u64>())
            .prop_map(|(dir, every, term)| Request::Promote { dir, every, term })
            .boxed(),
        any::<u64>()
            .prop_map(|term| Request::Fence { term })
            .boxed(),
    ]
}

fn opt_text() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(text())
}

fn api_error() -> impl Strategy<Value = ApiError> {
    prop_oneof![
        (any::<u16>(), text(), text())
            .prop_map(|(at, found, expected)| ApiError::Parse {
                at: u64::from(at),
                found,
                expected
            })
            .boxed(),
        (any::<u16>(), text())
            .prop_map(|(at, found)| ApiError::UnknownCommand {
                at: u64::from(at),
                found
            })
            .boxed(),
        Just(ApiError::NoProject).boxed(),
        oid().prop_map(|oid| ApiError::UnknownOid { oid }).boxed(),
        oid().prop_map(|oid| ApiError::DuplicateOid { oid }).boxed(),
        (oid(), opt_text())
            .prop_map(|(oid, holder)| ApiError::CheckoutConflict { oid, holder })
            .boxed(),
        text()
            .prop_map(|view| ApiError::FrozenView { view })
            .boxed(),
        text()
            .prop_map(|detail| ApiError::Policy { detail })
            .boxed(),
        proptest::collection::vec(text(), 0..3)
            .prop_map(|issues| ApiError::InvalidBlueprint { issues })
            .boxed(),
        text()
            .prop_map(|message| ApiError::BlueprintSyntax { message })
            .boxed(),
        any::<u64>()
            .prop_map(|processed| ApiError::Runaway { processed })
            .boxed(),
        text()
            .prop_map(|reason| ApiError::Journal { reason })
            .boxed(),
        (text(), any::<u32>(), text())
            .prop_map(|(script, attempts, reason)| ApiError::InvocationFailed {
                script,
                attempts: u64::from(attempts),
                reason,
            })
            .boxed(),
        text().prop_map(|reason| ApiError::Meta { reason }).boxed(),
        text().prop_map(|reason| ApiError::Io { reason }).boxed(),
        text()
            .prop_map(|leader| ApiError::ReadOnly { leader })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, seq)| ApiError::Lagging { epoch, seq })
            .boxed(),
        Just(ApiError::NotAttached).boxed(),
        text()
            .prop_map(|project| ApiError::NoSuchProject { project })
            .boxed(),
        text()
            .prop_map(|project| ApiError::ProjectBusy { project })
            .boxed(),
        text()
            .prop_map(|project| ApiError::ProjectPoisoned { project })
            .boxed(),
        Just(ApiError::NoFleet).boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(term, current)| ApiError::StaleTerm { term, current })
            .boxed(),
    ]
}

fn node_role() -> impl Strategy<Value = NodeRole> {
    prop_oneof![Just(NodeRole::Leader), Just(NodeRole::Follower)]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok).boxed(),
        text().prop_map(|name| Response::Blueprint { name }).boxed(),
        oid().prop_map(|oid| Response::Created { oid }).boxed(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(
                |(events, deliveries, scripts, emitted)| Response::Processed {
                    events,
                    deliveries,
                    scripts,
                    emitted
                }
            )
            .boxed(),
        any::<u64>()
            .prop_map(|written| Response::Refreshed { written })
            .boxed(),
        (oid(), proptest::collection::vec((text(), value()), 0..4))
            .prop_map(|(oid, props)| Response::Props { oid, props })
            .boxed(),
        proptest::collection::vec(oid(), 0..4)
            .prop_map(|oids| Response::Hits { oids })
            .boxed(),
        (
            oid(),
            proptest::collection::vec(
                (oid(), text(), proptest::option::of(value()))
                    .prop_map(|(oid, prop, current)| WorkLeftItem { oid, prop, current }),
                0..4
            )
        )
            .prop_map(|(target, items)| Response::Work { target, items })
            .boxed(),
        proptest::collection::vec(
            (text(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
                |(view, total, satisfied, untracked)| SummaryRow {
                    view,
                    total: u64::from(total),
                    satisfied: u64::from(satisfied),
                    untracked: u64::from(untracked),
                }
            ),
            0..4
        )
        .prop_map(|rows| Response::ViewSummary { rows })
        .boxed(),
        (text(), any::<u64>())
            .prop_map(|(name, oids)| Response::Snapped { name, oids })
            .boxed(),
        proptest::collection::vec(
            (text(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
                |(name, oids, links, dangling)| SnapshotInfo {
                    name,
                    oids: u64::from(oids),
                    links: u64::from(links),
                    dangling: u64::from(dangling),
                }
            ),
            0..3
        )
        .prop_map(|entries| Response::SnapshotList { entries })
        .boxed(),
        any::<u64>()
            .prop_map(|epoch| Response::Epoch { epoch })
            .boxed(),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            opt_text(),
            any::<bool>()
        )
            .prop_map(
                |(epoch, snapshot_oids, replayed_ops, torn_tail, stale_journal)| {
                    Response::Recovered {
                        epoch,
                        snapshot_oids: u64::from(snapshot_oids),
                        replayed_ops: u64::from(replayed_ops),
                        torn_tail,
                        stale_journal,
                    }
                }
            )
            .boxed(),
        any::<u64>()
            .prop_map(|oids| Response::Loaded { oids })
            .boxed(),
        text().prop_map(|text| Response::Text { text }).boxed(),
        proptest::collection::vec(any::<u64>(), 12..13)
            .prop_map(|ns| Response::Audit {
                counters: AuditCounters {
                    deliveries: ns[0],
                    assignments: ns[1],
                    reevaluations: ns[2],
                    scripts: ns[3],
                    posts: ns[4],
                    propagations: ns[5],
                    cycle_skips: ns[6],
                    depth_truncations: ns[7],
                    templates: ns[8],
                    invoke_retries: ns[9],
                    invoke_timeouts: ns[10],
                    invoke_exhaustions: ns[11],
                },
            })
            .boxed(),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            proptest::option::of(any::<u32>()),
            proptest::option::of(any::<u32>()),
            (
                any::<u32>(),
                proptest::collection::vec(any::<u32>(), 4..5),
                any::<u32>(),
                any::<u32>(),
                proptest::collection::vec(any::<u32>(), 4..5),
                (any::<u64>(), node_role())
            )
        )
            .prop_map(
                |(
                    oids,
                    links,
                    pending,
                    epoch,
                    records,
                    (workers, inv, cur_e, cur_s, fleet, (term, role)),
                )| {
                    Response::Stat {
                        stat: ServerStat {
                            oids: u64::from(oids),
                            links: u64::from(links),
                            pending_events: u64::from(pending),
                            journal_epoch: epoch.map(u64::from),
                            journal_records: records.map(u64::from),
                            wave_workers: u64::from(workers),
                            pending_invocations: u64::from(inv[0]),
                            running_invocations: u64::from(inv[1]),
                            retrying_invocations: u64::from(inv[2]),
                            failed_invocations: u64::from(inv[3]),
                            cursor_epoch: u64::from(cur_e),
                            cursor_seq: u64::from(cur_s),
                            active_projects: u64::from(fleet[0]),
                            resident_projects: u64::from(fleet[1]),
                            activations: u64::from(fleet[2]),
                            evictions: u64::from(fleet[3]),
                            term,
                            role,
                        },
                    }
                }
            )
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, seq)| Response::Tailing { epoch, seq })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, term)| Response::Promoted { epoch, term })
            .boxed(),
        (any::<u64>(), any::<u64>(), any::<u64>(), text())
            .prop_map(|(epoch, seq, oids, image)| Response::Replayed {
                epoch,
                seq,
                oids,
                image
            })
            .boxed(),
        proptest::collection::vec(text(), 0..4)
            .prop_map(|records| Response::Trace { records })
            .boxed(),
        (text(), any::<bool>())
            .prop_map(|(project, created)| Response::Attached { project, created })
            .boxed(),
        proptest::collection::vec(
            (text(), any::<bool>()).prop_map(|(name, active)| ProjectEntry { name, active }),
            0..4
        )
        .prop_map(|entries| Response::Projects { entries })
        .boxed(),
        api_error().prop_map(Response::Error).boxed(),
    ]
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn request_roundtrips_byte_identically(req in request()) {
        let line = req.encode();
        prop_assert!(
            !line.contains('\n'),
            "encoding must be line-framed: {line:?}"
        );
        let back = match Request::decode(&line) {
            Ok(back) => back,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode of `{line}` failed: {e} (from {req:?})"),
            )),
        };
        prop_assert_eq!(&back, &req, "value roundtrip of `{}`", line);
        prop_assert_eq!(back.encode(), line, "encoding is a fixed point");
    }

    #[test]
    fn response_roundtrips_byte_identically(resp in response()) {
        let line = resp.encode();
        prop_assert!(
            !line.contains('\n'),
            "encoding must be line-framed: {line:?}"
        );
        let back = match Response::decode(&line) {
            Ok(back) => back,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode of `{line}` failed: {e} (from {resp:?})"),
            )),
        };
        prop_assert_eq!(&back, &resp, "value roundtrip of `{}`", line);
        prop_assert_eq!(back.encode(), line, "encoding is a fixed point");
    }
}

//! Crash-injection property tests for the durability subsystem.
//!
//! The contract under test (ISSUE 2 acceptance): recovery from **any**
//! truncation of the journal — every byte boundary, which subsumes every
//! record boundary — yields exactly the database image of a valid op
//! prefix, or a clean structured error. Never a panic, never a database
//! that disagrees with every prefix.

use proptest::prelude::*;

use damocles_meta::journal::{self, encode_header, encode_record, JournalOp};
use damocles_meta::persist;
use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid, OidId, Value, Workspace};

/// One abstract mutation; indices are taken modulo the live population so
/// every generated command is *attemptable* on any state.
#[derive(Debug, Clone)]
enum Cmd {
    Create(u8, u8, u8),
    Delete(u8),
    SetProp(u8, u8, u8),
    RemoveProp(u8, u8),
    Link(u8, u8, u8),
    Unlink(u8),
    Allow(u8, u8),
    LinkProp(u8, u8, u8),
    MoveEnd(u8, u8),
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Cmd::Create(a, b, c)),
            any::<u8>().prop_map(Cmd::Delete),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Cmd::SetProp(a, b, c)),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Cmd::RemoveProp(a, b)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Cmd::Link(a, b, c)),
            any::<u8>().prop_map(Cmd::Unlink),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Cmd::Allow(a, b)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Cmd::LinkProp(a, b, c)),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Cmd::MoveEnd(a, b)),
        ],
        0..28,
    )
}

/// Property names cycle through a tiny alphabet (collisions exercise
/// overwrite paths); values include multi-byte unicode so byte-level
/// truncation can land inside a character.
fn prop_name(i: u8) -> String {
    format!("p{}", i % 4)
}

fn prop_value(i: u8) -> Value {
    match i % 4 {
        0 => Value::Bool(i.is_multiple_of(2)),
        1 => Value::Int(i64::from(i) - 128),
        2 => Value::Str(format!("v{} ✓ värde", i % 8)),
        _ => Value::Str(format!("{}", i % 8)),
    }
}

/// Applies commands to a journal-attached database, ignoring per-command
/// errors (duplicate OIDs, self-links, empty populations) — only
/// successful mutations journal ops, which is itself part of the contract.
/// `version_base` offsets created versions so a second run on the same
/// database does not only collide with the first.
fn apply_cmds(db: &mut MetaDb, cmds: &[Cmd], version_base: u32) {
    for cmd in cmds {
        let oids: Vec<OidId> = db.iter_oids().map(|(id, _)| id).collect();
        let links: Vec<_> = db.iter_links().map(|(id, _)| id).collect();
        let pick = |xs: &[OidId], i: u8| xs[usize::from(i) % xs.len()];
        match cmd {
            Cmd::Create(b, v, n) => {
                let oid = Oid::new(
                    format!("blk{}", b % 5),
                    format!("view{}", v % 3),
                    version_base + u32::from(n % 6),
                );
                let _ = db.create_oid(oid);
            }
            Cmd::Delete(i) if !oids.is_empty() => {
                let _ = db.delete_oid(pick(&oids, *i));
            }
            Cmd::SetProp(i, name, value) if !oids.is_empty() => {
                let _ = db.set_prop(pick(&oids, *i), &prop_name(*name), prop_value(*value));
            }
            Cmd::RemoveProp(i, name) if !oids.is_empty() => {
                let _ = db.remove_prop(pick(&oids, *i), &prop_name(*name));
            }
            Cmd::Link(i, j, k) if !oids.is_empty() => {
                let class = if k % 2 == 0 {
                    LinkClass::Use
                } else {
                    LinkClass::Derive
                };
                let kind = if k % 3 == 0 {
                    LinkKind::Composition
                } else {
                    LinkKind::DeriveFrom
                };
                let events: Vec<String> = (0..k % 3).map(|e| format!("ev{e}")).collect();
                let _ = db.add_link_with(pick(&oids, *i), pick(&oids, *j), class, kind, events);
            }
            Cmd::Unlink(i) if !links.is_empty() => {
                let _ = db.remove_link(links[usize::from(*i) % links.len()]);
            }
            Cmd::Allow(i, e) if !links.is_empty() => {
                let _ = db.allow_event(
                    links[usize::from(*i) % links.len()],
                    &format!("ev{}", e % 4),
                );
            }
            Cmd::LinkProp(i, name, value) if !links.is_empty() => {
                let _ = db.set_link_prop(
                    links[usize::from(*i) % links.len()],
                    &prop_name(*name),
                    prop_value(*value),
                );
            }
            Cmd::MoveEnd(i, j) if !links.is_empty() && !oids.is_empty() => {
                let link_id = links[usize::from(*i) % links.len()];
                let to = db.link(link_id).unwrap().to;
                let _ = db.move_link_end(link_id, to, pick(&oids, *j));
            }
            _ => {}
        }
    }
}

fn journal_bytes(epoch: u64, term: u64, ops: &[JournalOp]) -> Vec<u8> {
    let mut bytes = encode_header(epoch, term).into_bytes();
    for (seq, op) in ops.iter().enumerate() {
        bytes.extend_from_slice(encode_record(seq as u64, op).as_bytes());
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For a random op stream journaled from an empty snapshot, recovery
    /// from EVERY byte-boundary truncation of the journal reproduces the
    /// image of the replayed op prefix exactly.
    #[test]
    fn recovery_from_any_truncation_is_a_valid_prefix(cmds in cmds()) {
        let mut db = MetaDb::new();
        db.attach_journal();
        apply_cmds(&mut db, &cmds, 0);
        let ops: Vec<JournalOp> = db.drain_journal_ops();

        // Expected image after each op prefix.
        let images: Vec<String> = (0..=ops.len())
            .map(|k| {
                let (prefix_db, _ws) = journal::replay_ops(&ops[..k]).expect("valid prefix replays");
                persist::save(&prefix_db)
            })
            .collect();
        prop_assert_eq!(
            images.last().unwrap(),
            &persist::save(&db),
            "full replay must equal the live database"
        );

        let epoch = 3;
        let term = 2;
        let snapshot = journal::write_snapshot(&MetaDb::new(), &Workspace::new("w"), epoch, term);
        let bytes = journal_bytes(epoch, term, &ops);
        // Byte offsets at which the file consists of whole records only:
        // end of header, then after each record. A cut exactly on a
        // boundary is indistinguishable from a journal with fewer records,
        // so only cuts OFF a boundary must raise the torn-tail flag.
        let mut boundaries = vec![encode_header(epoch, term).len()];
        for (seq, op) in ops.iter().enumerate() {
            boundaries.push(boundaries[seq] + encode_record(seq as u64, op).len());
        }

        for cut in 0..=bytes.len() {
            // Clean structured results only: Ok with a prefix image, or a
            // JournalError. A panic fails the whole test.
            match journal::recover(&snapshot, &bytes[..cut]) {
                Ok(recovered) => {
                    let replayed = recovered.report.replayed_ops;
                    // Exactly the fully-contained records replay. A record
                    // whose trailing newline was cut is still complete
                    // content-wise (its checksum passes), so both
                    // `boundaries[k]` and `boundaries[k] - 1` replay k
                    // records; the header, by contrast, needs its newline.
                    let expected = if cut < boundaries[0] {
                        0
                    } else {
                        (1..boundaries.len())
                            .filter(|&k| boundaries[k] - 1 <= cut)
                            .count()
                    };
                    prop_assert_eq!(
                        replayed, expected,
                        "truncation at byte {} of {:?}", cut, boundaries
                    );
                    prop_assert_eq!(
                        &persist::save(&recovered.db),
                        &images[replayed],
                        "truncation at byte {} replayed {} ops but image disagrees",
                        cut,
                        replayed
                    );
                    let clean_cut = boundaries.contains(&cut)
                        || (cut >= boundaries[0] && boundaries.contains(&(cut + 1)));
                    prop_assert_eq!(
                        recovered.report.torn_tail.is_none(),
                        clean_cut,
                        "torn-tail flag wrong at byte {}",
                        cut
                    );
                }
                Err(e) => {
                    // Accepted by the contract: a structured error (not
                    // reachable for pure truncation today, but allowed).
                    let _ = e.to_string();
                }
            }
        }
    }

    /// `checkpoint → recover` equals `persist::save` byte-for-byte, with
    /// and without a journal tail on top of the snapshot; compaction folds
    /// the tail into an equivalent snapshot at the next epoch.
    #[test]
    fn checkpoint_recover_matches_persist_save(setup in cmds(), tail in cmds()) {
        // State A: the checkpoint.
        let mut db = MetaDb::new();
        db.attach_journal();
        apply_cmds(&mut db, &setup, 0);
        let _ = db.drain_journal_ops();
        let ws = Workspace::new("w");
        let snapshot = journal::write_snapshot(&db, &ws, 9, 4);

        // Recovery of the bare snapshot is exact.
        let recovered = journal::recover(&snapshot, b"").expect("bare snapshot recovers");
        prop_assert_eq!(persist::save(&recovered.db), persist::save(&db));

        // State B: more work lands in the journal tail. Re-attaching the
        // journal re-bases link tags in image order, exactly like the
        // server's checkpoint does after writing the snapshot.
        db.attach_journal();
        apply_cmds(&mut db, &tail, 6);
        let ops = db.drain_journal_ops();
        let bytes = journal_bytes(9, 4, &ops);
        let recovered = journal::recover(&snapshot, &bytes).expect("snapshot + tail recovers");
        prop_assert_eq!(
            persist::save(&recovered.db),
            persist::save(&db),
            "tail of {} ops replays exactly",
            ops.len()
        );

        // Compaction folds the tail into an equivalent snapshot.
        let (compacted, _report) = journal::compact(&snapshot, &bytes).expect("compact");
        let from_compacted = journal::recover(&compacted, b"").expect("compacted recovers");
        prop_assert_eq!(persist::save(&from_compacted.db), persist::save(&db));
        prop_assert_eq!(journal::snapshot_epoch(&compacted), 10);
        prop_assert_eq!(
            journal::snapshot_term(&compacted), 4,
            "compaction rolls the epoch but continues the reign"
        );
    }

    /// A journal whose epoch does not match the snapshot (the crash window
    /// between "snapshot renamed" and "journal reset") is ignored, not
    /// replayed into corruption.
    #[test]
    fn stale_epoch_journal_is_ignored(setup in cmds()) {
        let mut db = MetaDb::new();
        db.attach_journal();
        apply_cmds(&mut db, &setup, 0);
        let ops = db.drain_journal_ops();
        // Snapshot at epoch 5 already CONTAINS the ops' effects; the
        // journal still claims epoch 4.
        let snapshot = journal::write_snapshot(&db, &Workspace::new("w"), 5, 1);
        let bytes = journal_bytes(4, 1, &ops);
        let recovered = journal::recover(&snapshot, &bytes).expect("stale journal tolerated");
        prop_assert!(recovered.report.stale_journal);
        prop_assert_eq!(recovered.report.replayed_ops, 0);
        prop_assert_eq!(persist::save(&recovered.db), persist::save(&db));
    }

    /// The fencing property at the durability layer (ISSUE 9): a journal
    /// written under any OTHER leadership term than the snapshot's — a
    /// deposed leader's tail left behind a promotion, or a failed
    /// promotion's orphan — is never replayed into the image, at every
    /// (snapshot term, journal term) interleaving.
    #[test]
    fn mismatched_term_journal_is_never_replayed(
        setup in cmds(),
        tail in cmds(),
        snap_term in 1u64..6,
        delta in 1u64..4,
        journal_newer in any::<bool>(),
    ) {
        let mut db = MetaDb::new();
        db.attach_journal();
        apply_cmds(&mut db, &setup, 0);
        let _ = db.drain_journal_ops();
        let snapshot = journal::write_snapshot(&db, &Workspace::new("w"), 7, snap_term);
        prop_assert_eq!(journal::snapshot_term(&snapshot), snap_term);

        db.attach_journal();
        apply_cmds(&mut db, &tail, 9);
        let ops = db.drain_journal_ops();
        // Same epoch, different term: the one disagreement epochs can't
        // catch. Stale terms model the deposed leader; newer terms an
        // orphaned promotion whose snapshot never landed.
        let journal_term = if journal_newer {
            snap_term + delta
        } else {
            snap_term.saturating_sub(delta).max(1)
        };
        let bytes = journal_bytes(7, journal_term, &ops);
        let recovered = journal::recover(&snapshot, &bytes).expect("fenced journal tolerated");
        if journal_term == snap_term {
            // delta could collapse to equality at the floor; then it IS
            // the matching reign and must replay.
            prop_assert_eq!(recovered.report.replayed_ops, ops.len());
        } else {
            prop_assert!(recovered.report.stale_journal);
            prop_assert_eq!(recovered.report.replayed_ops, 0);
            prop_assert_eq!(recovered.report.term, snap_term);
        }
    }

    /// The term grammar round-trips through snapshot + recovery at every
    /// (epoch, term) — and a legacy (pre-term) journal header means term
    /// 1, so it only ever replays into a term-1 snapshot.
    #[test]
    fn term_grammar_roundtrips_through_recovery(
        epoch in 1u64..1_000_000,
        term in 1u64..1_000_000,
    ) {
        let snapshot = journal::write_snapshot(&MetaDb::new(), &Workspace::new("w"), epoch, term);
        prop_assert_eq!(journal::snapshot_epoch(&snapshot), epoch);
        prop_assert_eq!(journal::snapshot_term(&snapshot), term);
        let bytes = journal::encode_header(epoch, term).into_bytes();
        let recovered = journal::recover(&snapshot, &bytes).expect("matching reign recovers");
        prop_assert!(!recovered.report.stale_journal);
        prop_assert_eq!(recovered.report.term, term);
        // A journal written before terms existed carries no ` term=`
        // field and belongs to reign 1 by definition.
        let legacy = format!("damocles-journal v1 epoch={epoch}\n").into_bytes();
        let recovered = journal::recover(&snapshot, &legacy).expect("legacy header tolerated");
        prop_assert_eq!(recovered.report.stale_journal, term != 1);
    }

    /// Group commit (ISSUE 3): ops land in multi-record batches with one
    /// sync per batch. A crash before a batch's first byte reaches the
    /// file must recover the exact image of the previous batch boundary
    /// (no torn tail); a crash inside the batch's write still recovers a
    /// valid record prefix extending that boundary.
    #[test]
    fn group_committed_batches_recover_at_batch_boundaries(
        batches in proptest::collection::vec(cmds(), 1..4)
    ) {
        let mut db = MetaDb::new();
        db.attach_journal();
        let epoch = 2;
        let snapshot = journal::write_snapshot(&MetaDb::new(), &Workspace::new("w"), epoch, 1);
        let mut bytes = encode_header(epoch, 1).into_bytes();
        let mut seq = 0u64;
        // Byte length of the journal and the database image at each
        // flushed batch boundary.
        let mut boundary_images = vec![(bytes.len(), persist::save(&MetaDb::new()))];
        for (i, batch) in batches.iter().enumerate() {
            apply_cmds(&mut db, batch, i as u32 * 7);
            for op in db.drain_journal_ops() {
                bytes.extend_from_slice(encode_record(seq, &op).as_bytes());
                seq += 1;
            }
            boundary_images.push((bytes.len(), persist::save(&db)));
        }

        for (cut, image) in &boundary_images {
            // Crash between batch execution and the batched fsync: the
            // file simply ends at the previous boundary.
            let recovered = journal::recover(&snapshot, &bytes[..*cut])
                .expect("batch boundary recovers");
            prop_assert!(recovered.report.torn_tail.is_none());
            prop_assert_eq!(&persist::save(&recovered.db), image);
        }
        // Crash mid-way through writing the final batch: a valid record
        // prefix that extends the second-to-last boundary.
        let (last_boundary, _) = boundary_images[boundary_images.len() - 1];
        let (prev_boundary, _) = boundary_images[boundary_images.len() - 2];
        if last_boundary > prev_boundary {
            let cut = prev_boundary + (last_boundary - prev_boundary) / 2;
            let recovered = journal::recover(&snapshot, &bytes[..cut])
                .expect("mid-batch truncation recovers");
            let tail = journal::parse_journal(&bytes).expect("full journal parses");
            let (prefix_db, _ws) =
                journal::replay_ops(&tail.ops[..recovered.report.replayed_ops])
                    .expect("prefix replays");
            prop_assert_eq!(persist::save(&recovered.db), persist::save(&prefix_db));
        }
    }
}

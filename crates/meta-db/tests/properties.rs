//! Property tests on meta-database invariants: arena address stability,
//! version-chain ordering, link incidence symmetry, wire-format round-trips.

use std::collections::BTreeSet;

use damocles_meta::{Arena, Direction, EventMessage, LinkClass, LinkKind, MetaDb, Oid, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ArenaOp {
    Insert(u16),
    RemoveNth(usize),
    LookupNth(usize),
}

fn arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(ArenaOp::Insert),
            any::<usize>().prop_map(ArenaOp::RemoveNth),
            any::<usize>().prop_map(ArenaOp::LookupNth),
        ],
        0..120,
    )
}

proptest! {
    /// The arena behaves exactly like a map from issued handles to values:
    /// live handles resolve to their value, removed handles never resolve,
    /// and `len` matches the live count.
    #[test]
    fn arena_matches_model(ops in arena_ops()) {
        let mut arena: Arena<u16> = Arena::new();
        let mut live: Vec<(damocles_meta::ArenaIndex<u16>, u16)> = Vec::new();
        let mut dead: Vec<damocles_meta::ArenaIndex<u16>> = Vec::new();
        for op in ops {
            match op {
                ArenaOp::Insert(v) => {
                    let idx = arena.insert(v);
                    live.push((idx, v));
                }
                ArenaOp::RemoveNth(n) => {
                    if !live.is_empty() {
                        let (idx, v) = live.remove(n % live.len());
                        prop_assert_eq!(arena.remove(idx), Some(v));
                        dead.push(idx);
                    }
                }
                ArenaOp::LookupNth(n) => {
                    if !live.is_empty() {
                        let (idx, v) = live[n % live.len()];
                        prop_assert_eq!(arena.get(idx), Some(&v));
                    }
                }
            }
            prop_assert_eq!(arena.len(), live.len());
            for idx in &dead {
                prop_assert_eq!(arena.get(*idx), None);
            }
        }
        let from_iter: BTreeSet<u16> = arena.iter().map(|(_, v)| *v).collect();
        let expected: BTreeSet<u16> = live.iter().map(|(_, v)| *v).collect();
        prop_assert_eq!(from_iter, expected);
    }
}

// ---------------------------------------------------------------------
// Version chains
// ---------------------------------------------------------------------

proptest! {
    /// Whatever order versions are created in, the chain stays sorted, the
    /// latest is the max, and predecessors are the next-lower live version.
    #[test]
    fn version_chains_stay_sorted(mut versions in proptest::collection::btree_set(1u32..60, 1..12)) {
        let versions: Vec<u32> = {
            // Insert in a scrambled (reverse) order.
            let mut v: Vec<u32> = std::mem::take(&mut versions).into_iter().collect();
            v.reverse();
            v
        };
        let mut db = MetaDb::new();
        for &v in &versions {
            db.create_oid(Oid::new("blk", "view", v)).unwrap();
        }
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        prop_assert_eq!(db.versions("blk", "view"), sorted.clone());
        let latest = db.latest_version("blk", "view").unwrap();
        prop_assert_eq!(db.oid(latest).unwrap().version, *sorted.last().unwrap());
        for window in sorted.windows(2) {
            let pred = db.predecessor(&Oid::new("blk", "view", window[1])).unwrap();
            prop_assert_eq!(db.oid(pred).unwrap().version, window[0]);
        }
        prop_assert!(db.predecessor(&Oid::new("blk", "view", sorted[0])).is_none());
    }

    /// Deleting versions keeps every index consistent.
    #[test]
    fn deletion_keeps_indices_consistent(
        n in 2u32..12,
        delete_mask in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let mut db = MetaDb::new();
        let ids: Vec<_> = (1..=n)
            .map(|v| db.create_oid(Oid::new("b", "v", v)).unwrap())
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if delete_mask[i] {
                db.delete_oid(*id).unwrap();
            } else {
                kept.push(i as u32 + 1);
            }
        }
        prop_assert_eq!(db.versions("b", "v"), kept.clone());
        prop_assert_eq!(db.oid_count(), kept.len());
        match kept.last() {
            Some(&max) => {
                let latest = db.latest_version("b", "v").unwrap();
                prop_assert_eq!(db.oid(latest).unwrap().version, max);
            }
            None => prop_assert!(db.latest_version("b", "v").is_none()),
        }
    }
}

// ---------------------------------------------------------------------
// Links
// ---------------------------------------------------------------------

proptest! {
    /// Incidence lists stay symmetric under arbitrary add/remove/move
    /// sequences: every live link appears in exactly its two endpoints'
    /// lists.
    #[test]
    fn link_incidence_is_symmetric(ops in proptest::collection::vec((0usize..8, 0usize..8, any::<bool>()), 1..40)) {
        let mut db = MetaDb::new();
        let ids: Vec<_> = (0..8)
            .map(|i| db.create_oid(Oid::new(format!("b{i}"), "v", 1)).unwrap())
            .collect();
        let mut links = Vec::new();
        for (a, b, remove) in ops {
            if remove && !links.is_empty() {
                let link = links.swap_remove(a % links.len());
                let _ = db.remove_link(link);
            } else if a != b {
                let link = db
                    .add_link_with(ids[a], ids[b], LinkClass::Derive, LinkKind::DeriveFrom, ["e"])
                    .unwrap();
                links.push(link);
            }
        }
        // Symmetry check.
        for &id in &ids {
            for link_id in db.entry(id).unwrap().link_ids() {
                let link = db.link(*link_id).unwrap();
                prop_assert!(link.from == id || link.to == id);
            }
        }
        for (link_id, link) in db.iter_links() {
            prop_assert!(db.entry(link.from).unwrap().link_ids().contains(&link_id));
            prop_assert!(db.entry(link.to).unwrap().link_ids().contains(&link_id));
        }
        prop_assert_eq!(db.link_count(), links.len());
    }

    /// `neighbors` is consistent with raw link traversal.
    #[test]
    fn neighbors_matches_manual_traversal(edges in proptest::collection::vec((0usize..6, 0usize..6), 0..15)) {
        let mut db = MetaDb::new();
        let ids: Vec<_> = (0..6)
            .map(|i| db.create_oid(Oid::new(format!("b{i}"), "v", 1)).unwrap())
            .collect();
        for (a, b) in edges {
            if a != b {
                db.add_link_with(ids[a], ids[b], LinkClass::Use, LinkKind::Composition, ["x"])
                    .unwrap();
            }
        }
        for &id in &ids {
            let down: BTreeSet<_> = db.neighbors(id, Direction::Down, Some("x")).unwrap().into_iter().collect();
            let manual: BTreeSet<_> = db
                .iter_links()
                .filter(|(_, l)| l.from == id)
                .map(|(_, l)| l.to)
                .collect();
            prop_assert_eq!(down, manual);
            let up: BTreeSet<_> = db.neighbors(id, Direction::Up, Some("x")).unwrap().into_iter().collect();
            let manual_up: BTreeSet<_> = db
                .iter_links()
                .filter(|(_, l)| l.to == id)
                .map(|(_, l)| l.from)
                .collect();
            prop_assert_eq!(up, manual_up);
        }
    }
}

// ---------------------------------------------------------------------
// Wire format & values
// ---------------------------------------------------------------------

proptest! {
    /// postEvent lines round-trip for arbitrary event names, targets and
    /// argument text (including quotes and backslashes).
    #[test]
    fn wire_roundtrip(
        event in "[a-z][a-z0-9_]{0,10}",
        block in "[A-Za-z][A-Za-z0-9_]{0,6}",
        view in "[A-Za-z][A-Za-z0-9_]{0,6}",
        version in 1u32..100,
        up in any::<bool>(),
        args in proptest::collection::vec("[ -~]{0,15}", 0..3),
    ) {
        let dir = if up { Direction::Up } else { Direction::Down };
        let mut msg = EventMessage::new(event, dir, Oid::new(block, view, version));
        for a in args {
            msg = msg.with_arg(a);
        }
        let parsed: EventMessage = msg.to_string().parse().unwrap();
        prop_assert_eq!(parsed, msg);
    }

    /// Value atoms round-trip through their canonical string form.
    #[test]
    fn value_atom_roundtrip(atom in "[a-zA-Z0-9_ ]{1,20}") {
        let v = Value::from_atom(&atom);
        // from_atom(as_atom(v)) is idempotent (canonical form is stable).
        prop_assert_eq!(Value::from_atom(&v.as_atom()), v);
    }

    /// loose_eq is reflexive and symmetric.
    #[test]
    fn loose_eq_properties(a in "[a-z0-9]{0,6}", b in "[a-z0-9]{0,6}") {
        let va = Value::from_atom(&a);
        let vb = Value::from_atom(&b);
        prop_assert!(va.loose_eq(&va));
        prop_assert_eq!(va.loose_eq(&vb), vb.loose_eq(&va));
    }
}

//! Property test: arbitrary databases survive save/load byte-identically.

use damocles_meta::persist::{load, load_project, save, save_project};
use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid, Value, Workspace};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Hostile strings: whitespace, %, newlines, unicode.
        "[ -~àß%\\n\\t]{0,20}".prop_map(Value::Str),
    ]
}

#[derive(Debug, Clone)]
struct DbSpec {
    oids: Vec<(u8, u8, u8)>,            // (block, view, version) indices
    props: Vec<(usize, String, Value)>, // (oid slot, name, value)
    links: Vec<(usize, usize, bool, Vec<String>)>, // (from, to, is_use, events)
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (
        proptest::collection::btree_set((0u8..5, 0u8..4, 1u8..5), 1..12),
        proptest::collection::vec((any::<usize>(), "[a-z_]{1,8}", value()), 0..20),
        proptest::collection::vec(
            (
                any::<usize>(),
                any::<usize>(),
                any::<bool>(),
                proptest::collection::vec("[a-z_]{1,6}", 0..3),
            ),
            0..10,
        ),
    )
        .prop_map(|(oids, props, links)| DbSpec {
            oids: oids.into_iter().collect(),
            props,
            links,
        })
}

fn build(spec: &DbSpec) -> MetaDb {
    let mut db = MetaDb::new();
    let ids: Vec<_> = spec
        .oids
        .iter()
        .map(|(b, v, ver)| {
            db.create_oid(Oid::new(
                format!("blk{b}"),
                format!("view{v}"),
                u32::from(*ver),
            ))
            .unwrap()
        })
        .collect();
    for (slot, name, value) in &spec.props {
        let id = ids[slot % ids.len()];
        db.set_prop(id, name, value.clone()).unwrap();
    }
    for (from, to, is_use, events) in &spec.links {
        let f = ids[from % ids.len()];
        let t = ids[to % ids.len()];
        if f == t {
            continue;
        }
        let class = if *is_use {
            LinkClass::Use
        } else {
            LinkClass::Derive
        };
        db.add_link_with(f, t, class, LinkKind::DeriveFrom, events.clone())
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_save_is_identity(spec in db_spec()) {
        let db = build(&spec);
        let image = save(&db);
        let loaded = load(&image).unwrap();
        prop_assert_eq!(save(&loaded), image);
        prop_assert_eq!(loaded.oid_count(), db.oid_count());
        prop_assert_eq!(loaded.link_count(), db.link_count());
        // Dumps agree too (independent rendering path).
        prop_assert_eq!(
            damocles_meta::dump::dump(&loaded),
            damocles_meta::dump::dump(&db)
        );
    }

    #[test]
    fn project_images_with_payloads_roundtrip(
        spec in db_spec(),
        payloads in proptest::collection::vec((any::<usize>(), proptest::collection::vec(any::<u8>(), 0..40)), 0..6),
    ) {
        let mut db = build(&spec);
        let mut ws = Workspace::new("w");
        let ids: Vec<_> = db.iter_oids().map(|(id, _)| id).collect();
        for (slot, bytes) in &payloads {
            ws.store(ids[slot % ids.len()], bytes.clone());
        }
        let _ = &mut db;
        let image = save_project(&db, &ws);
        let (db2, ws2) = load_project(&image).unwrap();
        prop_assert_eq!(save_project(&db2, &ws2), image);
    }
}

//! A small generational arena used for OID and Link storage.
//!
//! The paper's Configurations are "light weight configuration objects"
//! consisting of "a set of database addresses". A generational arena gives us
//! exactly that: copyable, stable addresses ([`ArenaIndex`]) that can be
//! stored in configurations, with staleness detectable after deletion (design
//! data deletion is one of the tracked activity classes in Section 3.1).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;

use serde::{Deserialize, Serialize};

/// A generational index into an [`Arena`].
///
/// The `PhantomData` tag keeps indices of different element types from being
/// confused at compile time (an `ArenaIndex<OidEntry>` cannot index an
/// `Arena<Link>`).
#[derive(Serialize, Deserialize)]
pub struct ArenaIndex<T> {
    slot: u32,
    generation: u32,
    #[serde(skip)]
    _marker: PhantomData<fn() -> T>,
}

impl<T> ArenaIndex<T> {
    fn new(slot: u32, generation: u32) -> Self {
        ArenaIndex {
            slot,
            generation,
            _marker: PhantomData,
        }
    }

    /// The raw slot number. Only meaningful for diagnostics and ordering.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The generation of the slot at issue time.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

// Manual impls: derived ones would bound on `T`, which is only a tag here.
impl<T> Clone for ArenaIndex<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArenaIndex<T> {}
impl<T> PartialEq for ArenaIndex<T> {
    fn eq(&self, other: &Self) -> bool {
        self.slot == other.slot && self.generation == other.generation
    }
}
impl<T> Eq for ArenaIndex<T> {}
impl<T> std::hash::Hash for ArenaIndex<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.slot.hash(state);
        self.generation.hash(state);
    }
}
impl<T> PartialOrd for ArenaIndex<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ArenaIndex<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.slot, self.generation).cmp(&(other.slot, other.generation))
    }
}
impl<T> fmt::Debug for ArenaIndex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}g{}", self.slot, self.generation)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational arena: stable addresses, O(1) insert/remove/lookup,
/// detectable staleness.
///
/// # Example
///
/// ```
/// use damocles_meta::Arena;
///
/// let mut arena: Arena<&str> = Arena::new();
/// let a = arena.insert("netlist");
/// assert_eq!(arena.get(a), Some(&"netlist"));
/// arena.remove(a);
/// assert_eq!(arena.get(a), None); // stale address detected
/// ```
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty arena pre-sized for `capacity` live elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its stable address.
    pub fn insert(&mut self, value: T) -> ArenaIndex<T> {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none());
            s.value = Some(value);
            ArenaIndex::new(slot, s.generation)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            ArenaIndex::new(slot, 0)
        }
    }

    /// Removes the value at `index`, returning it if the address was live.
    ///
    /// The slot's generation is bumped so the old address becomes stale.
    pub fn remove(&mut self, index: ArenaIndex<T>) -> Option<T> {
        let slot = self.slots.get_mut(index.slot as usize)?;
        if slot.generation != index.generation || slot.value.is_none() {
            return None;
        }
        slot.generation = slot.generation.wrapping_add(1);
        self.len -= 1;
        self.free.push(index.slot);
        slot.value.take()
    }

    /// Returns a reference to the value at `index` if the address is live.
    pub fn get(&self, index: ArenaIndex<T>) -> Option<&T> {
        let slot = self.slots.get(index.slot as usize)?;
        if slot.generation != index.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Returns a mutable reference to the value at `index` if live.
    pub fn get_mut(&mut self, index: ArenaIndex<T>) -> Option<&mut T> {
        let slot = self.slots.get_mut(index.slot as usize)?;
        if slot.generation != index.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Whether `index` refers to a live element.
    pub fn contains(&self, index: ArenaIndex<T>) -> bool {
        self.get(index).is_some()
    }

    /// Iterates over `(address, &value)` pairs of live elements in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaIndex<T>, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value
                .as_ref()
                .map(|v| (ArenaIndex::new(i as u32, s.generation), v))
        })
    }

    /// Iterates over `(address, &mut value)` pairs of live elements.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ArenaIndex<T>, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let generation = s.generation;
            s.value
                .as_mut()
                .map(move |v| (ArenaIndex::new(i as u32, generation), v))
        })
    }
}

impl<T> Arena<T> {
    /// Splits the arena's live values into per-group maps of mutable
    /// references for **partitioned parallel mutation**: each returned map
    /// holds `&mut` references to exactly the addresses its group asked
    /// for, and the maps borrow disjoint values, so the groups can be
    /// moved onto separate threads and mutated concurrently.
    ///
    /// This is the storage half of the sharded write-application pipeline:
    /// the wave scheduler proves (via the shard map) that worker lanes
    /// touch disjoint OID sets; this method re-validates that claim and
    /// hands each lane exclusive references to its own slots. One pass of
    /// `iter_mut` distributes the references, so the whole construction is
    /// safe Rust — the arena's `#![forbid(unsafe_code)]` guarantee holds.
    ///
    /// Returns `None` — and leaves the arena untouched — when any address
    /// is stale or dead, or when two groups claim the same slot
    /// (duplicates *within* one group are fine: the group gets one
    /// reference per distinct address).
    pub fn partition_mut(
        &mut self,
        groups: &[Vec<ArenaIndex<T>>],
    ) -> Option<Vec<HashMap<ArenaIndex<T>, &mut T>>> {
        let mut owner: HashMap<u32, usize> = HashMap::new();
        for (group, ids) in groups.iter().enumerate() {
            for id in ids {
                let slot = self.slots.get(id.slot as usize)?;
                if slot.generation != id.generation || slot.value.is_none() {
                    return None;
                }
                match owner.entry(id.slot) {
                    Entry::Vacant(vacant) => {
                        vacant.insert(group);
                    }
                    Entry::Occupied(claimed) if *claimed.get() != group => return None,
                    Entry::Occupied(_) => {}
                }
            }
        }
        let mut refs: Vec<HashMap<ArenaIndex<T>, &mut T>> =
            groups.iter().map(|_| HashMap::new()).collect();
        for (slot, s) in self.slots.iter_mut().enumerate() {
            if let Some(&group) = owner.get(&(slot as u32)) {
                let value = s.value.as_mut().expect("liveness checked above");
                refs[group].insert(ArenaIndex::new(slot as u32, s.generation), value);
            }
        }
        Some(refs)
    }
}

impl<T> std::ops::Index<ArenaIndex<T>> for Arena<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics if `index` is stale; use [`Arena::get`] for fallible access.
    fn index(&self, index: ArenaIndex<T>) -> &T {
        self.get(index).expect("stale arena index")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut a = Arena::new();
        let i = a.insert(41);
        let j = a.insert(42);
        assert_eq!(a.get(i), Some(&41));
        assert_eq!(a.get(j), Some(&42));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn removal_makes_address_stale() {
        let mut a = Arena::new();
        let i = a.insert("x");
        assert_eq!(a.remove(i), Some("x"));
        assert_eq!(a.get(i), None);
        assert_eq!(a.remove(i), None);
        assert!(a.is_empty());
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut a = Arena::new();
        let i = a.insert(1u8);
        a.remove(i);
        let j = a.insert(2u8);
        assert_eq!(i.slot(), j.slot());
        assert_ne!(i.generation(), j.generation());
        assert_eq!(a.get(i), None);
        assert_eq!(a.get(j), Some(&2));
    }

    #[test]
    fn iter_skips_dead_slots() {
        let mut a = Arena::new();
        let i0 = a.insert(0);
        let _i1 = a.insert(1);
        let _i2 = a.insert(2);
        a.remove(i0);
        let values: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1, 2]);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut a = Arena::new();
        let i = a.insert(10);
        for (_, v) in a.iter_mut() {
            *v += 1;
        }
        assert_eq!(a[i], 11);
    }

    #[test]
    #[should_panic(expected = "stale arena index")]
    fn index_panics_on_stale() {
        let mut a = Arena::new();
        let i = a.insert(());
        a.remove(i);
        let _panic = &a[i];
    }

    #[test]
    fn partition_rejects_staleness_and_cross_group_overlap() {
        let mut a = Arena::new();
        let live = a.insert(10);
        let other = a.insert(20);
        let dead = a.insert(30);
        a.remove(dead);
        assert!(a.partition_mut(&[vec![live, dead]]).is_none(), "stale");
        assert!(
            a.partition_mut(&[vec![live, other], vec![other]]).is_none(),
            "two groups claiming one slot must be rejected"
        );
        // Duplicates within a single group are fine: one ref per address.
        let refs = a.partition_mut(&[vec![live, live], vec![other]]).unwrap();
        assert_eq!(refs[0].len(), 1);
        assert_eq!(refs[1].len(), 1);
    }

    #[test]
    fn partition_allows_disjoint_parallel_writes() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..64).map(|i| a.insert(i)).collect();
        let (left, right) = ids.split_at(32);
        let groups = [left.to_vec(), right.to_vec()];
        let refs = a.partition_mut(&groups).unwrap();
        std::thread::scope(|scope| {
            for (part, mut targets) in groups.iter().zip(refs) {
                scope.spawn(move || {
                    for id in part {
                        **targets.get_mut(id).unwrap() += 100;
                    }
                });
            }
        });
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(a[id], i as i32 + 100);
        }
    }

    #[test]
    fn indices_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut a = Arena::new();
        let i = a.insert(1);
        let j = a.insert(2);
        assert!(i < j);
        let set: HashSet<_> = [i, j].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}

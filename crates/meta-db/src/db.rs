//! The meta-database proper: arena-backed storage of OIDs and Links with the
//! indices the run-time engine and the query layer need.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::arena::{Arena, ArenaIndex};
use crate::error::MetaError;
use crate::intern::{Sym, SymbolTable};
use crate::journal::{JournalOp, JournalRecorder, MovedEnd};
use crate::link::{Direction, Link, LinkClass, LinkId, LinkKind};
use crate::oid::{BlockName, Oid, ViewType};
use crate::property::{prop_shard, IndexDelta, PropIndex, PropertyMap, Value, PROP_INDEX_SHARDS};

/// Stable database address of an [`OidEntry`].
pub type OidId = ArenaIndex<OidEntry>;

/// A stored meta-data object: the OID triplet plus its annotation.
#[derive(Debug, Clone)]
pub struct OidEntry {
    /// The block/view/version triplet.
    pub oid: Oid,
    /// Property/value pairs holding the design state.
    pub props: PropertyMap,
    /// Incident links (either end). Maintained by [`MetaDb`].
    links: Vec<LinkId>,
    /// The view type interned against the owning database's view universe
    /// (see [`MetaDb::view_sym_count`]); lets dispatch layers cache per-view
    /// decisions without hashing the view name per delivery.
    view_sym: Sym,
}

impl OidEntry {
    /// Incident link addresses, in insertion order.
    pub fn link_ids(&self) -> &[LinkId] {
        &self.links
    }

    /// The interned handle of this object's view type, assigned by the
    /// owning database at creation time. Stable for the database's lifetime.
    pub fn view_sym(&self) -> Sym {
        self.view_sym
    }
}

/// Aggregate counters, cheap to copy; used by benches and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Live meta-data objects.
    pub live_oids: usize,
    /// Live links.
    pub live_links: usize,
    /// OIDs ever created (including deleted ones).
    pub created_oids: u64,
    /// Links ever created.
    pub created_links: u64,
    /// Property writes performed through [`MetaDb::set_prop`].
    pub prop_writes: u64,
}

/// One overlay property write, ready for batch application — what the
/// engine's worker lanes log while executing waves against a copy-on-write
/// overlay (see [`MetaDb::apply_prop_writes_sharded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropWrite {
    /// The object written.
    pub id: OidId,
    /// The property name.
    pub prop: String,
    /// The value written.
    pub value: Value,
}

/// One worker lane's property writes: the lane's event runs in ascending
/// batch order, each run's writes in wave order. The caller guarantees
/// different lanes touch **disjoint OID sets** (the wave scheduler's shard
/// invariant) — which is what lets
/// [`MetaDb::apply_prop_writes_sharded`] apply whole lanes concurrently.
#[derive(Debug, Default)]
pub struct LaneWrites {
    /// `(batch index of the event run, its writes in wave order)`,
    /// ascending by batch index.
    pub runs: Vec<(usize, Vec<PropWrite>)>,
}

/// The DAMOCLES meta-database.
///
/// Stores [`OidEntry`] and [`Link`] objects in generational arenas and keeps
/// three indices: triplet → address, `(block, view)` → sorted version list,
/// and view → live objects. All mutation goes through methods so the indices
/// never drift from the arenas.
///
/// # Example
///
/// ```
/// use damocles_meta::{MetaDb, Oid, Value};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// let v1 = db.create_oid(Oid::new("alu", "GDSII", 5))?;
/// db.set_prop(v1, "DRC", Value::from_atom("ok"))?;
/// assert_eq!(db.get_prop(v1, "DRC")?.unwrap().as_atom(), "ok");
/// assert_eq!(db.latest_version("alu", "GDSII"), Some(v1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetaDb {
    oids: Arena<OidEntry>,
    links: Arena<Link>,
    by_oid: HashMap<Oid, OidId>,
    chains: BTreeMap<(BlockName, ViewType), Vec<u32>>,
    by_view: BTreeMap<ViewType, BTreeSet<OidId>>,
    /// Interner for the event names appearing in link PROPAGATE sets; the
    /// bitset form of every link's PROPAGATE property indexes this table.
    event_syms: SymbolTable,
    /// Interner for view type names, assigned at [`MetaDb::create_oid`] time
    /// (see [`OidEntry::view_sym`]).
    view_syms: SymbolTable,
    /// Secondary index `property name → value → live OIDs holding exactly
    /// that value`, maintained by [`MetaDb::set_prop`] /
    /// [`MetaDb::remove_prop`] / [`MetaDb::delete_oid`] and rebuilt for free
    /// on recovery because recovery replays those same methods. Powers
    /// [`MetaDb::where_prop_eq`]. Sharded by property-name hash so the
    /// batch write path ([`MetaDb::apply_prop_writes_sharded`]) can
    /// maintain it in parallel.
    prop_index: PropIndex<OidId>,
    /// Attached journal recorder, if any (see [`MetaDb::attach_journal`]).
    journal: Option<JournalRecorder>,
    /// Monotonic counter bumped by every mutation that can change which
    /// OIDs an event wave can reach: link creation/removal, link end
    /// re-pointing (`move`/`copy` template transfers) and PROPAGATE-set
    /// growth. Consumers that precompute a partition of the link graph
    /// (the engine's wave-shard map) cache this stamp and rebuild when it
    /// moves; see [`MetaDb::topology_stamp`].
    topo_stamp: u64,
    /// A bounded log of what each [`MetaDb::topo_stamp`] bump *did* to the
    /// link graph, one entry per bump (see [`TopoDelta`]). Lets a cached
    /// reachability partition catch up incrementally via
    /// [`MetaDb::topology_deltas_since`] instead of rebuilding from every
    /// live link; truncated at [`TOPO_LOG_CAP`], after which consumers that
    /// fell too far behind rebuild.
    topo_log: VecDeque<(u64, TopoDelta)>,
    stats: DbStats,
}

/// The effect of one topology-stamp bump on event reachability — what a
/// consumer holding a stale link-graph partition needs in order to update
/// incrementally (see [`MetaDb::topology_deltas_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoDelta {
    /// Two live OIDs became connected for propagation purposes: a
    /// PROPAGATE-carrying link was added between them, a link's PROPAGATE
    /// set first grew, or a link end was re-pointed (the re-point case is
    /// conservative — the old end stays merged, which can only coarsen a
    /// partition, never split one incorrectly).
    Bridge {
        /// One endpoint.
        a: OidId,
        /// The other endpoint.
        b: OidId,
    },
    /// The stamp moved but reachability did not grow (a link with an empty
    /// PROPAGATE set was added): partitions stay valid as-is.
    Quiet,
    /// A link was removed: the partition may have split, which incremental
    /// union-find cannot express — consumers rebuild.
    Sever,
}

/// Bound on [`MetaDb::topo_log`]: generous against any realistic batch
/// cadence (a consumer normally catches up every drain), tiny against the
/// database itself.
const TOPO_LOG_CAP: usize = 4096;

impl MetaDb {
    /// Creates an empty meta-database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty meta-database pre-sized for `oids` objects.
    pub fn with_capacity(oids: usize) -> Self {
        MetaDb {
            oids: Arena::with_capacity(oids),
            links: Arena::with_capacity(oids * 2),
            by_oid: HashMap::with_capacity(oids),
            ..Default::default()
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DbStats {
        DbStats {
            live_oids: self.oids.len(),
            live_links: self.links.len(),
            ..self.stats
        }
    }

    // ------------------------------------------------------------------
    // OID lifecycle
    // ------------------------------------------------------------------

    /// Registers a new meta-data object.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::DuplicateOid`] if the triplet already exists.
    pub fn create_oid(&mut self, oid: Oid) -> Result<OidId, MetaError> {
        if self.by_oid.contains_key(&oid) {
            return Err(MetaError::DuplicateOid { oid });
        }
        let view_sym = self.view_syms.intern(oid.view.as_str());
        let id = self.oids.insert(OidEntry {
            oid: oid.clone(),
            props: PropertyMap::new(),
            links: Vec::new(),
            view_sym,
        });
        self.by_oid.insert(oid.clone(), id);
        let chain = self
            .chains
            .entry((oid.block.clone(), oid.view.clone()))
            .or_default();
        let pos = chain.partition_point(|&v| v < oid.version);
        chain.insert(pos, oid.version);
        self.by_view.entry(oid.view.clone()).or_default().insert(id);
        self.stats.created_oids += 1;
        if let Some(j) = self.journal.as_mut() {
            j.record(JournalOp::CreateOid { oid });
        }
        Ok(id)
    }

    /// Deletes a meta-data object and every link incident to it.
    ///
    /// Configurations holding this address will observe it as dangling.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::StaleOid`] if the handle is stale.
    pub fn delete_oid(&mut self, id: OidId) -> Result<OidEntry, MetaError> {
        let entry = self.oids.get(id).ok_or_else(|| stale(id))?;
        let incident = entry.links.clone();
        for link_id in incident {
            // Ignore already-removed links: incidence lists may lag only
            // within this loop (a link appears in both endpoints' lists).
            let _ = self.remove_link(link_id);
        }
        let entry = self.oids.remove(id).ok_or_else(|| stale(id))?;
        for (name, value) in entry.props.iter() {
            self.prop_index.remove(name, value, id);
        }
        self.by_oid.remove(&entry.oid);
        if let Some(chain) = self
            .chains
            .get_mut(&(entry.oid.block.clone(), entry.oid.view.clone()))
        {
            chain.retain(|&v| v != entry.oid.version);
            if chain.is_empty() {
                self.chains
                    .remove(&(entry.oid.block.clone(), entry.oid.view.clone()));
            }
        }
        if let Some(set) = self.by_view.get_mut(&entry.oid.view) {
            set.remove(&id);
            if set.is_empty() {
                self.by_view.remove(&entry.oid.view);
            }
        }
        if let Some(j) = self.journal.as_mut() {
            j.record(JournalOp::DeleteOid {
                oid: entry.oid.clone(),
            });
        }
        Ok(entry)
    }

    /// Resolves a triplet to its database address.
    pub fn resolve(&self, oid: &Oid) -> Option<OidId> {
        self.by_oid.get(oid).copied()
    }

    /// Resolves a triplet, failing with [`MetaError::UnknownOid`].
    pub fn require(&self, oid: &Oid) -> Result<OidId, MetaError> {
        self.resolve(oid)
            .ok_or_else(|| MetaError::UnknownOid { oid: oid.clone() })
    }

    /// Returns the stored entry for a live address.
    pub fn entry(&self, id: OidId) -> Result<&OidEntry, MetaError> {
        self.oids.get(id).ok_or_else(|| stale(id))
    }

    /// The triplet stored at `id`.
    pub fn oid(&self, id: OidId) -> Result<&Oid, MetaError> {
        Ok(&self.entry(id)?.oid)
    }

    /// Whether `id` refers to a live object.
    pub fn is_live(&self, id: OidId) -> bool {
        self.oids.contains(id)
    }

    /// Number of live objects.
    pub fn oid_count(&self) -> usize {
        self.oids.len()
    }

    /// The link-topology stamp: moves on every mutation that can change
    /// event reachability (link add/remove, end re-pointing, PROPAGATE
    /// growth). Equal stamps guarantee an unchanged link graph, so a
    /// precomputed reachability partition keyed on it is still valid.
    pub fn topology_stamp(&self) -> u64 {
        self.topo_stamp
    }

    /// Bumps the topology stamp and logs what the bump did, keeping the
    /// log bounded. Every stamp bump routes through here so the log stays
    /// gap-free — the continuity invariant
    /// [`MetaDb::topology_deltas_since`] relies on.
    fn bump_topology(&mut self, delta: TopoDelta) {
        self.topo_stamp += 1;
        if self.topo_log.len() == TOPO_LOG_CAP {
            self.topo_log.pop_front();
        }
        self.topo_log.push_back((self.topo_stamp, delta));
    }

    /// The topology deltas recorded after `stamp`, oldest first — what a
    /// consumer whose cached partition was built at `stamp` must fold in
    /// to catch up. Returns `None` when the log no longer reaches back
    /// that far (the consumer fell more than `TOPO_LOG_CAP` bumps
    /// behind): rebuild instead.
    pub fn topology_deltas_since(&self, stamp: u64) -> Option<impl Iterator<Item = &TopoDelta>> {
        // Complete coverage requires the entry for bump `stamp + 1` to
        // still be in the log (vacuously true when already caught up).
        if stamp < self.topo_stamp {
            match self.topo_log.front() {
                Some(&(oldest, _)) if oldest <= stamp + 1 => {}
                _ => return None,
            }
        }
        let skip = self.topo_log.partition_point(|&(s, _)| s <= stamp);
        Some(self.topo_log.range(skip..).map(|(_, d)| d))
    }

    /// Number of live links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all live objects.
    pub fn iter_oids(&self) -> impl Iterator<Item = (OidId, &OidEntry)> {
        self.oids.iter()
    }

    /// Iterates over all live links.
    pub fn iter_links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter()
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    /// Sets a property on an object, returning the previous value.
    ///
    /// Maintains the `(property, value)` secondary index (see
    /// [`MetaDb::where_prop_eq`]) and, when a journal is attached, emits a
    /// [`JournalOp::SetProp`] record.
    pub fn set_prop(
        &mut self,
        id: OidId,
        name: &str,
        value: Value,
    ) -> Result<Option<Value>, MetaError> {
        let entry = self.oids.get_mut(id).ok_or_else(|| stale(id))?;
        self.stats.prop_writes += 1;
        let old = entry.props.set(name, value.clone());
        let oid = self.journal.is_some().then(|| entry.oid.clone());
        if let Some(old_v) = &old {
            if *old_v != value {
                self.prop_index.remove(name, old_v, id);
            }
        }
        if let Some(j) = self.journal.as_mut() {
            j.record(JournalOp::SetProp {
                oid: oid.expect("cloned when journaling"),
                name: name.to_string(),
                value: value.clone(),
            });
        }
        self.prop_index.insert(name, value, id);
        Ok(old)
    }

    /// Live objects whose `name` property equals `value` **exactly** (same
    /// typed variant — for the paper's loose cross-type comparison, probe
    /// each candidate variant; see `ProjectQuery::where_prop_eq`). Served
    /// from the secondary index in O(hits), in address order.
    pub fn where_prop_eq(&self, name: &str, value: &Value) -> Vec<OidId> {
        self.prop_index
            .get(name, value)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Reads a property from an object.
    pub fn get_prop(&self, id: OidId, name: &str) -> Result<Option<&Value>, MetaError> {
        Ok(self.entry(id)?.props.get(name))
    }

    /// Removes a property from an object.
    pub fn remove_prop(&mut self, id: OidId, name: &str) -> Result<Option<Value>, MetaError> {
        let entry = self.oids.get_mut(id).ok_or_else(|| stale(id))?;
        let old = entry.props.remove(name);
        let oid = self.journal.is_some().then(|| entry.oid.clone());
        if let Some(old_v) = &old {
            self.prop_index.remove(name, old_v, id);
            if let Some(j) = self.journal.as_mut() {
                j.record(JournalOp::RemoveProp {
                    oid: oid.expect("cloned when journaling"),
                    name: name.to_string(),
                });
            }
        }
        Ok(old)
    }

    /// The full property map of an object.
    pub fn props(&self, id: OidId) -> Result<&PropertyMap, MetaError> {
        Ok(&self.entry(id)?.props)
    }

    /// Applies a sharded batch's property writes, producing **exactly**
    /// the journal-op stream, secondary index, counters and storage image
    /// a serial [`MetaDb::set_prop`] replay in ascending batch order
    /// would — but in three phases so the bulk of the work parallelizes:
    ///
    /// 1. **parallel storage phase** — one thread per lane writes its own
    ///    OIDs' property maps directly (lanes are shard-disjoint, so
    ///    [`crate::Arena::partition_mut`] hands each lane exclusive
    ///    references), collecting each write's displaced value as an
    ///    [`IndexDelta`] bucketed by property-hash shard and pre-building
    ///    the lane's [`JournalOp::SetProp`] records per run;
    /// 2. **parallel index phase** — threads split the secondary index's
    ///    shard array with `chunks_mut` and fold in the matching delta
    ///    buckets (lane batches commute within a shard because lanes
    ///    write disjoint ids);
    /// 3. **serial ordering phase** — the pre-built journal records are
    ///    emitted in ascending batch order (cheap `Vec` moves — the only
    ///    part of write application that is inherently order-dependent)
    ///    and the write counter moves once.
    ///
    /// Falls back to the exact serial replay when parallelism cannot help
    /// (`workers <= 1`, or fewer than two lanes carry writes) or when any
    /// target address is stale — the serial path reproduces the
    /// historical error semantics to the write (partial application up to
    /// the failing write).
    ///
    /// # Errors
    ///
    /// `Err((run_index, error))`: the batch index of the run whose write
    /// failed, with earlier runs' writes (and the failing run's earlier
    /// writes) applied — mirroring a serial replay that stopped there.
    pub fn apply_prop_writes_sharded(
        &mut self,
        lanes: Vec<LaneWrites>,
        workers: usize,
    ) -> Result<(), (usize, MetaError)> {
        let busy: Vec<LaneWrites> = lanes
            .into_iter()
            .filter(|lane| !lane.runs.is_empty())
            .collect();
        if workers <= 1 || busy.len() < 2 {
            return self.apply_prop_writes_serial(busy);
        }
        let targets: Vec<Vec<OidId>> = busy
            .iter()
            .map(|lane| {
                lane.runs
                    .iter()
                    .flat_map(|(_, writes)| writes.iter().map(|w| w.id))
                    .collect()
            })
            .collect();
        // A stale address (or a shard-map bug handing two lanes one OID)
        // falls back to the serial replay, which reproduces the historical
        // partial-application error semantics exactly.
        let Some(refs) = self.oids.partition_mut(&targets) else {
            return self.apply_prop_writes_serial(busy);
        };

        let journaling = self.journal.is_some();
        struct LaneApplied {
            runs: Vec<(usize, Vec<JournalOp>)>,
            deltas: Vec<Vec<IndexDelta<OidId>>>,
            writes: u64,
        }
        // Phase 1: parallel storage writes, one thread per busy lane.
        let mut applied: Vec<LaneApplied> = Vec::with_capacity(busy.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = busy
                .into_iter()
                .zip(refs)
                .map(|(lane, mut lane_refs)| {
                    scope.spawn(move || {
                        let mut deltas: Vec<Vec<IndexDelta<OidId>>> =
                            (0..PROP_INDEX_SHARDS).map(|_| Vec::new()).collect();
                        let mut runs = Vec::with_capacity(lane.runs.len());
                        let mut writes = 0u64;
                        for (index, run_writes) in lane.runs {
                            let mut ops = Vec::new();
                            if journaling {
                                ops.reserve(run_writes.len());
                            }
                            for w in run_writes {
                                let entry = lane_refs
                                    .get_mut(&w.id)
                                    .expect("partition covers every lane write");
                                let old = entry.props.set(w.prop.clone(), w.value.clone());
                                if journaling {
                                    ops.push(JournalOp::SetProp {
                                        oid: entry.oid.clone(),
                                        name: w.prop.clone(),
                                        value: w.value.clone(),
                                    });
                                }
                                deltas[prop_shard(&w.prop)].push(IndexDelta {
                                    id: w.id,
                                    name: w.prop,
                                    old,
                                    new: w.value,
                                });
                                writes += 1;
                            }
                            runs.push((index, ops));
                        }
                        LaneApplied {
                            runs,
                            deltas,
                            writes,
                        }
                    })
                })
                .collect();
            for handle in handles {
                applied.push(handle.join().expect("write-apply worker panicked"));
            }
        });

        // Merge the lanes' delta buckets per index shard, in ascending
        // lane order (any order is correct — lanes write disjoint ids —
        // but a fixed order keeps internal map states deterministic).
        let mut buckets: Vec<Vec<IndexDelta<OidId>>> =
            (0..PROP_INDEX_SHARDS).map(|_| Vec::new()).collect();
        let mut total_writes = 0u64;
        for lane in &mut applied {
            total_writes += lane.writes;
            for (bucket, mut produced) in buckets.iter_mut().zip(lane.deltas.drain(..)) {
                bucket.append(&mut produced);
            }
        }

        // Phase 2: parallel index maintenance over disjoint shard chunks.
        let threads = workers.clamp(1, PROP_INDEX_SHARDS);
        let chunk = PROP_INDEX_SHARDS.div_ceil(threads);
        let shards = self.prop_index.shards_mut();
        std::thread::scope(|scope| {
            for (shard_chunk, delta_chunk) in
                shards.chunks_mut(chunk).zip(buckets.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for (shard, deltas) in shard_chunk.iter_mut().zip(delta_chunk.iter_mut()) {
                        for delta in deltas.drain(..) {
                            shard.apply(delta);
                        }
                    }
                });
            }
        });

        // Phase 3: serial replay of the ordered deltas — journal records
        // in ascending batch order, then the counters.
        if journaling {
            let mut ordered: Vec<(usize, Vec<JournalOp>)> =
                applied.into_iter().flat_map(|lane| lane.runs).collect();
            ordered.sort_unstable_by_key(|(index, _)| *index);
            if let Some(j) = self.journal.as_mut() {
                for (_, ops) in ordered {
                    for op in ops {
                        j.record(op);
                    }
                }
            }
        }
        self.stats.prop_writes += total_writes;
        Ok(())
    }

    /// The serial fallback (and semantics reference) of
    /// [`MetaDb::apply_prop_writes_sharded`]: a plain
    /// [`MetaDb::set_prop`] replay in ascending batch order.
    fn apply_prop_writes_serial(
        &mut self,
        lanes: Vec<LaneWrites>,
    ) -> Result<(), (usize, MetaError)> {
        let mut runs: Vec<(usize, Vec<PropWrite>)> =
            lanes.into_iter().flat_map(|lane| lane.runs).collect();
        runs.sort_unstable_by_key(|(index, _)| *index);
        for (index, writes) in runs {
            for w in writes {
                if let Err(e) = self.set_prop(w.id, &w.prop, w.value) {
                    return Err((index, e));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Links
    // ------------------------------------------------------------------

    /// Adds a link from `from` to `to` with an empty PROPAGATE set.
    ///
    /// # Errors
    ///
    /// * [`MetaError::StaleOid`] if either endpoint handle is stale.
    /// * [`MetaError::SelfLink`] if the endpoints coincide.
    pub fn add_link(
        &mut self,
        from: OidId,
        to: OidId,
        class: LinkClass,
        kind: LinkKind,
    ) -> Result<LinkId, MetaError> {
        self.add_link_with(from, to, class, kind, std::iter::empty::<String>())
    }

    /// Adds a link whose PROPAGATE set is given up front.
    pub fn add_link_with<I, S>(
        &mut self,
        from: OidId,
        to: OidId,
        class: LinkClass,
        kind: LinkKind,
        propagates: I,
    ) -> Result<LinkId, MetaError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if !self.oids.contains(from) {
            return Err(stale(from));
        }
        if !self.oids.contains(to) {
            return Err(stale(to));
        }
        if from == to {
            return Err(MetaError::SelfLink {
                oid: self.oids[from].oid.clone(),
            });
        }
        let mut link = Link::new(from, to, class, kind);
        for event in propagates {
            let event: String = event.into();
            link.propagates_syms.insert(self.event_syms.intern(&event));
            link.propagates.insert(event);
        }
        let id = self.links.insert(link);
        // A link that carries no events cannot change reachability yet;
        // its first `allow_event` will record the bridge.
        let delta = if self.links[id].propagates.is_empty() {
            TopoDelta::Quiet
        } else {
            TopoDelta::Bridge { a: from, b: to }
        };
        self.bump_topology(delta);
        self.oids
            .get_mut(from)
            .expect("endpoint checked above")
            .links
            .push(id);
        self.oids
            .get_mut(to)
            .expect("endpoint checked above")
            .links
            .push(id);
        self.stats.created_links += 1;
        if self.journaling() {
            let from_oid = self.oids[from].oid.clone();
            let to_oid = self.oids[to].oid.clone();
            let (class, kind, propagates) = {
                let link = &self.links[id];
                (
                    link.class,
                    link.kind.clone(),
                    link.propagates.iter().cloned().collect(),
                )
            };
            if let Some(j) = self.journal.as_mut() {
                let tag = j.assign_tag(id);
                j.record(JournalOp::AddLink {
                    tag,
                    from: from_oid,
                    to: to_oid,
                    class,
                    kind,
                    propagates,
                });
            }
        }
        Ok(id)
    }

    /// Removes a link, detaching it from both endpoints.
    pub fn remove_link(&mut self, id: LinkId) -> Result<Link, MetaError> {
        let link = self
            .links
            .remove(id)
            .ok_or(MetaError::StaleLink { link: id })?;
        self.bump_topology(TopoDelta::Sever);
        for end in [link.from, link.to] {
            if let Some(entry) = self.oids.get_mut(end) {
                entry.links.retain(|&l| l != id);
            }
        }
        if let Some(j) = self.journal.as_mut() {
            let tag = j.release_tag(id);
            j.record(JournalOp::RemoveLink { tag });
        }
        Ok(link)
    }

    /// Returns the link stored at `id`.
    pub fn link(&self, id: LinkId) -> Result<&Link, MetaError> {
        self.links.get(id).ok_or(MetaError::StaleLink { link: id })
    }

    /// Adds `event` to a link's PROPAGATE set (both the string form and the
    /// interned bitset form). Returns whether the event was newly added.
    pub fn allow_event(&mut self, id: LinkId, event: &str) -> Result<bool, MetaError> {
        let sym = self.event_syms.intern(event);
        let link = self
            .links
            .get_mut(id)
            .ok_or(MetaError::StaleLink { link: id })?;
        link.propagates_syms.insert(sym);
        let fresh = link.propagates.insert(event.to_string());
        if fresh {
            let (a, b) = (link.from, link.to);
            self.bump_topology(TopoDelta::Bridge { a, b });
            if let Some(j) = self.journal.as_mut() {
                let tag = j.tag_of(id);
                j.record(JournalOp::AllowEvent {
                    tag,
                    event: event.to_string(),
                });
            }
        }
        Ok(fresh)
    }

    /// Sets a property on a link's free-form annotation, returning the
    /// previous value. The only write path to link annotations — there is
    /// deliberately no `&mut Link` accessor, so an attached journal
    /// observes every annotation write.
    pub fn set_link_prop(
        &mut self,
        id: LinkId,
        name: &str,
        value: Value,
    ) -> Result<Option<Value>, MetaError> {
        let link = self
            .links
            .get_mut(id)
            .ok_or(MetaError::StaleLink { link: id })?;
        let old = link.props.set(name, value.clone());
        if let Some(j) = self.journal.as_mut() {
            let tag = j.tag_of(id);
            j.record(JournalOp::SetLinkProp {
                tag,
                name: name.to_string(),
                value,
            });
        }
        Ok(old)
    }

    /// Removes a property from a link's annotation, returning its value.
    pub fn remove_link_prop(&mut self, id: LinkId, name: &str) -> Result<Option<Value>, MetaError> {
        let link = self
            .links
            .get_mut(id)
            .ok_or(MetaError::StaleLink { link: id })?;
        let old = link.props.remove(name);
        if old.is_some() {
            if let Some(j) = self.journal.as_mut() {
                let tag = j.tag_of(id);
                j.record(JournalOp::RemoveLinkProp {
                    tag,
                    name: name.to_string(),
                });
            }
        }
        Ok(old)
    }

    /// The interned handle of an event name, if any link's PROPAGATE set has
    /// ever mentioned it. `None` means no live link can propagate the event.
    pub fn event_sym(&self, event: &str) -> Option<Sym> {
        self.event_syms.lookup(event)
    }

    /// Iterates over the links incident to `id` (either end).
    pub fn links_of(&self, id: OidId) -> Result<Vec<(LinkId, &Link)>, MetaError> {
        Ok(self.links_of_iter(id)?.collect())
    }

    /// Iterator form of [`MetaDb::links_of`]: the links incident to `id`
    /// without collecting into a `Vec`.
    pub fn links_of_iter(
        &self,
        id: OidId,
    ) -> Result<impl Iterator<Item = (LinkId, &Link)> + '_, MetaError> {
        let entry = self.entry(id)?;
        Ok(entry
            .links
            .iter()
            .filter_map(|&l| self.links.get(l).map(|link| (l, link))))
    }

    /// OIDs reachable from `id` through one link in direction `dir`,
    /// optionally restricted to links whose PROPAGATE set allows `event`.
    ///
    /// This is exactly the per-hop rule of Section 3.2: "for each link, the
    /// event is passed on to the OID at the other end of the link if the link
    /// propagates the given type of event and if the direction of the link
    /// matches the up or down direction specified in the event message".
    pub fn neighbors(
        &self,
        id: OidId,
        dir: Direction,
        event: Option<&str>,
    ) -> Result<Vec<OidId>, MetaError> {
        let mut out = Vec::new();
        self.neighbors_into(id, dir, event, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`MetaDb::neighbors`]: appends the reachable
    /// OIDs to a caller-owned buffer (which the run-time engine reuses across
    /// propagation hops). The buffer is **not** cleared first.
    pub fn neighbors_into(
        &self,
        id: OidId,
        dir: Direction,
        event: Option<&str>,
        out: &mut Vec<OidId>,
    ) -> Result<(), MetaError> {
        for next in self.neighbors_iter(id, dir, event)? {
            out.push(next);
        }
        Ok(())
    }

    /// Iterator form of [`MetaDb::neighbors`]: the per-hop propagation rule
    /// of Section 3.2 as a lazy traversal, allocating nothing. The event
    /// filter resolves the name against the interned event universe once,
    /// then tests each link's PROPAGATE bitset — no per-link string
    /// comparison.
    pub fn neighbors_iter<'a>(
        &'a self,
        id: OidId,
        dir: Direction,
        event: Option<&str>,
    ) -> Result<impl Iterator<Item = OidId> + 'a, MetaError> {
        let entry = self.entry(id)?;
        // None: no filter. Some(None): the event name was never interned, so
        // no link anywhere can propagate it. Some(Some(sym)): bitset test.
        let filter: Option<Option<Sym>> = event.map(|e| self.event_syms.lookup(e));
        Ok(entry.links.iter().filter_map(move |&link_id| {
            let link = self.links.get(link_id)?;
            match filter {
                Some(None) => return None,
                Some(Some(sym)) if !link.allows_sym(sym) => return None,
                _ => {}
            }
            link.traverse_from(id, dir)
        }))
    }

    /// Re-points whichever end of `link_id` currently equals `old` to `new`.
    ///
    /// This implements the `move` keyword of template link rules (Fig. 3):
    /// "when a new version of an OID is created, these links are
    /// automatically shifted from the old version to the new version".
    pub fn move_link_end(
        &mut self,
        link_id: LinkId,
        old: OidId,
        new: OidId,
    ) -> Result<(), MetaError> {
        if !self.oids.contains(new) {
            return Err(stale(new));
        }
        let link = self
            .links
            .get_mut(link_id)
            .ok_or(MetaError::StaleLink { link: link_id })?;
        let moved_end = if link.from == old {
            link.from = new;
            MovedEnd::From
        } else if link.to == old {
            link.to = new;
            MovedEnd::To
        } else {
            return Err(MetaError::StaleLink { link: link_id });
        };
        // Conservative delta: merge the new end with the surviving end.
        // The old end stays merged too — a coarser partition is still a
        // correct partition (waves just share a lane they need not).
        let other = if moved_end == MovedEnd::From {
            link.to
        } else {
            link.from
        };
        self.bump_topology(TopoDelta::Bridge { a: new, b: other });
        if let Some(entry) = self.oids.get_mut(old) {
            entry.links.retain(|&l| l != link_id);
        }
        self.oids
            .get_mut(new)
            .expect("checked above")
            .links
            .push(link_id);
        if self.journaling() {
            let new_oid = self.oids[new].oid.clone();
            if let Some(j) = self.journal.as_mut() {
                let tag = j.tag_of(link_id);
                j.record(JournalOp::MoveLinkEnd {
                    tag,
                    end: moved_end,
                    new: new_oid,
                });
            }
        }
        Ok(())
    }

    /// Duplicates `link_id`, substituting `new` for `old` at whichever end
    /// matches — the `copy` transfer mode for links.
    pub fn copy_link_to(
        &mut self,
        link_id: LinkId,
        old: OidId,
        new: OidId,
    ) -> Result<LinkId, MetaError> {
        let link = self.link(link_id)?.clone();
        let (from, to) = if link.from == old {
            (new, link.to)
        } else if link.to == old {
            (link.from, new)
        } else {
            return Err(MetaError::StaleLink { link: link_id });
        };
        let id = self.add_link_with(from, to, link.class, link.kind, link.propagates)?;
        // Copy the annotation through the journaled setter so an attached
        // journal observes the copied properties.
        for (name, value) in link.props.iter() {
            self.set_link_prop(id, name, value.clone())?;
        }
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Journal attachment
    // ------------------------------------------------------------------

    /// Attaches a journal recorder: from this point on, every mutating
    /// method appends a [`JournalOp`] describing itself to an internal
    /// buffer which the owner drains with [`MetaDb::drain_journal_ops`]
    /// (typically into a [`crate::journal::JournalWriter`]).
    ///
    /// Existing links are assigned journal tags in image order (the
    /// deterministic order [`MetaDb::links_in_image_order`] — the same order
    /// [`crate::persist::save`] emits and [`crate::journal::recover`]
    /// reassigns), so ops recorded after attachment can reference
    /// pre-existing links across a snapshot boundary.
    ///
    /// Calling this on a database with a journal already attached re-bases
    /// it: the op buffer is cleared and link tags are re-assigned — done by
    /// checkpointing code right after writing a fresh snapshot.
    ///
    /// Every link write routes through the mutator API
    /// ([`MetaDb::set_link_prop`] / [`MetaDb::allow_event`] / …; there is
    /// no raw `&mut Link` accessor), so no annotation write can bypass the
    /// op log.
    pub fn attach_journal(&mut self) {
        let mut recorder = JournalRecorder::default();
        for id in self.links_in_image_order() {
            recorder.assign_tag(id);
        }
        self.journal = Some(recorder);
    }

    /// Detaches the journal recorder, discarding any undrained ops.
    pub fn detach_journal(&mut self) {
        self.journal = None;
    }

    /// Whether a journal recorder is attached.
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Takes the buffered journal ops, leaving the recorder attached.
    /// Returns an empty vec when no journal is attached.
    pub fn drain_journal_ops(&mut self) -> Vec<JournalOp> {
        self.journal
            .as_mut()
            .map(JournalRecorder::drain)
            .unwrap_or_default()
    }

    /// Number of buffered (undrained) journal ops.
    pub fn journal_backlog(&self) -> usize {
        self.journal.as_ref().map_or(0, JournalRecorder::backlog)
    }

    /// Appends a caller-supplied op (e.g. a server-level
    /// [`JournalOp::Data`] payload record) to the journal buffer, keeping
    /// it ordered relative to the database mutations around it — essential
    /// under group commit, where many operations' ops drain in one batch.
    /// No-op when no journal is attached.
    pub fn record_extra(&mut self, op: JournalOp) {
        if let Some(j) = self.journal.as_mut() {
            j.record(op);
        }
    }

    /// Live links in *image order*: sorted by `(from, to)` triplets with
    /// ties kept in arena order. This is the exact order [`crate::persist::save`]
    /// writes link records, which makes it the canonical order for
    /// assigning journal link tags across a snapshot boundary.
    pub fn links_in_image_order(&self) -> Vec<LinkId> {
        let mut links: Vec<(LinkId, &Oid, &Oid)> = self
            .iter_links()
            .filter_map(|(id, link)| {
                let from = self.oid(link.from).ok()?;
                let to = self.oid(link.to).ok()?;
                Some((id, from, to))
            })
            .collect();
        links.sort_by(|a, b| (a.1, a.2).cmp(&(b.1, b.2)));
        links.into_iter().map(|(id, _, _)| id).collect()
    }

    /// Number of distinct view type names ever interned by
    /// [`MetaDb::create_oid`] — an upper bound for caches indexed by
    /// [`OidEntry::view_sym`].
    pub fn view_sym_count(&self) -> usize {
        self.view_syms.len()
    }

    // ------------------------------------------------------------------
    // Version chains & views
    // ------------------------------------------------------------------

    /// Sorted version numbers existing for `(block, view)`.
    pub fn versions(&self, block: &str, view: &str) -> Vec<u32> {
        let key = match chain_key(block, view) {
            Some(k) => k,
            None => return Vec::new(),
        };
        self.chains.get(&key).cloned().unwrap_or_default()
    }

    /// The address of the highest-numbered version of `(block, view)`.
    pub fn latest_version(&self, block: &str, view: &str) -> Option<OidId> {
        let key = chain_key(block, view)?;
        let chain = self.chains.get(&key)?;
        let &version = chain.last()?;
        self.by_oid
            .get(&Oid {
                block: key.0,
                view: key.1,
                version,
            })
            .copied()
    }

    /// The address of the version preceding `oid.version` in its chain.
    pub fn predecessor(&self, oid: &Oid) -> Option<OidId> {
        let chain = self.chains.get(&(oid.block.clone(), oid.view.clone()))?;
        let pos = chain.partition_point(|&v| v < oid.version);
        if pos == 0 {
            return None;
        }
        let prev = chain[pos - 1];
        self.by_oid.get(&oid.at_version(prev)).copied()
    }

    /// Live objects of the given view type, in address order.
    pub fn oids_of_view(&self, view: &str) -> Vec<OidId> {
        match ViewType::try_new(view) {
            Ok(v) => self
                .by_view
                .get(&v)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// All view types with at least one live object.
    pub fn view_types(&self) -> Vec<ViewType> {
        self.by_view.keys().cloned().collect()
    }

    /// All distinct block names with at least one live object.
    pub fn block_names(&self) -> Vec<BlockName> {
        let mut blocks: BTreeSet<BlockName> = BTreeSet::new();
        for (_, entry) in self.oids.iter() {
            blocks.insert(entry.oid.block.clone());
        }
        blocks.into_iter().collect()
    }
}

fn chain_key(block: &str, view: &str) -> Option<(BlockName, ViewType)> {
    Some((
        BlockName::try_new(block).ok()?,
        ViewType::try_new(view).ok()?,
    ))
}

fn stale(id: OidId) -> MetaError {
    MetaError::StaleOid {
        handle: format!("{id:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_oid_rejected() {
        let mut db = MetaDb::new();
        db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let err = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap_err();
        assert!(matches!(err, MetaError::DuplicateOid { .. }));
    }

    #[test]
    fn resolve_and_require() {
        let mut db = MetaDb::new();
        let oid = Oid::new("cpu", "HDL_model", 1);
        let id = db.create_oid(oid.clone()).unwrap();
        assert_eq!(db.resolve(&oid), Some(id));
        assert_eq!(db.require(&oid).unwrap(), id);
        let missing = Oid::new("cpu", "HDL_model", 2);
        assert!(matches!(
            db.require(&missing),
            Err(MetaError::UnknownOid { .. })
        ));
    }

    #[test]
    fn delete_removes_incident_links_and_indices() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let b = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        let l = db
            .add_link(a, b, LinkClass::Derive, LinkKind::DeriveFrom)
            .unwrap();
        db.delete_oid(a).unwrap();
        assert!(!db.is_live(a));
        assert!(db.link(l).is_err());
        assert!(db.entry(b).unwrap().link_ids().is_empty());
        assert!(db.versions("cpu", "HDL_model").is_empty());
        assert_eq!(db.oids_of_view("HDL_model"), Vec::<OidId>::new());
    }

    #[test]
    fn version_chain_ordering() {
        let mut db = MetaDb::new();
        // Created out of order on purpose.
        db.create_oid(Oid::new("cpu", "schematic", 3)).unwrap();
        let v1 = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        let v5 = db.create_oid(Oid::new("cpu", "schematic", 5)).unwrap();
        assert_eq!(db.versions("cpu", "schematic"), vec![1, 3, 5]);
        assert_eq!(db.latest_version("cpu", "schematic"), Some(v5));
        let prev = db.predecessor(&Oid::new("cpu", "schematic", 3)).unwrap();
        assert_eq!(prev, v1);
        assert!(db.predecessor(&Oid::new("cpu", "schematic", 1)).is_none());
    }

    #[test]
    fn self_link_rejected() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let err = db
            .add_link(a, a, LinkClass::Use, LinkKind::Composition)
            .unwrap_err();
        assert!(matches!(err, MetaError::SelfLink { .. }));
    }

    #[test]
    fn neighbors_respect_direction_and_propagate() {
        let mut db = MetaDb::new();
        let hdl = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let sch = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        let lay = db.create_oid(Oid::new("cpu", "layout", 1)).unwrap();
        db.add_link_with(
            hdl,
            sch,
            LinkClass::Derive,
            LinkKind::DeriveFrom,
            ["outofdate"],
        )
        .unwrap();
        db.add_link_with(sch, lay, LinkClass::Derive, LinkKind::Equivalence, ["lvs"])
            .unwrap();

        assert_eq!(
            db.neighbors(hdl, Direction::Down, Some("outofdate"))
                .unwrap(),
            vec![sch]
        );
        // Wrong event name: filtered out.
        assert!(db
            .neighbors(hdl, Direction::Down, Some("lvs"))
            .unwrap()
            .is_empty());
        // Wrong direction: filtered out.
        assert!(db
            .neighbors(hdl, Direction::Up, Some("outofdate"))
            .unwrap()
            .is_empty());
        // Up from layout crosses the equivalence link back to schematic.
        assert_eq!(
            db.neighbors(lay, Direction::Up, Some("lvs")).unwrap(),
            vec![sch]
        );
        // No filter: all direction-compatible links count.
        assert_eq!(db.neighbors(sch, Direction::Down, None).unwrap(), vec![lay]);
    }

    #[test]
    fn propagate_bitset_tracks_string_set() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let l = db
            .add_link_with(a, b, LinkClass::Derive, LinkKind::DeriveFrom, ["outofdate"])
            .unwrap();

        // add_link_with interned the event; string and bitset forms agree.
        let sym = db
            .event_sym("outofdate")
            .expect("interned at link creation");
        assert!(db.link(l).unwrap().allows("outofdate"));
        assert!(db.link(l).unwrap().allows_sym(sym));
        assert!(db.link(l).unwrap().propagates().contains("outofdate"));

        // An event no link mentions resolves to no symbol at all — the
        // neighbor filter's short-circuit for never-propagated events.
        assert_eq!(db.event_sym("lvs"), None);
        assert!(db
            .neighbors(a, Direction::Down, Some("lvs"))
            .unwrap()
            .is_empty());

        // allow_event keeps both forms in lock-step.
        assert!(db.allow_event(l, "lvs").unwrap());
        assert!(!db.allow_event(l, "lvs").unwrap(), "second add is a no-op");
        let lvs = db.event_sym("lvs").unwrap();
        assert!(db.link(l).unwrap().allows("lvs"));
        assert!(db.link(l).unwrap().allows_sym(lvs));
        assert_eq!(
            db.neighbors(a, Direction::Down, Some("lvs")).unwrap(),
            vec![b]
        );
    }

    #[test]
    fn neighbors_into_appends_without_clearing() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.add_link_with(a, b, LinkClass::Use, LinkKind::Composition, ["e"])
            .unwrap();
        let mut buf = vec![a];
        db.neighbors_into(a, Direction::Down, Some("e"), &mut buf)
            .unwrap();
        assert_eq!(buf, vec![a, b], "appends; caller owns clearing");
        let hops: Vec<OidId> = db
            .neighbors_iter(a, Direction::Down, Some("e"))
            .unwrap()
            .collect();
        assert_eq!(hops, vec![b]);
    }

    #[test]
    fn move_link_end_shifts_to_new_version() {
        // Fig. 3: NetList.8 -> GDSII.5 moves to NetList.8 -> GDSII.6.
        let mut db = MetaDb::new();
        let nl = db.create_oid(Oid::new("alu", "NetList", 8)).unwrap();
        let g5 = db.create_oid(Oid::new("alu", "GDSII", 5)).unwrap();
        let g6 = db.create_oid(Oid::new("alu", "GDSII", 6)).unwrap();
        let l = db
            .add_link_with(
                nl,
                g5,
                LinkClass::Derive,
                LinkKind::DeriveFrom,
                ["OutOfDate"],
            )
            .unwrap();
        db.move_link_end(l, g5, g6).unwrap();
        let link = db.link(l).unwrap();
        assert_eq!(link.from, nl);
        assert_eq!(link.to, g6);
        assert!(db.entry(g5).unwrap().link_ids().is_empty());
        assert_eq!(db.entry(g6).unwrap().link_ids(), &[l]);
        assert!(link.allows("OutOfDate"));
    }

    #[test]
    fn copy_link_to_duplicates() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b1 = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let b2 = db.create_oid(Oid::new("b", "v", 2)).unwrap();
        let l = db
            .add_link_with(a, b1, LinkClass::Use, LinkKind::Composition, ["outofdate"])
            .unwrap();
        let l2 = db.copy_link_to(l, b1, b2).unwrap();
        assert!(db.link(l).is_ok(), "original link survives a copy");
        let copy = db.link(l2).unwrap();
        assert_eq!(copy.from, a);
        assert_eq!(copy.to, b2);
        assert!(copy.allows("outofdate"));
        assert_eq!(db.link_count(), 2);
    }

    #[test]
    fn stats_track_activity() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.add_link(a, b, LinkClass::Use, LinkKind::Composition)
            .unwrap();
        db.set_prop(a, "x", Value::Int(1)).unwrap();
        db.delete_oid(b).unwrap();
        let s = db.stats();
        assert_eq!(s.live_oids, 1);
        assert_eq!(s.live_links, 0);
        assert_eq!(s.created_oids, 2);
        assert_eq!(s.created_links, 1);
        assert_eq!(s.prop_writes, 1);
    }

    #[test]
    fn prop_index_tracks_writes_removals_and_deletes() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.set_prop(a, "drc", Value::from_atom("ok")).unwrap();
        db.set_prop(b, "drc", Value::from_atom("ok")).unwrap();
        assert_eq!(db.where_prop_eq("drc", &Value::from_atom("ok")), vec![a, b]);

        // Overwrite moves the id between value buckets.
        db.set_prop(a, "drc", Value::from_atom("bad")).unwrap();
        assert_eq!(db.where_prop_eq("drc", &Value::from_atom("ok")), vec![b]);
        assert_eq!(db.where_prop_eq("drc", &Value::from_atom("bad")), vec![a]);

        // Removal and deletion both unindex.
        db.remove_prop(a, "drc").unwrap();
        assert!(db.where_prop_eq("drc", &Value::from_atom("bad")).is_empty());
        db.delete_oid(b).unwrap();
        assert!(db.where_prop_eq("drc", &Value::from_atom("ok")).is_empty());

        // The index is exact-typed: Int(4) and Str("4") live in separate
        // buckets (loose union happens in the query layer).
        let c = db.create_oid(Oid::new("c", "v", 1)).unwrap();
        db.set_prop(c, "n", Value::Int(4)).unwrap();
        assert_eq!(db.where_prop_eq("n", &Value::Int(4)), vec![c]);
        assert!(db.where_prop_eq("n", &Value::Str("4".into())).is_empty());
    }

    #[test]
    fn journal_records_replay_to_identical_image() {
        use crate::journal::{self, JournalOp};
        let mut db = MetaDb::new();
        db.attach_journal();
        assert!(db.journaling());
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let b = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        let b2 = db.create_oid(Oid::new("cpu", "schematic", 2)).unwrap();
        db.set_prop(a, "uptodate", Value::Bool(true)).unwrap();
        let l = db
            .add_link_with(a, b, LinkClass::Derive, LinkKind::DeriveFrom, ["outofdate"])
            .unwrap();
        db.allow_event(l, "lvs").unwrap();
        db.set_link_prop(l, "weight", Value::Int(3)).unwrap();
        db.move_link_end(l, b, b2).unwrap();
        let l2 = db.copy_link_to(l, b2, b).unwrap();
        db.remove_link(l2).unwrap();
        db.remove_prop(a, "uptodate").unwrap();
        db.set_prop(b2, "uptodate", Value::Bool(false)).unwrap();
        db.delete_oid(b).unwrap();

        let ops: Vec<JournalOp> = db.drain_journal_ops();
        assert!(db.journal_backlog() == 0);
        let (replayed, _ws) = journal::replay_ops(&ops).expect("ops replay");
        assert_eq!(
            crate::persist::save(&replayed),
            crate::persist::save(&db),
            "replaying the op log reproduces the database image"
        );
    }

    #[test]
    fn view_syms_are_stable_per_view() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "schematic", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "schematic", 1)).unwrap();
        let c = db.create_oid(Oid::new("c", "layout", 1)).unwrap();
        assert_eq!(
            db.entry(a).unwrap().view_sym(),
            db.entry(b).unwrap().view_sym()
        );
        assert_ne!(
            db.entry(a).unwrap().view_sym(),
            db.entry(c).unwrap().view_sym()
        );
        assert_eq!(db.view_sym_count(), 2);
    }

    #[test]
    fn sharded_apply_matches_serial_replay() {
        fn seed() -> (MetaDb, Vec<OidId>) {
            let mut db = MetaDb::new();
            db.attach_journal();
            let ids: Vec<OidId> = ["a", "b", "c", "d"]
                .iter()
                .map(|b| db.create_oid(Oid::new(*b, "schematic", 1)).unwrap())
                .collect();
            db.set_prop(ids[0], "state", Value::from_atom("seed"))
                .unwrap();
            db.drain_journal_ops();
            (db, ids)
        }
        fn lanes(ids: &[OidId]) -> Vec<LaneWrites> {
            let w = |id: OidId, prop: &str, v: &str| PropWrite {
                id,
                prop: prop.into(),
                value: Value::from_atom(v),
            };
            vec![
                LaneWrites {
                    runs: vec![
                        (
                            0,
                            vec![w(ids[0], "state", "dirty"), w(ids[1], "state", "ok")],
                        ),
                        (2, vec![w(ids[0], "state", "clean"), w(ids[0], "drc", "ok")]),
                    ],
                },
                LaneWrites {
                    runs: vec![
                        (1, vec![w(ids[2], "state", "ok")]),
                        (3, vec![w(ids[3], "lvs", "bad"), w(ids[2], "lvs", "bad")]),
                    ],
                },
            ]
        }

        let (mut parallel, ids) = seed();
        let (mut serial, ids2) = seed();
        parallel.apply_prop_writes_sharded(lanes(&ids), 4).unwrap();
        serial.apply_prop_writes_sharded(lanes(&ids2), 1).unwrap();

        assert_eq!(
            parallel.drain_journal_ops(),
            serial.drain_journal_ops(),
            "journal-op stream is byte-identical (runs in batch order)"
        );
        assert_eq!(
            crate::persist::save(&parallel),
            crate::persist::save(&serial),
            "persisted images agree"
        );
        assert_eq!(
            parallel.stats().prop_writes,
            serial.stats().prop_writes,
            "write counters agree"
        );
        // The sharded path maintained the secondary index in parallel.
        assert_eq!(
            parallel.where_prop_eq("lvs", &Value::from_atom("bad")),
            vec![ids[2], ids[3]]
        );
        assert_eq!(
            parallel.where_prop_eq("state", &Value::from_atom("dirty")),
            Vec::<OidId>::new(),
            "displaced values are unindexed"
        );
    }

    #[test]
    fn sharded_apply_stale_target_reports_serial_error_position() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.delete_oid(b).unwrap();
        let w = |id: OidId, prop: &str| PropWrite {
            id,
            prop: prop.into(),
            value: Value::Bool(true),
        };
        let lanes = vec![
            LaneWrites {
                runs: vec![(0, vec![w(a, "first")])],
            },
            LaneWrites {
                runs: vec![(1, vec![w(b, "stale")])],
            },
        ];
        let (index, err) = db.apply_prop_writes_sharded(lanes, 4).unwrap_err();
        assert_eq!(index, 1, "the failing run's batch index is reported");
        assert!(matches!(err, MetaError::StaleOid { .. }));
        // Serial semantics: writes before the failure landed.
        assert_eq!(db.props(a).unwrap().get("first"), Some(&Value::Bool(true)));
    }

    #[test]
    fn topology_delta_log_reports_bumps_and_truncation() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let before = db.topology_stamp();

        // Plain link: no propagates yet, so shard topology is unchanged.
        let l = db
            .add_link(a, b, LinkClass::Derive, LinkKind::DeriveFrom)
            .unwrap();
        // First allow_event turns it into a live bridge.
        db.allow_event(l, "outofdate").unwrap();
        db.remove_link(l).unwrap();

        let deltas: Vec<TopoDelta> = db
            .topology_deltas_since(before)
            .expect("log covers the whole window")
            .copied()
            .collect();
        assert_eq!(
            deltas,
            vec![
                TopoDelta::Quiet,
                TopoDelta::Bridge { a, b },
                TopoDelta::Sever
            ]
        );
        // Fully caught up: empty (but present) iterator.
        let now = db.topology_stamp();
        assert_eq!(db.topology_deltas_since(now).unwrap().count(), 0);

        // Overflow the bounded log; a too-old stamp now reports `None`
        // (consumers must rebuild rather than patch incrementally).
        for _ in 0..3000 {
            let l = db
                .add_link_with(a, b, LinkClass::Derive, LinkKind::DeriveFrom, ["e"])
                .unwrap();
            db.remove_link(l).unwrap();
        }
        assert!(db.topology_deltas_since(before).is_none());
        assert!(db.topology_deltas_since(db.topology_stamp()).is_some());
    }

    #[test]
    fn view_and_block_enumeration() {
        let mut db = MetaDb::new();
        db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        db.create_oid(Oid::new("reg", "schematic", 1)).unwrap();
        db.create_oid(Oid::new("cpu", "layout", 1)).unwrap();
        assert_eq!(db.oids_of_view("schematic").len(), 2);
        let views: Vec<String> = db.view_types().iter().map(|v| v.to_string()).collect();
        assert_eq!(views, vec!["layout", "schematic"]);
        let blocks: Vec<String> = db.block_names().iter().map(|b| b.to_string()).collect();
        assert_eq!(blocks, vec!["cpu", "reg"]);
    }
}

//! Configurations: lightweight sets of database addresses.
//!
//! "The third type of meta-data objects are Configurations, which consist of
//! a set of database addresses, referencing OIDs and Links. This
//! implementation results in light weight configuration objects, which can be
//! used to store results of volume queries. … Configurations can be used to
//! save the state of the design hierarchy in a snapshot at each step of the
//! design cycle. They can be built by traversing a hierarchy while following
//! certain rules, or can be made as a result of a query." — Section 2.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::db::{MetaDb, OidId};
use crate::error::MetaError;
use crate::link::{Direction, LinkClass, LinkId};
use crate::oid::Oid;

/// The traversal rule used when snapshotting a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotRule {
    /// Follow only `use` links (hierarchy within a view), downwards.
    Hierarchy,
    /// Follow every link downwards (hierarchy plus derivations).
    Closure,
}

/// A lightweight set of database addresses referencing OIDs and Links.
///
/// A configuration does **not** keep the referenced objects alive: after
/// deletions, some addresses may dangle. [`Configuration::dangling`] counts
/// them and [`Configuration::resolve`] either tolerates or rejects them, so a
/// snapshot taken early in the design cycle degrades gracefully — exactly the
/// light-weight behaviour the paper claims.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Configuration {
    name: String,
    oids: Vec<OidId>,
    links: Vec<LinkId>,
}

impl Configuration {
    /// Creates an empty configuration.
    pub fn new(name: impl Into<String>) -> Self {
        Configuration {
            name: name.into(),
            oids: Vec::new(),
            links: Vec::new(),
        }
    }

    /// The configuration's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of OID addresses held.
    pub fn oid_count(&self) -> usize {
        self.oids.len()
    }

    /// Number of link addresses held.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether the configuration holds no addresses at all.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty() && self.links.is_empty()
    }

    /// The stored OID addresses.
    pub fn oid_ids(&self) -> &[OidId] {
        &self.oids
    }

    /// The stored link addresses.
    pub fn link_ids(&self) -> &[LinkId] {
        &self.links
    }

    /// Whether the configuration references `id`.
    pub fn contains(&self, id: OidId) -> bool {
        self.oids.contains(&id)
    }

    /// Adds an OID address (deduplicated).
    pub fn push_oid(&mut self, id: OidId) {
        if !self.oids.contains(&id) {
            self.oids.push(id);
        }
    }

    /// Adds a link address (deduplicated).
    pub fn push_link(&mut self, id: LinkId) {
        if !self.links.contains(&id) {
            self.links.push(id);
        }
    }

    /// Counts addresses that no longer resolve in `db`.
    pub fn dangling(&self, db: &MetaDb) -> usize {
        let dead_oids = self.oids.iter().filter(|&&id| !db.is_live(id)).count();
        let dead_links = self
            .links
            .iter()
            .filter(|&&id| db.link(id).is_err())
            .count();
        dead_oids + dead_links
    }

    /// Resolves every live OID address into its triplet.
    ///
    /// # Errors
    ///
    /// With `strict`, returns [`MetaError::StaleConfiguration`] if any address
    /// dangles; otherwise dangling addresses are silently skipped.
    pub fn resolve(&self, db: &MetaDb, strict: bool) -> Result<Vec<Oid>, MetaError> {
        let dangling = self.dangling(db);
        if strict && dangling > 0 {
            return Err(MetaError::StaleConfiguration {
                name: self.name.clone(),
                dangling,
            });
        }
        Ok(self
            .oids
            .iter()
            .filter_map(|&id| db.oid(id).ok().cloned())
            .collect())
    }

    /// Addresses present in `self` but not in `other` — what changed between
    /// two snapshots of the design cycle.
    pub fn diff(&self, other: &Configuration) -> Vec<OidId> {
        let theirs: BTreeSet<OidId> = other.oids.iter().copied().collect();
        self.oids
            .iter()
            .copied()
            .filter(|id| !theirs.contains(id))
            .collect()
    }
}

/// Builds [`Configuration`]s by hierarchy traversal or by query.
///
/// # Example
///
/// ```
/// use damocles_meta::{MetaDb, Oid, LinkClass, LinkKind, ConfigurationBuilder, SnapshotRule};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// let cpu = db.create_oid(Oid::new("cpu", "SCHEMA", 4))?;
/// let reg = db.create_oid(Oid::new("reg", "SCHEMA", 2))?;
/// db.add_link(cpu, reg, LinkClass::Use, LinkKind::Composition)?;
///
/// let snap = ConfigurationBuilder::new(&db)
///     .traverse(cpu, SnapshotRule::Hierarchy)
///     .build("step-1");
/// assert_eq!(snap.oid_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConfigurationBuilder<'db> {
    db: &'db MetaDb,
    oids: Vec<OidId>,
    links: Vec<LinkId>,
    seen: BTreeSet<OidId>,
}

impl<'db> ConfigurationBuilder<'db> {
    /// Starts building against `db`.
    pub fn new(db: &'db MetaDb) -> Self {
        ConfigurationBuilder {
            db,
            oids: Vec::new(),
            links: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Adds `root` and everything reachable downwards per `rule`.
    pub fn traverse(mut self, root: OidId, rule: SnapshotRule) -> Self {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.db.is_live(id) || !self.seen.insert(id) {
                continue;
            }
            self.oids.push(id);
            let Ok(links) = self.db.links_of(id) else {
                continue;
            };
            for (link_id, link) in links {
                if rule == SnapshotRule::Hierarchy && link.class != LinkClass::Use {
                    continue;
                }
                if let Some(next) = link.traverse_from(id, Direction::Down) {
                    if !self.links.contains(&link_id) {
                        self.links.push(link_id);
                    }
                    stack.push(next);
                }
            }
        }
        self
    }

    /// Adds every live OID matching `predicate` — "the result of a query, in
    /// which case [the configuration] will be a non-hierarchical set of data".
    pub fn query(mut self, mut predicate: impl FnMut(&crate::db::OidEntry) -> bool) -> Self {
        for (id, entry) in self.db.iter_oids() {
            if predicate(entry) && self.seen.insert(id) {
                self.oids.push(id);
            }
        }
        self
    }

    /// Finalizes the configuration under `name`.
    pub fn build(self, name: impl Into<String>) -> Configuration {
        Configuration {
            name: name.into(),
            oids: self.oids,
            links: self.links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use crate::property::Value;

    /// cpu(SCHEMA) --use--> reg(SCHEMA); cpu --derive--> net(netlist)
    fn sample() -> (MetaDb, OidId, OidId, OidId) {
        let mut db = MetaDb::new();
        let cpu = db.create_oid(Oid::new("cpu", "SCHEMA", 4)).unwrap();
        let reg = db.create_oid(Oid::new("reg", "SCHEMA", 2)).unwrap();
        let net = db.create_oid(Oid::new("cpu", "netlist", 1)).unwrap();
        db.add_link(cpu, reg, LinkClass::Use, LinkKind::Composition)
            .unwrap();
        db.add_link(cpu, net, LinkClass::Derive, LinkKind::DeriveFrom)
            .unwrap();
        (db, cpu, reg, net)
    }

    #[test]
    fn hierarchy_rule_follows_only_use_links() {
        let (db, cpu, reg, net) = sample();
        let snap = ConfigurationBuilder::new(&db)
            .traverse(cpu, SnapshotRule::Hierarchy)
            .build("h");
        assert!(snap.contains(cpu));
        assert!(snap.contains(reg));
        assert!(!snap.contains(net));
        assert_eq!(snap.link_count(), 1);
    }

    #[test]
    fn closure_rule_follows_all_links() {
        let (db, cpu, _reg, net) = sample();
        let snap = ConfigurationBuilder::new(&db)
            .traverse(cpu, SnapshotRule::Closure)
            .build("c");
        assert_eq!(snap.oid_count(), 3);
        assert!(snap.contains(net));
    }

    #[test]
    fn query_builds_non_hierarchical_set() {
        let (mut db, cpu, _reg, _net) = sample();
        db.set_prop(cpu, "uptodate", Value::Bool(false)).unwrap();
        let snap = ConfigurationBuilder::new(&db)
            .query(|entry| entry.props.get("uptodate") == Some(&Value::Bool(false)))
            .build("stale");
        assert_eq!(snap.oid_count(), 1);
        assert!(snap.contains(cpu));
        assert_eq!(snap.link_count(), 0);
    }

    #[test]
    fn dangling_addresses_detected_after_delete() {
        let (mut db, cpu, reg, _net) = sample();
        let snap = ConfigurationBuilder::new(&db)
            .traverse(cpu, SnapshotRule::Hierarchy)
            .build("snap");
        db.delete_oid(reg).unwrap();
        // reg's address and the cpu->reg use link both dangle now.
        assert_eq!(snap.dangling(&db), 2);
        let lenient = snap.resolve(&db, false).unwrap();
        assert_eq!(lenient.len(), 1);
        let strict = snap.resolve(&db, true);
        assert!(matches!(
            strict,
            Err(MetaError::StaleConfiguration { dangling: 2, .. })
        ));
    }

    #[test]
    fn diff_between_snapshots() {
        let (mut db, cpu, _reg, _net) = sample();
        let before = ConfigurationBuilder::new(&db)
            .traverse(cpu, SnapshotRule::Closure)
            .build("before");
        let extra = db.create_oid(Oid::new("cpu", "layout", 1)).unwrap();
        db.add_link(cpu, extra, LinkClass::Derive, LinkKind::Equivalence)
            .unwrap();
        let after = ConfigurationBuilder::new(&db)
            .traverse(cpu, SnapshotRule::Closure)
            .build("after");
        assert_eq!(after.diff(&before), vec![extra]);
        assert!(before.diff(&after).is_empty());
    }

    #[test]
    fn cyclic_links_terminate() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.add_link(a, b, LinkClass::Use, LinkKind::Composition)
            .unwrap();
        db.add_link(b, a, LinkClass::Use, LinkKind::Composition)
            .unwrap();
        let snap = ConfigurationBuilder::new(&db)
            .traverse(a, SnapshotRule::Hierarchy)
            .build("cycle");
        assert_eq!(snap.oid_count(), 2);
    }

    #[test]
    fn push_deduplicates() {
        let (db, cpu, _, _) = sample();
        let _ = db;
        let mut cfg = Configuration::new("manual");
        cfg.push_oid(cpu);
        cfg.push_oid(cpu);
        assert_eq!(cfg.oid_count(), 1);
    }
}

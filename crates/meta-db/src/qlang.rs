//! A small textual query language over the meta-database.
//!
//! Section 2: configurations "can be used to store results of volume
//! queries … or can be made as a result of a query, in which case they will
//! be a non-hierarchical set of data". A stored query needs a storable
//! representation; this module provides it as whitespace-separated,
//! AND-combined terms:
//!
//! | term | meaning |
//! |---|---|
//! | `view=schematic` | the OID's view type matches |
//! | `block=cpu` | the OID's block name matches |
//! | `version=3` / `version!=3` | exact version (mis)match |
//! | `version>=2` / `version<=2` | version bounds |
//! | `latest` | only the newest version of each `(block, view)` chain |
//! | `prop.uptodate=false` | property equals the atom (loose comparison) |
//! | `prop.drc_result!=good` | property differs (or is absent) |
//! | `has.lvs_result` | property present, any value |
//! | `stale.uptodate` | property present and not truthy |
//!
//! # Example
//!
//! ```
//! use damocles_meta::{MetaDb, Oid, Value, qlang::Query};
//!
//! # fn main() -> Result<(), damocles_meta::MetaError> {
//! let mut db = MetaDb::new();
//! let a = db.create_oid(Oid::new("cpu", "schematic", 1))?;
//! db.set_prop(a, "uptodate", Value::Bool(false))?;
//! let q: Query = "view=schematic stale.uptodate".parse()?;
//! assert_eq!(q.run(&db), vec![a]);
//! # Ok(())
//! # }
//! ```

use std::str::FromStr;

use crate::config::{Configuration, ConfigurationBuilder};
use crate::db::{MetaDb, OidEntry, OidId};
use crate::error::MetaError;
use crate::property::Value;

/// One AND-term of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// `view=<name>`
    ViewIs(String),
    /// `block=<name>`
    BlockIs(String),
    /// `version<op><n>`
    Version {
        /// Comparison operator.
        op: VersionOp,
        /// Right-hand side.
        value: u32,
    },
    /// `latest`
    Latest,
    /// `prop.<name>=<atom>` / `prop.<name>!=<atom>`
    Prop {
        /// Property name.
        name: String,
        /// Expected atom.
        expected: String,
        /// True for `!=`.
        negated: bool,
    },
    /// `has.<name>`
    Has(String),
    /// `stale.<name>` — present and not truthy.
    Stale(String),
}

/// Version comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum VersionOp {
    Eq,
    Ne,
    Ge,
    Le,
}

/// A parsed query: AND of all terms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    terms: Vec<Term>,
}

impl Query {
    /// The parsed terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Whether `entry` (at address `id`) matches every term.
    pub fn matches(&self, db: &MetaDb, id: OidId, entry: &OidEntry) -> bool {
        self.terms.iter().all(|term| match term {
            Term::ViewIs(v) => entry.oid.view.as_str() == v,
            Term::BlockIs(b) => entry.oid.block.as_str() == b,
            Term::Version { op, value } => {
                let v = entry.oid.version;
                match op {
                    VersionOp::Eq => v == *value,
                    VersionOp::Ne => v != *value,
                    VersionOp::Ge => v >= *value,
                    VersionOp::Le => v <= *value,
                }
            }
            Term::Latest => {
                db.latest_version(entry.oid.block.as_str(), entry.oid.view.as_str()) == Some(id)
            }
            Term::Prop {
                name,
                expected,
                negated,
            } => {
                let matches = entry
                    .props
                    .get(name)
                    .is_some_and(|v| v.loose_eq(&Value::from_atom(expected)));
                matches != *negated
            }
            Term::Has(name) => entry.props.contains(name),
            Term::Stale(name) => entry.props.get(name).is_some_and(|v| !v.is_truthy()),
        })
    }

    /// Runs the query, returning matching addresses in address order.
    ///
    /// When the query contains a positive literal compare
    /// (`prop.<name>=<atom>`), the candidate set is seeded from the
    /// database's `(property, value)` secondary index instead of scanning
    /// every live OID — O(hits on that term) instead of O(db). The
    /// remaining terms filter the candidates as usual.
    pub fn run(&self, db: &MetaDb) -> Vec<OidId> {
        let seed = self.terms.iter().find_map(|t| match t {
            Term::Prop {
                name,
                expected,
                negated: false,
            } => Some(
                crate::query::ProjectQuery::new(db)
                    .where_prop_eq(name, &Value::from_atom(expected)),
            ),
            _ => None,
        });
        let mut out: Vec<OidId> = match seed {
            Some(candidates) => candidates
                .into_iter()
                .filter(|id| {
                    db.entry(*id)
                        .is_ok_and(|entry| self.matches(db, *id, entry))
                })
                .collect(),
            None => db
                .iter_oids()
                .filter(|(id, entry)| self.matches(db, *id, entry))
                .map(|(id, _)| id)
                .collect(),
        };
        out.sort();
        out
    }

    /// Runs the query into a stored [`Configuration`] — the paper's
    /// "result of a query" configuration.
    pub fn into_configuration(&self, db: &MetaDb, name: impl Into<String>) -> Configuration {
        ConfigurationBuilder::new(db)
            .query(|entry| {
                // ConfigurationBuilder::query has no address; re-resolve.
                db.resolve(&entry.oid)
                    .is_some_and(|id| self.matches(db, id, entry))
            })
            .build(name)
    }
}

impl FromStr for Query {
    type Err = MetaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: String| MetaError::WireParse {
            reason,
            input: s.to_string(),
        };
        let mut terms = Vec::new();
        for word in s.split_whitespace() {
            if word == "latest" {
                terms.push(Term::Latest);
            } else if let Some(rest) = word.strip_prefix("view=") {
                terms.push(Term::ViewIs(rest.to_string()));
            } else if let Some(rest) = word.strip_prefix("block=") {
                terms.push(Term::BlockIs(rest.to_string()));
            } else if let Some(rest) = word.strip_prefix("version") {
                let (op, num) = if let Some(n) = rest.strip_prefix(">=") {
                    (VersionOp::Ge, n)
                } else if let Some(n) = rest.strip_prefix("<=") {
                    (VersionOp::Le, n)
                } else if let Some(n) = rest.strip_prefix("!=") {
                    (VersionOp::Ne, n)
                } else if let Some(n) = rest.strip_prefix('=') {
                    (VersionOp::Eq, n)
                } else {
                    return Err(err(format!("bad version term `{word}`")));
                };
                let value: u32 = num
                    .parse()
                    .map_err(|_| err(format!("`{num}` is not a version number")))?;
                terms.push(Term::Version { op, value });
            } else if let Some(rest) = word.strip_prefix("prop.") {
                let (name, expected, negated) = if let Some((n, v)) = rest.split_once("!=") {
                    (n, v, true)
                } else if let Some((n, v)) = rest.split_once('=') {
                    (n, v, false)
                } else {
                    return Err(err(format!("bad prop term `{word}` (need `=` or `!=`)")));
                };
                if name.is_empty() {
                    return Err(err(format!("empty property name in `{word}`")));
                }
                terms.push(Term::Prop {
                    name: name.to_string(),
                    expected: expected.to_string(),
                    negated,
                });
            } else if let Some(rest) = word.strip_prefix("has.") {
                if rest.is_empty() {
                    return Err(err("empty property name in `has.`".to_string()));
                }
                terms.push(Term::Has(rest.to_string()));
            } else if let Some(rest) = word.strip_prefix("stale.") {
                if rest.is_empty() {
                    return Err(err("empty property name in `stale.`".to_string()));
                }
                terms.push(Term::Stale(rest.to_string()));
            } else {
                return Err(err(format!("unrecognized query term `{word}`")));
            }
        }
        Ok(Query { terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    fn sample_db() -> MetaDb {
        let mut db = MetaDb::new();
        for (block, view, version, fresh) in [
            ("cpu", "schematic", 1, true),
            ("cpu", "schematic", 2, false),
            ("reg", "schematic", 1, true),
            ("cpu", "layout", 1, false),
        ] {
            let id = db.create_oid(Oid::new(block, view, version)).unwrap();
            db.set_prop(id, "uptodate", Value::Bool(fresh)).unwrap();
        }
        let lay = db.resolve(&Oid::new("cpu", "layout", 1)).unwrap();
        db.set_prop(lay, "drc_result", Value::from_atom("bad"))
            .unwrap();
        db
    }

    fn run(db: &MetaDb, q: &str) -> Vec<String> {
        let query: Query = q.parse().unwrap();
        query
            .run(db)
            .into_iter()
            .map(|id| db.oid(id).unwrap().to_string())
            .collect()
    }

    #[test]
    fn view_and_block_terms() {
        let db = sample_db();
        assert_eq!(run(&db, "view=layout"), vec!["cpu,layout,1"]);
        assert_eq!(
            run(&db, "block=cpu view=schematic"),
            vec!["cpu,schematic,1", "cpu,schematic,2"]
        );
    }

    #[test]
    fn version_terms() {
        let db = sample_db();
        assert_eq!(run(&db, "version>=2"), vec!["cpu,schematic,2"]);
        assert_eq!(run(&db, "view=schematic version=1").len(), 2);
        assert_eq!(
            run(&db, "view=schematic version!=1"),
            vec!["cpu,schematic,2"]
        );
        assert_eq!(run(&db, "version<=1").len(), 3);
    }

    #[test]
    fn latest_term() {
        let db = sample_db();
        let latest = run(&db, "view=schematic latest");
        assert_eq!(latest, vec!["cpu,schematic,2", "reg,schematic,1"]);
    }

    #[test]
    fn prop_terms() {
        let db = sample_db();
        assert_eq!(
            run(&db, "prop.uptodate=false"),
            vec!["cpu,schematic,2", "cpu,layout,1"]
        );
        // != also matches objects lacking the property entirely.
        assert_eq!(run(&db, "prop.drc_result!=good").len(), 4);
        assert_eq!(run(&db, "has.drc_result"), vec!["cpu,layout,1"]);
        assert_eq!(
            run(&db, "stale.uptodate"),
            vec!["cpu,schematic,2", "cpu,layout,1"]
        );
    }

    #[test]
    fn indexed_literal_compare_agrees_with_scan() {
        let db = sample_db();
        // `prop.uptodate=false` takes the index-seeded path; combined terms
        // still filter the seeded candidates.
        assert_eq!(
            run(&db, "prop.uptodate=false view=schematic"),
            vec!["cpu,schematic,2"]
        );
        assert_eq!(run(&db, "prop.drc_result=bad latest"), vec!["cpu,layout,1"]);
        // Stringly-stored numbers still hit through loose comparison.
        let mut db2 = MetaDb::new();
        let a = db2.create_oid(Oid::new("x", "v", 1)).unwrap();
        db2.set_prop(a, "n", Value::Str("4".into())).unwrap();
        assert_eq!(run(&db2, "prop.n=4"), vec!["x,v,1"]);
    }

    #[test]
    fn empty_query_matches_everything() {
        let db = sample_db();
        assert_eq!(run(&db, "").len(), 4);
        assert_eq!(run(&db, "   ").len(), 4);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "bogus",
            "version~3",
            "versionx",
            "prop.name",
            "prop.=x",
            "has.",
            "stale.",
            "version=abc",
        ] {
            assert!(bad.parse::<Query>().is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn query_into_configuration() {
        let db = sample_db();
        let q: Query = "stale.uptodate".parse().unwrap();
        let cfg = q.into_configuration(&db, "stale-set");
        assert_eq!(cfg.name(), "stale-set");
        assert_eq!(cfg.oid_count(), 2);
        // Configurations pin the result: freshening an object later does not
        // change the stored set.
        let mut db2 = db.clone();
        let id = db2.resolve(&Oid::new("cpu", "schematic", 2)).unwrap();
        db2.set_prop(id, "uptodate", Value::Bool(true)).unwrap();
        assert_eq!(cfg.oid_count(), 2);
    }
}

//! Append-only operation journal, incremental checkpoints and crash
//! recovery for the meta-database.
//!
//! [`crate::persist::save`] writes a full O(db) text image per snapshot;
//! a busy project server mutates a handful of properties per design event
//! and should not pay for the whole database every time durability is
//! wanted. This module provides the standard snapshot-plus-log discipline:
//!
//! * [`JournalOp`] — a typed op record mirroring every mutating method on
//!   [`MetaDb`] (plus a workspace payload record emitted by the server
//!   layer), referencing OIDs by their stable triplet and links by a
//!   journal-assigned *tag* so records survive arena address reshuffling
//!   across restarts.
//! * [`JournalWriter`] — an append-only line-oriented writer. Each journal
//!   file opens with a versioned header carrying the checkpoint *epoch* it
//!   extends, and each record line carries a sequence number and an FNV-1a
//!   checksum, so a torn tail (the crash case) is detected and cleanly
//!   ignored.
//! * [`recover`] — loads `snapshot + journal tail` and replays the tail
//!   **through the normal [`MetaDb`] API**, so invariants (interned event
//!   bitsets, version chains, the property index, link incidence) are
//!   rebuilt rather than trusted from the file.
//! * [`compact`] — folds `snapshot + tail` into a fresh snapshot at the
//!   next epoch.
//! * [`decode_record`] / [`apply_op`] — the per-record halves of recovery,
//!   exposed so a replication follower can verify and apply a *streamed*
//!   journal tail record-by-record through the same code paths (see
//!   `PROTOCOL.md` §5 for the tail-stream framing).
//!
//! # File format
//!
//! ```text
//! damocles-journal v1 epoch=3 term=2
//! 1b0c2f... 0 create cpu,schematic,2
//! 9ee41a... 1 prop cpu,schematic,2 uptodate b:true
//! 77a0d3... 2 link 5 cpu,HDL_model,1 cpu,schematic,2 derive derive_from outofdate
//! ```
//!
//! Records are `<fnv1a-64 hex> <seq> <op…>`; the checksum covers
//! `"<seq> <op…>"`. Values reuse the `persist` encoding (`b:`/`i:`/`s:`
//! tags, percent-escaping), so anything a snapshot can hold a journal can
//! hold.
//!
//! # Epochs and the crash window
//!
//! A checkpoint writes the snapshot (tagged with a fresh epoch) *before*
//! resetting the journal. If the process dies between the two, the old
//! journal's ops are already folded into the new snapshot; replaying them
//! would corrupt the database. Recovery therefore compares the journal
//! header's epoch with the snapshot's and ignores the tail on mismatch
//! (reported via [`RecoveryReport::stale_journal`]).
//!
//! # Terms and fencing
//!
//! The header also carries a leadership **term**: a fencing number bumped
//! on every failover promotion, never reused. A journal written under
//! term *t* belongs to the leadership reign that wrote it; recovery
//! refuses to mix reigns by requiring the journal's `(epoch, term)` to
//! match the snapshot's (a mismatched term is reported as
//! [`RecoveryReport::stale_journal`], exactly like a stale epoch).
//! Headers predating terms parse as term 1, so pre-failover artifacts
//! stay readable. The server layer enforces the live half of the fence:
//! a deposed leader's appends are refused before they reach this file
//! (see `DESIGN.md` §13).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::db::MetaDb;
use crate::error::MetaError;
use crate::link::{LinkClass, LinkId, LinkKind};
use crate::oid::Oid;
use crate::persist;
use crate::property::Value;
use crate::workspace::Workspace;

/// Journal format version written in every header.
const HEADER_PREFIX: &str = "damocles-journal v1 epoch=";
/// Separator between the epoch and term fields of a header line.
const TERM_INFIX: &str = " term=";
/// Marker line appended to checkpoint snapshots (skipped as a comment by
/// [`persist::load`]).
const EPOCH_COMMENT: &str = "# epoch=";
/// Term marker line appended to checkpoint snapshots, after the epoch
/// marker (also a comment to [`persist::load`]).
const TERM_COMMENT: &str = "# term=";

/// Which end of a link a [`JournalOp::MoveLinkEnd`] re-pointed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovedEnd {
    /// The source / hierarchical-parent end.
    From,
    /// The derived / hierarchical-child end.
    To,
}

impl MovedEnd {
    fn as_keyword(self) -> &'static str {
        match self {
            MovedEnd::From => "from",
            MovedEnd::To => "to",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "from" => Ok(MovedEnd::From),
            "to" => Ok(MovedEnd::To),
            other => Err(format!("bad link end `{other}`")),
        }
    }
}

/// One journaled mutation. Mirrors the mutating surface of [`MetaDb`]
/// (`create_oid`, `delete_oid`, `set_prop`, `remove_prop`, `add_link_with`,
/// `remove_link`, `allow_event`, `set_link_prop`, `remove_link_prop`,
/// `move_link_end`) plus [`JournalOp::Data`] for workspace payloads, which
/// the project server emits on check-in.
///
/// Links are referenced by a journal *tag*: a monotonically increasing
/// 64-bit id assigned when the link is first journaled (either by its
/// `AddLink` op or, for links predating the journal, in image order at
/// attach time — see [`MetaDb::attach_journal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// `create_oid`.
    CreateOid {
        /// The created triplet.
        oid: Oid,
    },
    /// `delete_oid` (incident-link removals are journaled separately,
    /// before this record).
    DeleteOid {
        /// The deleted triplet.
        oid: Oid,
    },
    /// `set_prop`.
    SetProp {
        /// Target object.
        oid: Oid,
        /// Property name.
        name: String,
        /// New value.
        value: Value,
    },
    /// `remove_prop`.
    RemoveProp {
        /// Target object.
        oid: Oid,
        /// Property name.
        name: String,
    },
    /// `add_link_with` (and `add_link`, whose PROPAGATE set is empty).
    AddLink {
        /// Journal tag assigned to the new link.
        tag: u64,
        /// Source end triplet.
        from: Oid,
        /// Destination end triplet.
        to: Oid,
        /// Use or derive.
        class: LinkClass,
        /// The TYPE annotation.
        kind: LinkKind,
        /// The PROPAGATE set at creation.
        propagates: Vec<String>,
    },
    /// `remove_link`.
    RemoveLink {
        /// Tag of the removed link.
        tag: u64,
    },
    /// `allow_event`.
    AllowEvent {
        /// Tag of the link gaining the event.
        tag: u64,
        /// The event name.
        event: String,
    },
    /// `set_link_prop`.
    SetLinkProp {
        /// Tag of the annotated link.
        tag: u64,
        /// Property name.
        name: String,
        /// New value.
        value: Value,
    },
    /// `remove_link_prop`.
    RemoveLinkProp {
        /// Tag of the link.
        tag: u64,
        /// Property name.
        name: String,
    },
    /// `move_link_end`.
    MoveLinkEnd {
        /// Tag of the shifted link.
        tag: u64,
        /// Which end moved.
        end: MovedEnd,
        /// The triplet the end now points at.
        new: Oid,
    },
    /// A workspace payload store (server-level; not a [`MetaDb`] mutation).
    Data {
        /// The object whose payload this is.
        oid: Oid,
        /// The opaque design data.
        payload: Vec<u8>,
    },
    /// A design event accepted into the durable event queue (server-level).
    /// Journals *accepted work*, not database state: recovery re-enqueues
    /// the event instead of applying anything to the image.
    EventQueued {
        /// Queue sequence number, monotonic per project lifetime.
        seq: u64,
        /// Event name.
        event: String,
        /// Travel direction: `up` or `down`.
        direction: String,
        /// `true` when delivery fans out from the target's links instead
        /// of starting at the target itself.
        propagate: bool,
        /// The addressed triplet.
        target: Oid,
        /// Event arguments.
        args: Vec<String>,
        /// Posting user.
        user: String,
    },
    /// The queued event with this sequence number was fully processed.
    EventDone {
        /// Matching [`JournalOp::EventQueued`] sequence number.
        seq: u64,
    },
    /// A tool invocation was dispatched (server-level). Like
    /// [`JournalOp::EventQueued`], this records accepted work: recovery
    /// re-dispatches invocations that never reached a terminal record.
    InvokeQueued {
        /// Invocation id, monotonic per project lifetime.
        id: u64,
        /// Script (tool) name.
        script: String,
        /// Script arguments.
        args: Vec<String>,
        /// Notification-only invocation (no tool run expected).
        notify: bool,
        /// The OID string of the rule site that requested the run.
        origin: String,
        /// The triggering event name.
        event: String,
    },
    /// The invocation completed; its result events were enqueued.
    InvokeCompleted {
        /// Matching [`JournalOp::InvokeQueued`] id.
        id: u64,
    },
    /// The invocation exhausted its retry policy.
    InvokeFailed {
        /// Matching [`JournalOp::InvokeQueued`] id.
        id: u64,
        /// Attempts made before giving up.
        attempts: u64,
        /// Last failure reason.
        reason: String,
    },
}

impl JournalOp {
    /// The line body of this op (no checksum/seq prefix, no newline).
    pub fn encode(&self) -> String {
        use persist::{encode_value, escape};
        match self {
            JournalOp::CreateOid { oid } => format!("create {oid}"),
            JournalOp::DeleteOid { oid } => format!("delete {oid}"),
            JournalOp::SetProp { oid, name, value } => {
                format!("prop {oid} {} {}", escape(name), encode_value(value))
            }
            JournalOp::RemoveProp { oid, name } => {
                format!("unprop {oid} {}", escape(name))
            }
            JournalOp::AddLink {
                tag,
                from,
                to,
                class,
                kind,
                propagates,
            } => {
                let events = if propagates.is_empty() {
                    "-".to_string()
                } else {
                    propagates
                        .iter()
                        .map(|e| escape(e))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "link {tag} {from} {to} {class} {} {events}",
                    escape(kind.as_keyword())
                )
            }
            JournalOp::RemoveLink { tag } => format!("unlink {tag}"),
            JournalOp::AllowEvent { tag, event } => {
                format!("allow {tag} {}", escape(event))
            }
            JournalOp::SetLinkProp { tag, name, value } => {
                format!("lprop {tag} {} {}", escape(name), encode_value(value))
            }
            JournalOp::RemoveLinkProp { tag, name } => {
                format!("unlprop {tag} {}", escape(name))
            }
            JournalOp::MoveLinkEnd { tag, end, new } => {
                format!("move {tag} {} {new}", end.as_keyword())
            }
            JournalOp::Data { oid, payload } => {
                format!("data {oid} {}", persist::encode_hex(payload))
            }
            JournalOp::EventQueued {
                seq,
                event,
                direction,
                propagate,
                target,
                args,
                user,
            } => {
                let mut s = format!(
                    "evq {seq} {} {direction} {} {target} {}",
                    escape(event),
                    if *propagate { "fan" } else { "at" },
                    args.len()
                );
                for arg in args {
                    s.push(' ');
                    s.push_str(&escape(arg));
                }
                s.push(' ');
                s.push_str(&escape(user));
                s
            }
            JournalOp::EventDone { seq } => format!("evdone {seq}"),
            JournalOp::InvokeQueued {
                id,
                script,
                args,
                notify,
                origin,
                event,
            } => {
                let mut s = format!("invq {id} {} {}", escape(script), args.len());
                for arg in args {
                    s.push(' ');
                    s.push_str(&escape(arg));
                }
                s.push_str(&format!(
                    " {} {} {}",
                    if *notify { 1 } else { 0 },
                    escape(origin),
                    escape(event)
                ));
                s
            }
            JournalOp::InvokeCompleted { id } => format!("invdone {id}"),
            JournalOp::InvokeFailed {
                id,
                attempts,
                reason,
            } => {
                format!("invfail {id} {attempts} {}", escape(reason))
            }
        }
    }

    /// Parses a line body produced by [`JournalOp::encode`].
    ///
    /// # Errors
    ///
    /// A human-readable reason on any grammar violation.
    pub fn decode(s: &str) -> Result<JournalOp, String> {
        use persist::{decode_value, unescape};
        let mut words = s.split(' ');
        let opcode = words.next().ok_or("empty op")?;
        let mut next = |what: &str| words.next().ok_or(format!("missing {what}"));
        let parse_oid = |w: &str| w.parse::<Oid>().map_err(|e| e.to_string());
        let parse_tag = |w: &str| w.parse::<u64>().map_err(|_| format!("bad tag `{w}`"));
        let parse_num = |w: &str| w.parse::<u64>().map_err(|_| format!("bad number `{w}`"));
        let op = match opcode {
            "create" => JournalOp::CreateOid {
                oid: parse_oid(next("oid")?)?,
            },
            "delete" => JournalOp::DeleteOid {
                oid: parse_oid(next("oid")?)?,
            },
            "prop" => JournalOp::SetProp {
                oid: parse_oid(next("oid")?)?,
                name: unescape(next("name")?)?,
                value: decode_value(next("value")?)?,
            },
            "unprop" => JournalOp::RemoveProp {
                oid: parse_oid(next("oid")?)?,
                name: unescape(next("name")?)?,
            },
            "link" => {
                let tag = parse_tag(next("tag")?)?;
                let from = parse_oid(next("from")?)?;
                let to = parse_oid(next("to")?)?;
                let class = match next("class")? {
                    "use" => LinkClass::Use,
                    "derive" => LinkClass::Derive,
                    other => return Err(format!("unknown link class `{other}`")),
                };
                let kind: LinkKind = unescape(next("kind")?)?
                    .parse()
                    .expect("LinkKind::from_str is infallible");
                let propagates_word = next("propagates")?;
                let propagates: Vec<String> = if propagates_word == "-" {
                    Vec::new()
                } else {
                    propagates_word
                        .split(',')
                        .map(unescape)
                        .collect::<Result<_, _>>()?
                };
                JournalOp::AddLink {
                    tag,
                    from,
                    to,
                    class,
                    kind,
                    propagates,
                }
            }
            "unlink" => JournalOp::RemoveLink {
                tag: parse_tag(next("tag")?)?,
            },
            "allow" => JournalOp::AllowEvent {
                tag: parse_tag(next("tag")?)?,
                event: unescape(next("event")?)?,
            },
            "lprop" => JournalOp::SetLinkProp {
                tag: parse_tag(next("tag")?)?,
                name: unescape(next("name")?)?,
                value: decode_value(next("value")?)?,
            },
            "unlprop" => JournalOp::RemoveLinkProp {
                tag: parse_tag(next("tag")?)?,
                name: unescape(next("name")?)?,
            },
            "move" => JournalOp::MoveLinkEnd {
                tag: parse_tag(next("tag")?)?,
                end: MovedEnd::parse(next("end")?)?,
                new: parse_oid(next("new")?)?,
            },
            "data" => {
                let oid = parse_oid(next("oid")?)?;
                let payload = persist::decode_hex(words.next().unwrap_or(""))?;
                JournalOp::Data { oid, payload }
            }
            "evq" => {
                let seq = parse_num(next("seq")?)?;
                let event = unescape(next("event")?)?;
                let direction = match next("direction")? {
                    d @ ("up" | "down") => d.to_string(),
                    other => return Err(format!("bad direction `{other}`")),
                };
                let propagate = match next("delivery mode")? {
                    "fan" => true,
                    "at" => false,
                    other => return Err(format!("bad delivery mode `{other}`")),
                };
                let target = parse_oid(next("target")?)?;
                let count = parse_num(next("arg count")?)?;
                let mut args = Vec::new();
                for _ in 0..count {
                    args.push(unescape(next("arg")?)?);
                }
                let user = unescape(next("user")?)?;
                JournalOp::EventQueued {
                    seq,
                    event,
                    direction,
                    propagate,
                    target,
                    args,
                    user,
                }
            }
            "evdone" => JournalOp::EventDone {
                seq: parse_num(next("seq")?)?,
            },
            "invq" => {
                let id = parse_num(next("id")?)?;
                let script = unescape(next("script")?)?;
                let count = parse_num(next("arg count")?)?;
                let mut args = Vec::new();
                for _ in 0..count {
                    args.push(unescape(next("arg")?)?);
                }
                let notify = match next("notify flag")? {
                    "1" => true,
                    "0" => false,
                    other => return Err(format!("bad notify flag `{other}`")),
                };
                let origin = unescape(next("origin")?)?;
                let event = unescape(next("event")?)?;
                JournalOp::InvokeQueued {
                    id,
                    script,
                    args,
                    notify,
                    origin,
                    event,
                }
            }
            "invdone" => JournalOp::InvokeCompleted {
                id: parse_num(next("id")?)?,
            },
            "invfail" => JournalOp::InvokeFailed {
                id: parse_num(next("id")?)?,
                attempts: parse_num(next("attempts")?)?,
                reason: unescape(next("reason")?)?,
            },
            other => return Err(format!("unknown op `{other}`")),
        };
        if let Some(extra) = words.next() {
            return Err(format!("trailing token `{extra}`"));
        }
        Ok(op)
    }
}

/// The in-database op buffer and link-tag allocator behind
/// [`MetaDb::attach_journal`]. Mutators push ops here; the owner drains
/// them into a [`JournalWriter`].
#[derive(Debug, Clone, Default)]
pub struct JournalRecorder {
    ops: Vec<JournalOp>,
    tags: HashMap<LinkId, u64>,
    next_tag: u64,
}

impl JournalRecorder {
    pub(crate) fn record(&mut self, op: JournalOp) {
        self.ops.push(op);
    }

    pub(crate) fn assign_tag(&mut self, id: LinkId) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.tags.insert(id, tag);
        tag
    }

    pub(crate) fn release_tag(&mut self, id: LinkId) -> u64 {
        self.tags
            .remove(&id)
            .expect("every live link has a journal tag")
    }

    pub(crate) fn tag_of(&self, id: LinkId) -> u64 {
        *self
            .tags
            .get(&id)
            .expect("every live link has a journal tag")
    }

    pub(crate) fn drain(&mut self) -> Vec<JournalOp> {
        std::mem::take(&mut self.ops)
    }

    pub(crate) fn backlog(&self) -> usize {
        self.ops.len()
    }
}

/// Errors produced by journal encoding, I/O, and recovery.
#[derive(Debug)]
pub enum JournalError {
    /// File-system failure.
    Io(std::io::Error),
    /// A complete journal header line that is not this version's header.
    BadHeader {
        /// The line found instead.
        found: String,
    },
    /// A record before the final one failed its checksum, sequence or
    /// grammar check — damage truncation cannot explain.
    Corrupt {
        /// 1-based line number in the journal file.
        line: usize,
        /// What failed.
        reason: String,
    },
    /// A well-formed record could not be replayed against the database —
    /// the journal does not belong to this snapshot.
    Replay {
        /// Sequence number of the failing op.
        seq: u64,
        /// Why replay failed.
        reason: String,
    },
    /// The snapshot image itself failed to load.
    Snapshot(MetaError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader { found } => {
                write!(f, "not a damocles journal (header `{found}`)")
            }
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::Replay { seq, reason } => {
                write!(f, "journal op {seq} failed to replay: {reason}")
            }
            JournalError::Snapshot(e) => write!(f, "snapshot failed to load: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// FNV-1a 64 over a record body — the per-record checksum. Standard
/// offset basis and prime (`0x100000001b3`), matching
/// `workspace::fnv1a`, so external tools computing real FNV-1a-64 over
/// `"<seq> <op…>"` reproduce these checksums.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Renders one journal record line (with trailing newline).
///
/// The record grammar is `<fnv1a-64 hex> <seq> <op…>`; the checksum covers
/// `"<seq> <op…>"`. [`decode_record`] is the inverse.
///
/// ```
/// use damocles_meta::journal::{decode_record, encode_record, JournalOp};
/// use damocles_meta::Oid;
///
/// let op = JournalOp::CreateOid { oid: Oid::new("cpu", "schematic", 2) };
/// let line = encode_record(7, &op);
/// assert!(line.ends_with('\n'));
/// assert_eq!(decode_record(line.trim_end(), 7), Ok(op));
/// ```
pub fn encode_record(seq: u64, op: &JournalOp) -> String {
    let body = op.encode();
    let payload = format!("{seq} {body}");
    format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()))
}

/// Renders the journal header line for `epoch` under leadership `term`
/// (with trailing newline).
pub fn encode_header(epoch: u64, term: u64) -> String {
    format!("{HEADER_PREFIX}{epoch}{TERM_INFIX}{term}\n")
}

/// Whether an incomplete final line could be a truncation artifact of a
/// valid header: a strict prefix of
/// `damocles-journal v1 epoch=<digits> term=<digits>` (the term suffix
/// is optional — pre-term headers stop after the epoch digits).
fn is_torn_header(h: &str) -> bool {
    match h.strip_prefix(HEADER_PREFIX) {
        Some(rest) => {
            let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
            let after = &rest[digits..];
            after.is_empty()
                || (digits > 0
                    && (TERM_INFIX.starts_with(after)
                        || after
                            .strip_prefix(TERM_INFIX)
                            .is_some_and(|t| t.bytes().all(|b| b.is_ascii_digit()))))
        }
        None => HEADER_PREFIX.starts_with(h),
    }
}

/// Parses a complete header line into `(epoch, term)`. Headers written
/// before terms existed carry no ` term=` field and parse as term 1.
fn parse_header_fields(h: &str) -> Option<(u64, u64)> {
    let rest = h.strip_prefix(HEADER_PREFIX)?;
    match rest.split_once(TERM_INFIX) {
        Some((epoch, term)) => Some((epoch.parse().ok()?, term.parse().ok()?)),
        None => Some((rest.parse().ok()?, 1)),
    }
}

/// Parses one journal record line (no trailing newline): verifies the
/// FNV-1a checksum, checks the sequence number against `expected_seq`,
/// and decodes the op body. The exact inverse of [`encode_record`] —
/// replication tailers use it to verify streamed records before applying
/// them.
///
/// # Errors
///
/// A human-readable reason on checksum mismatch, sequence gap, or a
/// malformed op body.
///
/// ```
/// use damocles_meta::journal::{decode_record, encode_record, JournalOp};
/// use damocles_meta::{Oid, Value};
///
/// let op = JournalOp::SetProp {
///     oid: Oid::new("cpu", "schematic", 2),
///     name: "uptodate".into(),
///     value: Value::Bool(false),
/// };
/// let line = encode_record(0, &op);
/// // A flipped byte fails the checksum; a wrong sequence is a gap.
/// assert!(decode_record(&line.replace("cpu", "gpu"), 0).is_err());
/// assert!(decode_record(line.trim_end(), 1).unwrap_err().contains("sequence"));
/// assert_eq!(decode_record(line.trim_end(), 0), Ok(op));
/// ```
pub fn decode_record(line: &str, expected_seq: u64) -> Result<JournalOp, String> {
    parse_record(line.trim_end_matches(['\r', '\n']), expected_seq)
}

fn parse_record(line: &str, expected_seq: u64) -> Result<JournalOp, String> {
    let (checksum, payload) = line
        .split_once(' ')
        .ok_or_else(|| "record missing checksum".to_string())?;
    let checksum =
        u64::from_str_radix(checksum, 16).map_err(|_| format!("bad checksum `{checksum}`"))?;
    if checksum != fnv1a(payload.as_bytes()) {
        return Err("checksum mismatch".to_string());
    }
    let (seq, body) = payload
        .split_once(' ')
        .ok_or_else(|| "record missing sequence number".to_string())?;
    let seq: u64 = seq.parse().map_err(|_| format!("bad sequence `{seq}`"))?;
    if seq != expected_seq {
        return Err(format!(
            "sequence gap: expected {expected_seq}, found {seq}"
        ));
    }
    JournalOp::decode(body)
}

/// A parsed journal file: its epoch, the valid op prefix, and whether the
/// tail was torn (the crash artifact — a final partial record).
#[derive(Debug, Clone, Default)]
pub struct JournalTail {
    /// Epoch from the header; `None` when even the header was torn.
    pub epoch: Option<u64>,
    /// Leadership term from the header (1 for pre-term headers); `None`
    /// when even the header was torn.
    pub term: Option<u64>,
    /// Ops of the valid prefix, in sequence order.
    pub ops: Vec<JournalOp>,
    /// Why parsing stopped early, if it did.
    pub torn: Option<String>,
}

/// Parses journal bytes into the valid op prefix.
///
/// A failure on the **final** record (or a partial header) is the signature
/// of a torn write and is reported via [`JournalTail::torn`], not an error;
/// a failure followed by further records is corruption and errors.
///
/// # Errors
///
/// [`JournalError::BadHeader`] for a complete-but-foreign header line,
/// [`JournalError::Corrupt`] for mid-file damage.
pub fn parse_journal(bytes: &[u8]) -> Result<JournalTail, JournalError> {
    let mut tail = JournalTail::default();
    // Split into complete lines; a trailing fragment without '\n' is kept as
    // a (possibly torn) final line.
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    if let Some(last) = lines.last() {
        if last.is_empty() {
            lines.pop();
        }
    }
    let Some((header_bytes, records)) = lines.split_first() else {
        tail.torn = Some("empty journal".to_string());
        return Ok(tail);
    };
    let header_complete = bytes.len() > header_bytes.len(); // a '\n' follows
    match std::str::from_utf8(header_bytes) {
        Ok(h) if header_complete => match parse_header_fields(h) {
            Some((epoch, term)) => {
                tail.epoch = Some(epoch);
                tail.term = Some(term);
            }
            None => {
                return Err(JournalError::BadHeader {
                    found: h.to_string(),
                })
            }
        },
        // No newline yet: a crash mid-header-write leaves a strict prefix
        // of "damocles-journal v1 epoch=<digits>" — torn, not foreign.
        Ok(h) if is_torn_header(h) => {
            tail.torn = Some("torn header".to_string());
            return Ok(tail);
        }
        Ok(h) => {
            return Err(JournalError::BadHeader {
                found: h.to_string(),
            })
        }
        Err(_) => {
            tail.torn = Some("torn header (invalid UTF-8)".to_string());
            return Ok(tail);
        }
    }

    // Truncation can only damage the final line, and only by cutting it
    // short of its newline. A complete (newline-terminated) record that
    // fails its checks is corruption wherever it sits.
    let final_line_incomplete = !bytes.ends_with(b"\n");
    for (i, raw) in records.iter().enumerate() {
        let last = i + 1 == records.len();
        let parsed = std::str::from_utf8(raw)
            .map_err(|_| "invalid UTF-8".to_string())
            .and_then(|line| parse_record(line.trim_end_matches('\r'), tail.ops.len() as u64));
        match parsed {
            Ok(op) => tail.ops.push(op),
            Err(reason) if last && final_line_incomplete => {
                tail.torn = Some(reason);
                return Ok(tail);
            }
            Err(reason) => {
                return Err(JournalError::Corrupt {
                    line: i + 2, // 1-based, after the header line
                    reason,
                });
            }
        }
    }
    Ok(tail)
}

/// Append-only journal file writer.
///
/// Created fresh (never appended across restarts — recovery folds the old
/// journal into a checkpoint and starts a new one, so every writer owns its
/// file's whole record space from sequence 0).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    epoch: u64,
    term: u64,
    seq: u64,
}

impl JournalWriter {
    /// Creates (atomically: tmp + rename) a fresh journal at `path` for
    /// `epoch` under leadership `term`, truncating any previous file.
    ///
    /// # Errors
    ///
    /// File-system errors.
    pub fn create(path: impl AsRef<Path>, epoch: u64, term: u64) -> Result<Self, std::io::Error> {
        let path = path.as_ref().to_path_buf();
        let tmp = tmp_sibling(&path);
        let mut file = File::create(&tmp)?;
        file.write_all(encode_header(epoch, term).as_bytes())?;
        file.sync_all()?;
        fs::rename(&tmp, &path)?;
        sync_parent_dir(&path)?;
        Ok(JournalWriter {
            file,
            path,
            epoch,
            term,
            seq: 0,
        })
    }

    /// Appends one op record, returning its sequence number. Buffered by
    /// the OS until [`JournalWriter::sync`].
    ///
    /// # Errors
    ///
    /// File-system errors.
    pub fn append(&mut self, op: &JournalOp) -> Result<u64, std::io::Error> {
        let seq = self.seq;
        self.file.write_all(encode_record(seq, op).as_bytes())?;
        self.seq += 1;
        Ok(seq)
    }

    /// Forces appended records to stable storage.
    ///
    /// # Errors
    ///
    /// File-system errors.
    pub fn sync(&mut self) -> Result<(), std::io::Error> {
        self.file.sync_data()
    }

    /// Records appended so far (== the next sequence number).
    pub fn record_count(&self) -> u64 {
        self.seq
    }

    /// The epoch in this journal's header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The leadership term in this journal's header.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Makes a just-performed rename durable: on POSIX, a rename is not on
/// stable storage until the parent directory is fsynced. Best-effort on
/// platforms where directories cannot be opened/fsynced.
fn sync_parent_dir(path: &Path) -> Result<(), std::io::Error> {
    #[cfg(unix)]
    {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent)?.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// Writes a checkpoint snapshot image: the [`persist::save_project`] text
/// (database + workspace payloads) plus epoch and term marker lines that
/// [`recover`] matches against the journal header.
pub fn write_snapshot(db: &MetaDb, workspace: &Workspace, epoch: u64, term: u64) -> String {
    let mut image = persist::save_project(db, workspace);
    image.push_str(&format!("{EPOCH_COMMENT}{epoch}\n{TERM_COMMENT}{term}\n"));
    image
}

/// The epoch marker of a snapshot image (0 for plain [`persist::save`]
/// images without one).
pub fn snapshot_epoch(image: &str) -> u64 {
    image
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix(EPOCH_COMMENT))
        .and_then(|e| e.trim().parse().ok())
        .unwrap_or(0)
}

/// The leadership-term marker of a snapshot image (1 for images written
/// before terms existed, matching the pre-term journal-header default).
pub fn snapshot_term(image: &str) -> u64 {
    image
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix(TERM_COMMENT))
        .and_then(|t| t.trim().parse().ok())
        .unwrap_or(1)
}

/// Writes `content` to `path` atomically (tmp sibling + fsync + rename).
///
/// # Errors
///
/// File-system errors.
pub fn write_file_atomic(path: impl AsRef<Path>, content: &str) -> Result<(), std::io::Error> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let mut file = File::create(&tmp)?;
    file.write_all(content.as_bytes())?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// What [`recover`] produced.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt database (journal detached; the caller re-attaches /
    /// re-checkpoints as appropriate).
    pub db: MetaDb,
    /// The rebuilt workspace (payloads from the snapshot and `data` ops).
    pub workspace: Workspace,
    /// What happened during recovery.
    pub report: RecoveryReport,
    /// Accepted-but-unfinished work the journal recorded: unprocessed
    /// events and in-flight invocations for the server layer to
    /// re-dispatch.
    pub pending: PendingWork,
}

/// Work-queue records of a journal that never reached their terminal
/// record: [`JournalOp::EventQueued`] without a matching
/// [`JournalOp::EventDone`], and [`JournalOp::InvokeQueued`] without a
/// matching [`JournalOp::InvokeCompleted`] / [`JournalOp::InvokeFailed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PendingWork {
    /// Unprocessed [`JournalOp::EventQueued`] ops, in queue order.
    pub events: Vec<JournalOp>,
    /// In-flight [`JournalOp::InvokeQueued`] ops, in dispatch order.
    pub invocations: Vec<JournalOp>,
    /// The next free event-queue sequence number (max seen + 1).
    pub next_event_seq: u64,
    /// The next free invocation id (max seen + 1).
    pub next_invoke_id: u64,
}

impl PendingWork {
    /// Whether any accepted work is still outstanding.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.invocations.is_empty()
    }
}

/// Scans a journal's op stream for accepted-but-unfinished work. Both
/// sets come back in journal (= acceptance) order, which is the order the
/// server must re-dispatch them in.
///
/// Unlike database mutations, work-queue records have **no snapshot
/// representation** — the journal is their only durable home — so this
/// scan is meaningful even on a stale journal (crash between checkpoint
/// snapshot and journal reset): the mutations are folded into the
/// snapshot, but the pending set is still exactly what this scan yields.
pub fn pending_work(ops: &[JournalOp]) -> PendingWork {
    let mut out = PendingWork::default();
    let mut done_events = BTreeSet::new();
    let mut done_invokes = BTreeSet::new();
    for op in ops {
        match op {
            JournalOp::EventQueued { seq, .. } => {
                out.next_event_seq = out.next_event_seq.max(seq + 1);
            }
            JournalOp::EventDone { seq } => {
                done_events.insert(*seq);
            }
            JournalOp::InvokeQueued { id, .. } => {
                out.next_invoke_id = out.next_invoke_id.max(id + 1);
            }
            JournalOp::InvokeCompleted { id } | JournalOp::InvokeFailed { id, .. } => {
                done_invokes.insert(*id);
            }
            _ => {}
        }
    }
    for op in ops {
        match op {
            JournalOp::EventQueued { seq, .. } if !done_events.contains(seq) => {
                out.events.push(op.clone());
            }
            JournalOp::InvokeQueued { id, .. } if !done_invokes.contains(id) => {
                out.invocations.push(op.clone());
            }
            _ => {}
        }
    }
    out
}

/// Diagnostics from a [`recover`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The snapshot's epoch.
    pub epoch: u64,
    /// The snapshot's leadership term (1 for pre-term images).
    pub term: u64,
    /// Live objects restored from the snapshot alone.
    pub snapshot_oids: usize,
    /// Journal ops replayed on top of the snapshot.
    pub replayed_ops: usize,
    /// Why the journal's tail was cut short (torn final record), if it was.
    pub torn_tail: Option<String>,
    /// The journal belonged to an older checkpoint epoch or a different
    /// leadership term and was ignored (a stale epoch's ops are already
    /// folded into the snapshot; a stale term's belong to a deposed
    /// leader and must never be applied).
    pub stale_journal: bool,
}

/// Rebuilds database + workspace from a snapshot image and journal bytes.
///
/// The journal's valid op prefix is replayed through the normal [`MetaDb`]
/// API — `create_oid`, `set_prop`, `add_link_with`, … — so every derived
/// structure (version chains, the view index, interned event bitsets, the
/// property index) is rebuilt by the same code paths that built it the
/// first time. A torn final record (the crash artifact) is ignored and
/// reported; damage anywhere else is a structured error, never a panic or
/// a half-applied database.
///
/// # Errors
///
/// [`JournalError::Snapshot`] when the snapshot fails to load;
/// [`JournalError::BadHeader`] / [`JournalError::Corrupt`] for journal
/// damage truncation cannot explain; [`JournalError::Replay`] when a valid
/// record does not apply (the journal belongs to a different snapshot).
pub fn recover(snapshot: &str, journal: &[u8]) -> Result<Recovered, JournalError> {
    recover_until(snapshot, journal, None)
}

/// [`recover`], stopped at a journal cursor: replays only the first
/// `limit` ops of the journal's valid prefix, reconstructing exactly the
/// image the database had when record `limit` was the next to be written
/// — the unit step of time-travel replay (`limit = Some(0)` is the
/// snapshot alone, `None` is a full recovery).
///
/// Pending-work scanning honors the same cut: work accepted after the
/// cursor does not exist yet at that point in time.
///
/// # Errors
///
/// Everything [`recover`] reports, plus [`JournalError::Corrupt`] when
/// `limit` exceeds the journal's valid op count — the cursor names a
/// point this journal never reached.
pub fn recover_until(
    snapshot: &str,
    journal: &[u8],
    limit: Option<u64>,
) -> Result<Recovered, JournalError> {
    let (mut db, mut workspace) =
        persist::load_project(snapshot).map_err(JournalError::Snapshot)?;
    let mut report = RecoveryReport {
        epoch: snapshot_epoch(snapshot),
        term: snapshot_term(snapshot),
        snapshot_oids: db.oid_count(),
        ..Default::default()
    };

    let mut tail = parse_journal(journal)?;
    if let Some(limit) = limit {
        let available = tail.ops.len() as u64;
        if limit > available {
            return Err(JournalError::Corrupt {
                line: 0,
                reason: format!(
                    "replay cursor seq {limit} is beyond the journal's {available} valid op(s)"
                ),
            });
        }
        tail.ops.truncate(limit as usize);
    }
    // The tail extends this snapshot only when BOTH coordinates match:
    // a stale epoch's ops are already folded in; a stale (or future)
    // term's were written by a different leadership reign.
    let replay = match (tail.epoch, tail.term) {
        (Some(e), Some(t)) if e == report.epoch && t == report.term => true,
        (Some(_), _) => {
            report.stale_journal = true;
            false
        }
        _ => false, // torn header: no usable tail
    };
    report.torn_tail = tail.torn;

    if replay {
        // Tag map: links already in the snapshot get tags in image order —
        // the same assignment MetaDb::attach_journal made after the
        // checkpoint that wrote this snapshot.
        let mut tags: HashMap<u64, LinkId> = db
            .links_in_image_order()
            .into_iter()
            .enumerate()
            .map(|(i, id)| (i as u64, id))
            .collect();
        for (i, op) in tail.ops.iter().enumerate() {
            apply_op(&mut db, &mut workspace, &mut tags, op).map_err(|reason| {
                JournalError::Replay {
                    seq: i as u64,
                    reason,
                }
            })?;
            report.replayed_ops += 1;
        }
    }

    // Pending work is scanned regardless of `replay`: a stale journal's
    // *mutations* are already folded into the snapshot, but its work-queue
    // records are the only durable record of accepted-but-unfinished work.
    let pending = pending_work(&tail.ops);

    Ok(Recovered {
        db,
        workspace,
        report,
        pending,
    })
}

/// Applies one op to a live database + workspace through the normal
/// [`MetaDb`] API, so every derived structure (version chains, indices,
/// interned event bitsets) is rebuilt by the same code paths that built it
/// on the leader. `tags` is the replay-side journal-tag map (tag →
/// [`LinkId`]); seed it from [`MetaDb::links_in_image_order`] after
/// adopting a snapshot, exactly as [`recover`] does, and let this function
/// maintain it across `AddLink`/`RemoveLink` ops.
///
/// This is the unit step of both [`recover`] and a replication follower
/// applying a streamed journal tail.
///
/// # Errors
///
/// A human-readable reason when the op does not apply (unknown OID or
/// tag, duplicate creation, …) — the op stream does not belong to this
/// database image.
pub fn apply_op(
    db: &mut MetaDb,
    workspace: &mut Workspace,
    tags: &mut HashMap<u64, LinkId>,
    op: &JournalOp,
) -> Result<(), String> {
    let meta = |e: MetaError| e.to_string();
    let resolve_tag = |tags: &HashMap<u64, LinkId>, tag: u64| {
        tags.get(&tag)
            .copied()
            .ok_or_else(|| format!("unknown link tag {tag}"))
    };
    match op {
        JournalOp::CreateOid { oid } => {
            db.create_oid(oid.clone()).map_err(meta)?;
        }
        JournalOp::DeleteOid { oid } => {
            let id = db.require(oid).map_err(meta)?;
            // The delete's incident-link unlinks were journaled before this
            // record, so no tags dangle here; any remaining incident link
            // would indicate a foreign journal and fails below on its tag.
            db.delete_oid(id).map_err(meta)?;
        }
        JournalOp::SetProp { oid, name, value } => {
            let id = db.require(oid).map_err(meta)?;
            db.set_prop(id, name, value.clone()).map_err(meta)?;
        }
        JournalOp::RemoveProp { oid, name } => {
            let id = db.require(oid).map_err(meta)?;
            db.remove_prop(id, name).map_err(meta)?;
        }
        JournalOp::AddLink {
            tag,
            from,
            to,
            class,
            kind,
            propagates,
        } => {
            if tags.contains_key(tag) {
                return Err(format!("duplicate link tag {tag}"));
            }
            let from_id = db.require(from).map_err(meta)?;
            let to_id = db.require(to).map_err(meta)?;
            let id = db
                .add_link_with(from_id, to_id, *class, kind.clone(), propagates.clone())
                .map_err(meta)?;
            tags.insert(*tag, id);
        }
        JournalOp::RemoveLink { tag } => {
            let id = resolve_tag(tags, *tag)?;
            db.remove_link(id).map_err(meta)?;
            tags.remove(tag);
        }
        JournalOp::AllowEvent { tag, event } => {
            let id = resolve_tag(tags, *tag)?;
            db.allow_event(id, event).map_err(meta)?;
        }
        JournalOp::SetLinkProp { tag, name, value } => {
            let id = resolve_tag(tags, *tag)?;
            db.set_link_prop(id, name, value.clone()).map_err(meta)?;
        }
        JournalOp::RemoveLinkProp { tag, name } => {
            let id = resolve_tag(tags, *tag)?;
            db.remove_link_prop(id, name).map_err(meta)?;
        }
        JournalOp::MoveLinkEnd { tag, end, new } => {
            let link_id = resolve_tag(tags, *tag)?;
            let link = db.link(link_id).map_err(meta)?;
            let old = match end {
                MovedEnd::From => link.from,
                MovedEnd::To => link.to,
            };
            let new_id = db.require(new).map_err(meta)?;
            db.move_link_end(link_id, old, new_id).map_err(meta)?;
        }
        JournalOp::Data { oid, payload } => {
            let id = db.require(oid).map_err(meta)?;
            workspace.store(id, payload.clone());
        }
        // Work-queue records journal *accepted work*, not database state.
        // Recovery re-dispatches them via [`pending_work`]; applying them
        // to an image is deliberately a no-op, so replication followers
        // streaming the leader's journal skip them transparently.
        JournalOp::EventQueued { .. }
        | JournalOp::EventDone { .. }
        | JournalOp::InvokeQueued { .. }
        | JournalOp::InvokeCompleted { .. }
        | JournalOp::InvokeFailed { .. } => {}
    }
    Ok(())
}

/// Folds `snapshot + journal tail` into a fresh snapshot at the next
/// epoch, under the same leadership term — offline compaction. The
/// live-server equivalent is `ProjectServer::checkpoint`.
///
/// # Errors
///
/// As [`recover`].
pub fn compact(snapshot: &str, journal: &[u8]) -> Result<(String, RecoveryReport), JournalError> {
    let recovered = recover(snapshot, journal)?;
    let next_epoch = recovered.report.epoch + 1;
    Ok((
        write_snapshot(
            &recovered.db,
            &recovered.workspace,
            next_epoch,
            recovered.report.term,
        ),
        recovered.report,
    ))
}

/// Replays a journaled op stream against an **empty** database and
/// workspace — the degenerate `recover` with an empty snapshot, used by
/// tests and tools that treat a journal as a self-contained op script.
///
/// # Errors
///
/// [`JournalError::Replay`] when an op does not apply.
pub fn replay_ops(ops: &[JournalOp]) -> Result<(MetaDb, Workspace), JournalError> {
    let mut db = MetaDb::new();
    let mut workspace = Workspace::new("replayed");
    let mut tags = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        apply_op(&mut db, &mut workspace, &mut tags, op).map_err(|reason| {
            JournalError::Replay {
                seq: i as u64,
                reason,
            }
        })?;
    }
    Ok((db, workspace))
}

/// A set-valued view of which `(block, view, version)` triplets a journal
/// mentions — handy for audit tooling and tests.
pub fn touched_oids(ops: &[JournalOp]) -> BTreeSet<Oid> {
    let mut out = BTreeSet::new();
    for op in ops {
        match op {
            JournalOp::CreateOid { oid }
            | JournalOp::DeleteOid { oid }
            | JournalOp::SetProp { oid, .. }
            | JournalOp::RemoveProp { oid, .. }
            | JournalOp::Data { oid, .. }
            | JournalOp::MoveLinkEnd { new: oid, .. }
            | JournalOp::EventQueued { target: oid, .. } => {
                out.insert(oid.clone());
            }
            JournalOp::AddLink { from, to, .. } => {
                out.insert(from.clone());
                out.insert(to.clone());
            }
            JournalOp::RemoveLink { .. }
            | JournalOp::AllowEvent { .. }
            | JournalOp::SetLinkProp { .. }
            | JournalOp::RemoveLinkProp { .. }
            | JournalOp::EventDone { .. }
            | JournalOp::InvokeQueued { .. }
            | JournalOp::InvokeCompleted { .. }
            | JournalOp::InvokeFailed { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkClass, LinkKind};

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::CreateOid {
                oid: Oid::new("cpu", "HDL_model", 1),
            },
            JournalOp::CreateOid {
                oid: Oid::new("cpu", "schematic", 1),
            },
            JournalOp::SetProp {
                oid: Oid::new("cpu", "HDL_model", 1),
                name: "sim result".into(),
                value: Value::Str("4 errors\nbad".into()),
            },
            JournalOp::AddLink {
                tag: 0,
                from: Oid::new("cpu", "HDL_model", 1),
                to: Oid::new("cpu", "schematic", 1),
                class: LinkClass::Derive,
                kind: LinkKind::DeriveFrom,
                propagates: vec!["outofdate".into(), "nl sim".into()],
            },
            JournalOp::AllowEvent {
                tag: 0,
                event: "lvs".into(),
            },
            JournalOp::SetLinkProp {
                tag: 0,
                name: "weight".into(),
                value: Value::Int(3),
            },
            JournalOp::MoveLinkEnd {
                tag: 0,
                end: MovedEnd::To,
                new: Oid::new("cpu", "schematic", 1),
            },
            JournalOp::RemoveLinkProp {
                tag: 0,
                name: "weight".into(),
            },
            JournalOp::RemoveLink { tag: 0 },
            JournalOp::RemoveProp {
                oid: Oid::new("cpu", "HDL_model", 1),
                name: "sim result".into(),
            },
            JournalOp::Data {
                oid: Oid::new("cpu", "HDL_model", 1),
                payload: b"\xff\x00raw".to_vec(),
            },
            JournalOp::DeleteOid {
                oid: Oid::new("cpu", "schematic", 1),
            },
            JournalOp::EventQueued {
                seq: 7,
                event: "hdl sim".into(),
                direction: "up".into(),
                propagate: true,
                target: Oid::new("cpu", "HDL_model", 1),
                args: vec!["logic sim passed".into(), String::new()],
                user: "net 3".into(),
            },
            JournalOp::EventDone { seq: 7 },
            JournalOp::InvokeQueued {
                id: 12,
                script: "simulator".into(),
                args: vec!["cpu,netlist,1".into(), String::new()],
                notify: false,
                origin: "cpu,netlist,1".into(),
                event: "ckin".into(),
            },
            JournalOp::InvokeCompleted { id: 12 },
            JournalOp::InvokeFailed {
                id: 13,
                attempts: 5,
                reason: "simulation crashed\n(timeout)".into(),
            },
        ]
    }

    #[test]
    fn ops_roundtrip_through_text() {
        for op in sample_ops() {
            let encoded = op.encode();
            let decoded = JournalOp::decode(&encoded).unwrap_or_else(|e| {
                panic!("decode failed for `{encoded}`: {e}");
            });
            assert_eq!(decoded, op, "roundtrip for `{encoded}`");
        }
    }

    #[test]
    fn record_checksum_detects_flips() {
        let op = JournalOp::CreateOid {
            oid: Oid::new("cpu", "schematic", 1),
        };
        let line = encode_record(0, &op);
        assert!(parse_record(line.trim_end(), 0).is_ok());
        let flipped = line.trim_end().replace("schematic", "schematiC");
        assert_eq!(
            parse_record(&flipped, 0).unwrap_err(),
            "checksum mismatch".to_string()
        );
        // Wrong expected sequence is also rejected.
        assert!(parse_record(line.trim_end(), 1)
            .unwrap_err()
            .contains("sequence"));
    }

    #[test]
    fn parse_journal_accepts_torn_tail() {
        let mut bytes = encode_header(4, 2).into_bytes();
        let ops = sample_ops();
        bytes.extend_from_slice(encode_record(0, &ops[0]).as_bytes());
        bytes.extend_from_slice(encode_record(1, &ops[1]).as_bytes());
        let full = bytes.clone();
        // A torn final record: keep half of the last line.
        bytes.truncate(full.len() - 7);
        let tail = parse_journal(&bytes).unwrap();
        assert_eq!(tail.epoch, Some(4));
        assert_eq!(tail.term, Some(2));
        assert_eq!(tail.ops.len(), 1);
        assert!(tail.torn.is_some());
        // The untouched journal parses fully.
        let tail = parse_journal(&full).unwrap();
        assert_eq!(tail.ops.len(), 2);
        assert!(tail.torn.is_none());
    }

    #[test]
    fn parse_journal_rejects_midfile_corruption() {
        let mut text = encode_header(0, 1);
        let ops = sample_ops();
        let mut bad = encode_record(0, &ops[0]);
        bad = bad.replace("cpu", "gpu"); // breaks the checksum
        text.push_str(&bad);
        text.push_str(&encode_record(1, &ops[1]));
        assert!(matches!(
            parse_journal(text.as_bytes()),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
    }

    #[test]
    fn complete_final_record_with_bad_checksum_is_corrupt_not_torn() {
        // A newline-terminated final record cannot be a truncation
        // artifact: a bit flip there must error, exactly like mid-file.
        let ops = sample_ops();
        let mut text = encode_header(0, 1);
        text.push_str(&encode_record(0, &ops[0]));
        text.push_str(&encode_record(1, &ops[1]).replace("cpu", "gpu"));
        assert!(text.ends_with('\n'));
        assert!(matches!(
            parse_journal(text.as_bytes()),
            Err(JournalError::Corrupt { line: 3, .. })
        ));
        // The same damage WITHOUT the trailing newline is a torn tail.
        let tail = parse_journal(text.trim_end().as_bytes()).unwrap();
        assert_eq!(tail.ops.len(), 1);
        assert!(tail.torn.is_some());
    }

    #[test]
    fn parse_journal_handles_header_damage() {
        // Torn header: strict prefix of the real one.
        let tail = parse_journal(b"damocles-jour").unwrap();
        assert!(tail.torn.is_some());
        assert!(tail.epoch.is_none());
        assert!(tail.term.is_none());
        // Complete foreign header errors.
        assert!(matches!(
            parse_journal(b"some other file\n"),
            Err(JournalError::BadHeader { .. })
        ));
        // Empty file is a torn (not yet written) journal.
        assert!(parse_journal(b"").unwrap().torn.is_some());
    }

    #[test]
    fn header_term_grammar() {
        // A full header round-trips both coordinates.
        let tail = parse_journal(encode_header(4, 3).as_bytes()).unwrap();
        assert_eq!((tail.epoch, tail.term), (Some(4), Some(3)));
        // A pre-term header parses as term 1.
        let tail = parse_journal(b"damocles-journal v1 epoch=4\n").unwrap();
        assert_eq!((tail.epoch, tail.term), (Some(4), Some(1)));
        // Truncation anywhere inside ` term=<digits>` is torn, not foreign.
        for cut in [
            "epoch=4 ",
            "epoch=4 ter",
            "epoch=4 term=",
            "epoch=4 term=12",
        ] {
            let bytes = format!("damocles-journal v1 {cut}");
            let tail = parse_journal(bytes.as_bytes()).unwrap();
            assert!(tail.torn.is_some(), "`{cut}` should be torn");
            assert!(tail.epoch.is_none());
        }
        // A complete header with a mangled term field is foreign.
        for bad in [
            "damocles-journal v1 epoch=4 tern=2\n",
            "damocles-journal v1 epoch=4 term=x\n",
            "damocles-journal v1 epoch= term=2\n",
        ] {
            assert!(
                matches!(
                    parse_journal(bad.as_bytes()),
                    Err(JournalError::BadHeader { .. })
                ),
                "`{bad}` should be foreign"
            );
        }
    }

    #[test]
    fn replay_rebuilds_state_and_reports_errors() {
        let ops = vec![
            JournalOp::CreateOid {
                oid: Oid::new("a", "v", 1),
            },
            JournalOp::SetProp {
                oid: Oid::new("a", "v", 1),
                name: "x".into(),
                value: Value::Int(1),
            },
        ];
        let (db, _ws) = replay_ops(&ops).unwrap();
        assert_eq!(db.oid_count(), 1);
        // Replaying an op against a missing OID is a structured error.
        let err = replay_ops(&[JournalOp::SetProp {
            oid: Oid::new("ghost", "v", 1),
            name: "x".into(),
            value: Value::Int(1),
        }])
        .unwrap_err();
        assert!(matches!(err, JournalError::Replay { seq: 0, .. }));
    }

    #[test]
    fn snapshot_epoch_roundtrip() {
        let db = MetaDb::new();
        let ws = Workspace::new("w");
        let image = write_snapshot(&db, &ws, 7, 3);
        assert_eq!(snapshot_epoch(&image), 7);
        assert_eq!(snapshot_term(&image), 3);
        // Plain persist images default to epoch 0, term 1 (the pre-term
        // journal-header default, so legacy pairs still match up).
        assert_eq!(snapshot_epoch(&persist::save(&db)), 0);
        assert_eq!(snapshot_term(&persist::save(&db)), 1);
        // The markers are comments: persist::load still accepts the image.
        assert!(persist::load(&image).is_ok());
    }

    #[test]
    fn journal_from_a_different_term_is_stale() {
        let db = MetaDb::new();
        let ws = Workspace::new("w");
        let snapshot = write_snapshot(&db, &ws, 3, 2);
        let op = JournalOp::CreateOid {
            oid: Oid::new("a", "v", 1),
        };
        let journal = |term: u64| {
            let mut j = encode_header(3, term);
            j.push_str(&encode_record(0, &op));
            j
        };
        // Matching (epoch, term): the tail replays.
        let r = recover(&snapshot, journal(2).as_bytes()).unwrap();
        assert_eq!((r.report.term, r.report.replayed_ops), (2, 1));
        assert!(!r.report.stale_journal);
        // A deposed leader's term (older OR newer than the snapshot's)
        // never replays — its reign did not write this snapshot.
        for stale in [1, 3] {
            let r = recover(&snapshot, journal(stale).as_bytes()).unwrap();
            assert!(r.report.stale_journal, "term {stale}");
            assert_eq!(r.report.replayed_ops, 0);
            assert_eq!(r.db.oid_count(), 0);
        }
    }

    #[test]
    fn recover_until_cuts_history_at_the_cursor() {
        let db = MetaDb::new();
        let ws = Workspace::new("w");
        let snapshot = write_snapshot(&db, &ws, 3, 1);
        let ops = [
            JournalOp::CreateOid {
                oid: Oid::new("a", "v", 1),
            },
            JournalOp::CreateOid {
                oid: Oid::new("b", "v", 1),
            },
            JournalOp::SetProp {
                oid: Oid::new("a", "v", 1),
                name: "x".into(),
                value: Value::Int(1),
            },
        ];
        let mut journal = encode_header(3, 1);
        for (seq, op) in ops.iter().enumerate() {
            journal.push_str(&encode_record(seq as u64, op));
        }
        let bytes = journal.as_bytes();
        // Cursor 0 is the snapshot alone; each step adds exactly one op.
        for (limit, oids) in [(0u64, 0usize), (1, 1), (2, 2), (3, 2)] {
            let r = recover_until(&snapshot, bytes, Some(limit)).unwrap();
            assert_eq!(r.db.oid_count(), oids, "cursor {limit}");
        }
        let full = recover_until(&snapshot, bytes, Some(2)).unwrap();
        assert!(full
            .db
            .resolve(&Oid::new("a", "v", 1))
            .map(|id| full.db.get_prop(id, "x").unwrap().is_none())
            .unwrap());
        // None means the whole valid prefix, same as `recover`.
        let all = recover_until(&snapshot, bytes, None).unwrap();
        assert_eq!(all.db.oid_count(), 2);
        // A cursor past the end is a structured error naming the bound.
        let err = recover_until(&snapshot, bytes, Some(4)).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("beyond the journal's 3"), "{err}");
    }

    #[test]
    fn pending_work_is_queued_minus_done() {
        let evq = |seq: u64| JournalOp::EventQueued {
            seq,
            event: "ckin".into(),
            direction: "down".into(),
            propagate: false,
            target: Oid::new("cpu", "HDL_model", 1),
            args: vec![],
            user: "yves".into(),
        };
        let invq = |id: u64| JournalOp::InvokeQueued {
            id,
            script: "drc".into(),
            args: vec!["cpu,layout,1".into()],
            notify: false,
            origin: "cpu,layout,1".into(),
            event: "ckin".into(),
        };
        let ops = vec![
            evq(0),
            JournalOp::EventDone { seq: 0 },
            evq(1),
            invq(0),
            JournalOp::InvokeCompleted { id: 0 },
            invq(1),
            invq(2),
            JournalOp::InvokeFailed {
                id: 2,
                attempts: 3,
                reason: "gave up".into(),
            },
            evq(2),
        ];
        let pending = pending_work(&ops);
        assert_eq!(pending.events, vec![evq(1), evq(2)]);
        assert_eq!(pending.invocations, vec![invq(1)]);
        assert_eq!(pending.next_event_seq, 3);
        assert_eq!(pending.next_invoke_id, 3);
        // Work-queue records are state no-ops: replay accepts them.
        let (db, _ws) = replay_ops(&[
            JournalOp::CreateOid {
                oid: Oid::new("cpu", "HDL_model", 1),
            },
            evq(0),
            invq(0),
            JournalOp::EventDone { seq: 0 },
            JournalOp::InvokeCompleted { id: 0 },
        ])
        .unwrap();
        assert_eq!(db.oid_count(), 1);
    }

    #[test]
    fn touched_oids_collects_endpoints() {
        let ops = sample_ops();
        let touched = touched_oids(&ops);
        assert!(touched.contains(&Oid::new("cpu", "HDL_model", 1)));
        assert!(touched.contains(&Oid::new("cpu", "schematic", 1)));
    }
}

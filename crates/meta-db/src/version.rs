//! Version-chain helpers and the inheritance scheme used for version control.
//!
//! "The meta-data model consist\[s\] of a set of properties associated to each
//! view and the inheritance scheme used for version control" — Section 1. The
//! transfer of properties and links from one version to the next is executed
//! by the BluePrint template engine (in `blueprint-core`); this module
//! provides the chain arithmetic and history inspection it builds on.

use crate::db::{MetaDb, OidId};
use crate::error::MetaError;
use crate::oid::Oid;
use crate::property::Value;

/// Read-only view of one `(block, view)` version chain.
///
/// # Example
///
/// ```
/// use damocles_meta::{MetaDb, Oid, VersionHistory};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// db.create_oid(Oid::new("cpu", "HDL_model", 1))?;
/// db.create_oid(Oid::new("cpu", "HDL_model", 2))?;
/// let history = VersionHistory::of(&db, "cpu", "HDL_model");
/// assert_eq!(history.versions(), vec![1, 2]);
/// assert_eq!(history.next_version(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VersionHistory<'db> {
    db: &'db MetaDb,
    block: String,
    view: String,
}

impl<'db> VersionHistory<'db> {
    /// History of `(block, view)` in `db`. An unknown chain is simply empty.
    pub fn of(db: &'db MetaDb, block: &str, view: &str) -> Self {
        VersionHistory {
            db,
            block: block.to_string(),
            view: view.to_string(),
        }
    }

    /// Sorted live version numbers.
    pub fn versions(&self) -> Vec<u32> {
        self.db.versions(&self.block, &self.view)
    }

    /// The version number a freshly checked-in object should receive: one
    /// past the highest live version, or 1 for a new chain (the paper counts
    /// from 1: `<CPU.HDL_model.1>`).
    pub fn next_version(&self) -> u32 {
        self.versions().last().map_or(1, |&v| v + 1)
    }

    /// Address of the newest version, if the chain is non-empty.
    pub fn latest(&self) -> Option<OidId> {
        self.db.latest_version(&self.block, &self.view)
    }

    /// Addresses of every live version, oldest first.
    pub fn entries(&self) -> Vec<OidId> {
        self.versions()
            .into_iter()
            .filter_map(|v| {
                Oid::try_new(self.block.as_str(), self.view.as_str(), v)
                    .ok()
                    .and_then(|oid| self.db.resolve(&oid))
            })
            .collect()
    }

    /// How a property evolved across the chain: `(version, value)` pairs for
    /// versions where the property is present.
    pub fn property_trail(&self, name: &str) -> Result<Vec<(u32, Value)>, MetaError> {
        let mut trail = Vec::new();
        for id in self.entries() {
            let entry = self.db.entry(id)?;
            if let Some(v) = entry.props.get(name) {
                trail.push((entry.oid.version, v.clone()));
            }
        }
        Ok(trail)
    }

    /// Property names that changed value (or appeared/disappeared) between
    /// the two newest versions. Empty for chains shorter than 2.
    pub fn changed_since_previous(&self) -> Result<Vec<String>, MetaError> {
        let entries = self.entries();
        let [.., prev, last] = entries.as_slice() else {
            return Ok(Vec::new());
        };
        let prev = self.db.entry(*prev)?;
        let last = self.db.entry(*last)?;
        let mut changed = Vec::new();
        for (name, value) in last.props.iter() {
            if prev.props.get(name) != Some(value) {
                changed.push(name.to_string());
            }
        }
        for (name, _) in prev.props.iter() {
            if !last.props.contains(name) {
                changed.push(name.to_string());
            }
        }
        changed.sort();
        changed.dedup();
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_chain() -> MetaDb {
        let mut db = MetaDb::new();
        for v in 1..=3 {
            let id = db.create_oid(Oid::new("cpu", "HDL_model", v)).unwrap();
            db.set_prop(
                id,
                "sim_result",
                Value::from_atom(if v == 3 { "good" } else { "bad" }),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn next_version_counts_from_one() {
        let db = MetaDb::new();
        assert_eq!(
            VersionHistory::of(&db, "cpu", "HDL_model").next_version(),
            1
        );
        let db = db_with_chain();
        assert_eq!(
            VersionHistory::of(&db, "cpu", "HDL_model").next_version(),
            4
        );
    }

    #[test]
    fn entries_oldest_first() {
        let db = db_with_chain();
        let h = VersionHistory::of(&db, "cpu", "HDL_model");
        let versions: Vec<u32> = h
            .entries()
            .iter()
            .map(|&id| db.oid(id).unwrap().version)
            .collect();
        assert_eq!(versions, vec![1, 2, 3]);
    }

    #[test]
    fn property_trail_tracks_evolution() {
        let db = db_with_chain();
        let h = VersionHistory::of(&db, "cpu", "HDL_model");
        let trail = h.property_trail("sim_result").unwrap();
        assert_eq!(
            trail,
            vec![
                (1, Value::Str("bad".into())),
                (2, Value::Str("bad".into())),
                (3, Value::Str("good".into())),
            ]
        );
        assert!(h.property_trail("nonexistent").unwrap().is_empty());
    }

    #[test]
    fn changed_since_previous_detects_diffs() {
        let db = db_with_chain();
        let h = VersionHistory::of(&db, "cpu", "HDL_model");
        assert_eq!(h.changed_since_previous().unwrap(), vec!["sim_result"]);
    }

    #[test]
    fn changed_since_previous_empty_for_short_chain() {
        let mut db = MetaDb::new();
        db.create_oid(Oid::new("x", "v", 1)).unwrap();
        let h = VersionHistory::of(&db, "x", "v");
        assert!(h.changed_since_previous().unwrap().is_empty());
    }

    #[test]
    fn detects_removed_properties() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("x", "v", 1)).unwrap();
        db.set_prop(a, "gone", Value::Bool(true)).unwrap();
        db.create_oid(Oid::new("x", "v", 2)).unwrap();
        let h = VersionHistory::of(&db, "x", "v");
        assert_eq!(h.changed_since_previous().unwrap(), vec!["gone"]);
    }
}

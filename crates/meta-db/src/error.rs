//! Error type shared by all meta-database operations.

use std::fmt;

use crate::link::LinkId;
use crate::oid::Oid;

/// Errors produced by the meta-database and the layers directly above it.
///
/// Every fallible public operation in this crate returns
/// `Result<_, MetaError>`. The variants are deliberately precise so that the
/// run-time engine can distinguish "the OID you targeted does not exist"
/// (a designer error the paper surfaces to the wrapper program) from internal
/// consistency problems.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetaError {
    /// The referenced OID handle is stale (the object was deleted) or was
    /// never issued by this database.
    StaleOid {
        /// Human-readable description of the handle.
        handle: String,
    },
    /// The referenced link handle is stale or foreign.
    StaleLink {
        /// The offending link id.
        link: LinkId,
    },
    /// No object with this block/view/version triplet exists.
    UnknownOid {
        /// The triplet that failed to resolve.
        oid: Oid,
    },
    /// An object with this triplet already exists; OIDs are unique.
    DuplicateOid {
        /// The duplicated triplet.
        oid: Oid,
    },
    /// A version-chain operation referenced a version that does not exist.
    UnknownVersion {
        /// Block name of the chain.
        block: String,
        /// View type of the chain.
        view: String,
        /// The missing version number.
        version: u32,
    },
    /// A link endpoint does not belong to this database.
    ForeignEndpoint,
    /// A self-link was requested; the paper's link classes all relate two
    /// distinct objects.
    SelfLink {
        /// The OID that was both ends.
        oid: Oid,
    },
    /// A workspace operation conflicted with check-out state.
    CheckoutConflict {
        /// The object in conflict.
        oid: Oid,
        /// Who currently holds it, if anyone.
        holder: Option<String>,
    },
    /// A `postEvent` line (Section 3.1 wire format) failed to parse.
    WireParse {
        /// What went wrong.
        reason: String,
        /// The offending input line.
        input: String,
    },
    /// An OID string (`block,view,version`) failed to parse.
    OidParse {
        /// What went wrong.
        reason: String,
        /// The offending input.
        input: String,
    },
    /// A configuration referenced addresses that are no longer valid and the
    /// caller asked for strict resolution.
    StaleConfiguration {
        /// Name of the configuration.
        name: String,
        /// Number of dangling addresses found.
        dangling: usize,
    },
}

impl MetaError {
    /// A compact reason suitable for embedding in another diagnostic
    /// (positioned parse errors quote it after the expectation): parse
    /// variants yield just their reason, everything else the full
    /// rendering.
    pub fn short_reason(&self) -> String {
        match self {
            MetaError::OidParse { reason, .. } | MetaError::WireParse { reason, .. } => {
                reason.clone()
            }
            other => other.to_string(),
        }
    }
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::StaleOid { handle } => {
                write!(f, "stale or foreign OID handle {handle}")
            }
            MetaError::StaleLink { link } => write!(f, "stale or foreign link handle {link:?}"),
            MetaError::UnknownOid { oid } => write!(f, "unknown OID {oid}"),
            MetaError::DuplicateOid { oid } => write!(f, "OID {oid} already exists"),
            MetaError::UnknownVersion {
                block,
                view,
                version,
            } => write!(f, "no version {version} of <{block},{view}>"),
            MetaError::ForeignEndpoint => write!(f, "link endpoint belongs to another database"),
            MetaError::SelfLink { oid } => write!(f, "refusing self-link on {oid}"),
            MetaError::CheckoutConflict { oid, holder } => match holder {
                Some(h) => write!(f, "{oid} is checked out by {h}"),
                None => write!(f, "{oid} is not checked out"),
            },
            MetaError::WireParse { reason, input } => {
                write!(f, "invalid postEvent message `{input}`: {reason}")
            }
            MetaError::OidParse { reason, input } => {
                write!(f, "invalid OID `{input}`: {reason}")
            }
            MetaError::StaleConfiguration { name, dangling } => {
                write!(
                    f,
                    "configuration `{name}` has {dangling} dangling addresses"
                )
            }
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = MetaError::UnknownOid {
            oid: Oid::new("cpu", "schematic", 3),
        };
        let s = e.to_string();
        assert!(s.starts_with("unknown OID"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetaError>();
    }

    #[test]
    fn checkout_conflict_both_forms() {
        let oid = Oid::new("alu", "layout", 1);
        let held = MetaError::CheckoutConflict {
            oid: oid.clone(),
            holder: Some("yves".into()),
        };
        assert!(held.to_string().contains("checked out by yves"));
        let free = MetaError::CheckoutConflict { oid, holder: None };
        assert!(free.to_string().contains("not checked out"));
    }
}

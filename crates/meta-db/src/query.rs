//! Designer-facing project-state queries.
//!
//! "Designers can retrieve the state of the project by performing queries.
//! Therefore, designers know exactly what data still needs to be modified
//! before reaching a planned state in the project." — Section 1.

use std::collections::{BTreeMap, BTreeSet};

use crate::db::{MetaDb, OidId};
use crate::error::MetaError;
use crate::link::Direction;
use crate::oid::Oid;
use crate::property::Value;

/// One blocking item returned by [`ProjectQuery::work_remaining`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// Address of the blocking object.
    pub id: OidId,
    /// Its triplet.
    pub oid: Oid,
    /// The state property that is not satisfied (name, current value).
    pub blocking: (String, Option<Value>),
}

/// Per-view aggregate returned by [`ProjectQuery::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSummary {
    /// The view type.
    pub view: String,
    /// Live objects of this view.
    pub total: usize,
    /// Objects whose `state_prop` is truthy.
    pub satisfied: usize,
    /// Objects lacking the property entirely.
    pub untracked: usize,
}

/// Read-only query facade over a [`MetaDb`].
///
/// # Example
///
/// ```
/// use damocles_meta::{MetaDb, Oid, ProjectQuery, Value};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// let a = db.create_oid(Oid::new("cpu", "schematic", 1))?;
/// db.set_prop(a, "uptodate", Value::Bool(false))?;
/// let stale = ProjectQuery::new(&db).out_of_date("uptodate");
/// assert_eq!(stale, vec![a]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProjectQuery<'db> {
    db: &'db MetaDb,
}

impl<'db> ProjectQuery<'db> {
    /// Creates a query facade.
    pub fn new(db: &'db MetaDb) -> Self {
        ProjectQuery { db }
    }

    /// Objects whose `prop` is present and not truthy — the classic
    /// "what is out of date" query of Section 3.4 (`uptodate == false`).
    pub fn out_of_date(&self, prop: &str) -> Vec<OidId> {
        self.where_prop(prop, |v| !v.is_truthy())
    }

    /// Objects whose `prop` satisfies `pred`, in address order.
    pub fn where_prop(&self, prop: &str, mut pred: impl FnMut(&Value) -> bool) -> Vec<OidId> {
        let mut out: Vec<OidId> = self
            .db
            .iter_oids()
            .filter(|(_, e)| e.props.get(prop).is_some_and(&mut pred))
            .map(|(id, _)| id)
            .collect();
        out.sort();
        out
    }

    /// Objects whose `prop` equals `value` under the rule language's loose
    /// cross-type comparison ([`Value::loose_eq`]), in address order.
    ///
    /// Unlike [`ProjectQuery::where_prop`], this never scans: it is served
    /// from the database's `(property, value)` secondary index in O(hits).
    /// Loose equality admits at most three stored variants — `value`
    /// itself, the string spelling of its canonical atom, and the typed
    /// classification of that atom (a stored `Int(7)` matches a queried
    /// `Str("7")`) — so the lookup is a union of (at most) three probes.
    pub fn where_prop_eq(&self, prop: &str, value: &Value) -> Vec<OidId> {
        let atom = value.as_atom();
        let mut candidates = vec![value.clone(), Value::Str(atom.clone())];
        let typed = Value::from_atom(&atom);
        // Only canonical spellings coerce: `Str("007")` does not match
        // `Int(7)` because their atoms differ.
        if typed.as_atom() == atom {
            candidates.push(typed);
        }
        candidates.sort();
        candidates.dedup();
        let mut out: Vec<OidId> = candidates
            .iter()
            .flat_map(|c| self.db.where_prop_eq(prop, c))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Everything `target` transitively depends on (following links upwards
    /// from derived object to source), including `target` itself.
    pub fn dependency_closure(&self, target: OidId) -> Result<Vec<OidId>, MetaError> {
        self.closure(target, Direction::Up)
    }

    /// Everything transitively derived from `source` (following links
    /// downwards), including `source` itself.
    pub fn derived_closure(&self, source: OidId) -> Result<Vec<OidId>, MetaError> {
        self.closure(source, Direction::Down)
    }

    fn closure(&self, start: OidId, dir: Direction) -> Result<Vec<OidId>, MetaError> {
        self.db.entry(start)?;
        let mut seen: BTreeSet<OidId> = BTreeSet::new();
        let mut order = Vec::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            order.push(id);
            for next in self.db.neighbors(id, dir, None)? {
                stack.push(next);
            }
        }
        Ok(order)
    }

    /// What still needs to be modified before `target` reaches its planned
    /// state: every object in `target`'s dependency closure whose
    /// `state_prop` is missing or not truthy.
    pub fn work_remaining(
        &self,
        target: OidId,
        state_prop: &str,
    ) -> Result<Vec<WorkItem>, MetaError> {
        let mut items = Vec::new();
        for id in self.dependency_closure(target)? {
            let entry = self.db.entry(id)?;
            let value = entry.props.get(state_prop);
            if value.is_none_or(|v| !v.is_truthy()) {
                items.push(WorkItem {
                    id,
                    oid: entry.oid.clone(),
                    blocking: (state_prop.to_string(), value.cloned()),
                });
            }
        }
        Ok(items)
    }

    /// Per-view aggregate of `state_prop` over all live objects.
    pub fn summary(&self, state_prop: &str) -> Vec<StateSummary> {
        let mut per_view: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
        for (_, entry) in self.db.iter_oids() {
            let slot = per_view.entry(entry.oid.view.to_string()).or_default();
            slot.0 += 1;
            match entry.props.get(state_prop) {
                Some(v) if v.is_truthy() => slot.1 += 1,
                Some(_) => {}
                None => slot.2 += 1,
            }
        }
        per_view
            .into_iter()
            .map(|(view, (total, satisfied, untracked))| StateSummary {
                view,
                total,
                satisfied,
                untracked,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkClass, LinkKind};

    /// hdl -> sch -> net, sch -> lay (equivalence), sch uses reg_sch.
    fn flow_db() -> (MetaDb, BTreeMap<&'static str, OidId>) {
        let mut db = MetaDb::new();
        let hdl = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let sch = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        let reg = db.create_oid(Oid::new("reg", "schematic", 1)).unwrap();
        let net = db.create_oid(Oid::new("cpu", "netlist", 1)).unwrap();
        let lay = db.create_oid(Oid::new("cpu", "layout", 1)).unwrap();
        db.add_link(hdl, sch, LinkClass::Derive, LinkKind::DeriveFrom)
            .unwrap();
        db.add_link(sch, reg, LinkClass::Use, LinkKind::Composition)
            .unwrap();
        db.add_link(sch, net, LinkClass::Derive, LinkKind::DeriveFrom)
            .unwrap();
        db.add_link(sch, lay, LinkClass::Derive, LinkKind::Equivalence)
            .unwrap();
        let mut ids = BTreeMap::new();
        ids.insert("hdl", hdl);
        ids.insert("sch", sch);
        ids.insert("reg", reg);
        ids.insert("net", net);
        ids.insert("lay", lay);
        (db, ids)
    }

    #[test]
    fn out_of_date_finds_stale_objects() {
        let (mut db, ids) = flow_db();
        db.set_prop(ids["sch"], "uptodate", Value::Bool(false))
            .unwrap();
        db.set_prop(ids["net"], "uptodate", Value::Bool(true))
            .unwrap();
        let q = ProjectQuery::new(&db);
        assert_eq!(q.out_of_date("uptodate"), vec![ids["sch"]]);
    }

    #[test]
    fn dependency_closure_goes_upstream() {
        let (db, ids) = flow_db();
        let q = ProjectQuery::new(&db);
        let deps: BTreeSet<OidId> = q
            .dependency_closure(ids["net"])
            .unwrap()
            .into_iter()
            .collect();
        // netlist depends on schematic which derives from hdl.
        assert!(deps.contains(&ids["net"]));
        assert!(deps.contains(&ids["sch"]));
        assert!(deps.contains(&ids["hdl"]));
        assert!(!deps.contains(&ids["lay"]));
    }

    #[test]
    fn derived_closure_goes_downstream() {
        let (db, ids) = flow_db();
        let q = ProjectQuery::new(&db);
        let derived: BTreeSet<OidId> = q.derived_closure(ids["hdl"]).unwrap().into_iter().collect();
        assert_eq!(derived.len(), 5, "hdl reaches the whole flow downwards");
    }

    #[test]
    fn work_remaining_lists_blockers() {
        let (mut db, ids) = flow_db();
        db.set_prop(ids["hdl"], "state", Value::Bool(true)).unwrap();
        db.set_prop(ids["sch"], "state", Value::Bool(false))
            .unwrap();
        // net has no state property at all -> also blocking.
        let q = ProjectQuery::new(&db);
        let work = q.work_remaining(ids["net"], "state").unwrap();
        let blockers: BTreeSet<OidId> = work.iter().map(|w| w.id).collect();
        assert!(blockers.contains(&ids["sch"]));
        assert!(blockers.contains(&ids["net"]));
        assert!(!blockers.contains(&ids["hdl"]));
        let sch_item = work.iter().find(|w| w.id == ids["sch"]).unwrap();
        assert_eq!(sch_item.blocking.1, Some(Value::Bool(false)));
    }

    #[test]
    fn summary_aggregates_per_view() {
        let (mut db, ids) = flow_db();
        db.set_prop(ids["sch"], "state", Value::Bool(true)).unwrap();
        db.set_prop(ids["reg"], "state", Value::Bool(false))
            .unwrap();
        let q = ProjectQuery::new(&db);
        let summary = q.summary("state");
        let sch_row = summary.iter().find(|s| s.view == "schematic").unwrap();
        assert_eq!(sch_row.total, 2);
        assert_eq!(sch_row.satisfied, 1);
        assert_eq!(sch_row.untracked, 0);
        let hdl_row = summary.iter().find(|s| s.view == "HDL_model").unwrap();
        assert_eq!(hdl_row.untracked, 1);
    }

    #[test]
    fn where_prop_eq_matches_scan_semantics() {
        let mut db = MetaDb::new();
        let ids: Vec<OidId> = (1..=6)
            .map(|v| db.create_oid(Oid::new("blk", "v", v)).unwrap())
            .collect();
        db.set_prop(ids[0], "p", Value::Int(4)).unwrap();
        db.set_prop(ids[1], "p", Value::Str("4".into())).unwrap();
        db.set_prop(ids[2], "p", Value::Str("007".into())).unwrap();
        db.set_prop(ids[3], "p", Value::Bool(true)).unwrap();
        db.set_prop(ids[4], "p", Value::Str("true".into())).unwrap();
        db.set_prop(ids[5], "q", Value::Int(4)).unwrap();
        let q = ProjectQuery::new(&db);
        for probe in [
            Value::Int(4),
            Value::Str("4".into()),
            Value::Str("007".into()),
            Value::Int(7),
            Value::Bool(true),
            Value::Str("true".into()),
            Value::Str("ok".into()),
        ] {
            let fast = q.where_prop_eq("p", &probe);
            let scan = q.where_prop("p", |v| v.loose_eq(&probe));
            assert_eq!(fast, scan, "index vs scan disagree for {probe:?}");
        }
        // Int(4) matches both the typed and the stringly stored values.
        assert_eq!(q.where_prop_eq("p", &Value::Int(4)), vec![ids[0], ids[1]]);
        // But "007" is not canonical, so it only matches itself.
        assert_eq!(
            q.where_prop_eq("p", &Value::Str("007".into())),
            vec![ids[2]]
        );
    }

    #[test]
    fn closure_on_stale_handle_errors() {
        let (mut db, ids) = flow_db();
        db.delete_oid(ids["hdl"]).unwrap();
        let q = ProjectQuery::new(&db);
        assert!(q.dependency_closure(ids["hdl"]).is_err());
    }
}

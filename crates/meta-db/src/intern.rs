//! String interning shared by the meta-database and the BluePrint compiler.
//!
//! The run-time engine's hot loop — one `(OID, event)` visited-set probe and
//! one rule-table lookup per delivered event — must not hash or clone
//! strings. A [`SymbolTable`] maps each distinct name (event names, view
//! types, property names) to a dense [`Sym`] handle once, at blueprint
//! compile time; everything after that compares and hashes 4-byte `Copy`
//! values. [`SymSet`] is a bitset over the same dense space, used for the
//! PROPAGATE sets of compiled link templates.

use std::collections::HashMap;
use std::fmt;

/// An interned string: a dense index into its [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A string interner handing out dense [`Sym`] handles.
///
/// # Example
///
/// ```
/// use damocles_meta::intern::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let ckin = table.intern("ckin");
/// assert_eq!(table.intern("ckin"), ckin); // stable
/// assert_eq!(table.name(ckin), Some("ckin"));
/// assert_eq!(table.lookup("never-seen"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_name: HashMap<String, Sym>,
    names: Vec<String>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `name`, returning its stable handle.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol space exhausted"));
        self.by_name.insert(name.to_string(), sym);
        self.names.push(name.to_string());
        sym
    }

    /// The handle of an already-interned name, if any. Never allocates.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// The name behind a handle.
    pub fn name(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index()).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

/// A bitset over a [`SymbolTable`]'s dense symbol space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymSet {
    words: Vec<u64>,
}

impl SymSet {
    /// An empty set.
    pub fn new() -> Self {
        SymSet::default()
    }

    /// Inserts a symbol; returns whether it was newly inserted.
    pub fn insert(&mut self, sym: Sym) -> bool {
        let (word, bit) = (sym.index() / 64, sym.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Whether the set contains `sym`. Constant-time, never allocates.
    pub fn contains(&self, sym: Sym) -> bool {
        let (word, bit) = (sym.index() / 64, sym.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of symbols in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes everything, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
    }
}

impl FromIterator<Sym> for SymSet {
    fn from_iter<I: IntoIterator<Item = Sym>>(iter: I) -> Self {
        let mut set = SymSet::new();
        for sym in iter {
            set.insert(sym);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("ckin");
        let b = t.intern("outofdate");
        assert_eq!(t.intern("ckin"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), Some("ckin"));
        assert_eq!(t.lookup("outofdate"), Some(b));
        assert_eq!(t.lookup("drc"), None);
    }

    #[test]
    fn iteration_follows_intern_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let pairs: Vec<_> = t.iter().map(|(s, n)| (s.index(), n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn symset_insert_contains() {
        let mut s = SymSet::new();
        assert!(!s.contains(Sym(70)));
        assert!(s.insert(Sym(70)));
        assert!(!s.insert(Sym(70)));
        assert!(s.contains(Sym(70)));
        assert!(!s.contains(Sym(69)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn symset_from_iter() {
        let s: SymSet = [Sym(1), Sym(3), Sym(1)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(s.contains(Sym(1)) && s.contains(Sym(3)));
        assert!(!s.contains(Sym(0)));
    }
}

//! # damocles-meta — the DAMOCLES meta-database
//!
//! This crate implements the substrate described in Section 2 of *Controlling
//! Change Propagation and Project Policies in IC Design* (Mathys, Morgan,
//! Soudagar — DATE 1995): a meta-database that "modelizes the project data and
//! the relationship among design views".
//!
//! The meta-database stores three classes of meta-data objects:
//!
//! * **OIDs** ([`Oid`], stored as [`OidId`] handles): each design object is a
//!   triplet of block-name, view-type and version number, annotated with
//!   property/value pairs ([`Value`]).
//! * **Links** ([`Link`], stored as [`LinkId`] handles): typed relations
//!   between OIDs. *Use* links represent hierarchy; *derive* links represent
//!   all other relationships (derivation, equivalence, depend-on). Every link
//!   carries a `PROPAGATE` set enumerating the events allowed to travel
//!   through it.
//! * **Configurations** ([`Configuration`]): lightweight sets of database
//!   addresses referencing OIDs and Links, used as snapshots of the design
//!   hierarchy or as stored query results.
//!
//! [`MetaDb`] is the database itself; [`Workspace`] associates a data
//! repository (simulated design payloads with check-in/check-out state) with a
//! meta-database, and [`query`] provides the designer-facing project-state
//! queries of Section 3.1.
//!
//! # Example
//!
//! ```
//! use damocles_meta::{MetaDb, Oid, Value, LinkClass, LinkKind, Direction};
//!
//! # fn main() -> Result<(), damocles_meta::MetaError> {
//! let mut db = MetaDb::new();
//! let hdl = db.create_oid(Oid::new("cpu", "HDL_model", 1))?;
//! let sch = db.create_oid(Oid::new("cpu", "schematic", 1))?;
//! let link = db.add_link(hdl, sch, LinkClass::Derive, LinkKind::DeriveFrom)?;
//! db.allow_event(link, "outofdate")?;
//! db.set_prop(sch, "uptodate", Value::from_atom("true"))?;
//!
//! // Which OIDs would an `outofdate` event travelling *down* reach from hdl?
//! let reached = db.neighbors(hdl, Direction::Down, Some("outofdate"))?;
//! assert_eq!(reached, vec![sch]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod db;
pub mod dump;
pub mod error;
pub mod intern;
pub mod journal;
pub mod link;
pub mod oid;
pub mod persist;
pub mod property;
pub mod qlang;
pub mod query;
pub mod version;
pub mod wire;
pub mod workspace;

pub use arena::{Arena, ArenaIndex};
pub use config::{Configuration, ConfigurationBuilder, SnapshotRule};
pub use db::{DbStats, LaneWrites, MetaDb, OidEntry, OidId, PropWrite, TopoDelta};
pub use error::MetaError;
pub use intern::{Sym, SymSet, SymbolTable};
pub use journal::{JournalError, JournalOp, JournalWriter, Recovered, RecoveryReport};
pub use link::{Direction, Link, LinkClass, LinkId, LinkKind};
pub use oid::{BlockName, Oid, ViewType};
pub use property::{prop_shard, IndexDelta, PropIndex, PropertyMap, Value, PROP_INDEX_SHARDS};
pub use query::{ProjectQuery, StateSummary, WorkItem};
pub use version::VersionHistory;
pub use wire::{EventMessage, WireDiag, WordCursor};
pub use workspace::{CheckoutState, DesignDatum, Workspace};

//! Save/load of the meta-database as a line-oriented text image.
//!
//! DAMOCLES is a project *database*: it outlives any one session. This
//! module serializes the full database — OIDs, typed properties, links with
//! their PROPAGATE sets and annotations — to a stable text format and loads
//! it back, with a round-trip guarantee (see the property test in
//! `tests/persist_roundtrip.rs`).
//!
//! Format (version 1):
//!
//! ```text
//! damocles-db v1
//! oid cpu,schematic,1
//! prop uptodate b:true
//! prop nl_sim_res s:good
//! link cpu,HDL_model,1 cpu,schematic,1 derive derive_from outofdate,nl_sim
//! lprop weight i:3
//! ```
//!
//! `prop` lines attach to the preceding `oid`; `lprop` lines to the
//! preceding `link`. Values carry a type tag (`b:`/`i:`/`s:`) so `"4"` the
//! string survives distinct from `4` the integer; strings are
//! percent-escaped for whitespace, `%` and newlines.
//!
//! Scope: the image captures the durable project state — meta-data and
//! (via [`save_project`]) design payloads. Session-transient state is
//! deliberately excluded: queued events, check-out holders and the
//! workspace's logical clock all belong to the running server, matching the
//! paper's split between the meta-database and the tracking session.

use crate::db::{MetaDb, OidId};
use crate::error::MetaError;
use crate::link::{LinkClass, LinkKind};
use crate::oid::Oid;
use crate::property::Value;

const HEADER: &str = "damocles-db v1";

/// Percent-escapes whitespace, `%` and newlines so `s` survives as one
/// whitespace-delimited word of a line-oriented encoding. Shared by the
/// snapshot image, the journal and the command-protocol codec.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`].
///
/// # Errors
///
/// A human-readable reason on a truncated or malformed escape.
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hi = chars.next().ok_or("truncated escape")?;
            let lo = chars.next().ok_or("truncated escape")?;
            let code = u8::from_str_radix(&format!("{hi}{lo}"), 16)
                .map_err(|_| format!("bad escape %{hi}{lo}"))?;
            out.push(code as char);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Lower-hex encoding of an opaque payload, one pre-sized allocation.
pub fn encode_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Inverse of [`encode_hex`].
///
/// # Errors
///
/// A human-readable reason on odd length or non-hex digits.
pub fn decode_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("odd hex length".to_string());
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| "bad hex payload".to_string()))
        .collect()
}

/// Renders a typed [`Value`] as one word (`b:`/`i:`/`s:` tag + escaped
/// body) — the value encoding every line format of this crate shares.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(n) => format!("i:{n}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

/// Inverse of [`encode_value`].
///
/// # Errors
///
/// A human-readable reason on a missing tag or malformed body.
pub fn decode_value(s: &str) -> Result<Value, String> {
    let (tag, body) = s.split_once(':').ok_or("value missing type tag")?;
    match tag {
        "b" => body
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| format!("bad bool `{body}`")),
        "i" => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("bad int `{body}`")),
        "s" => Ok(Value::Str(unescape(body)?)),
        other => Err(format!("unknown value tag `{other}`")),
    }
}

/// Serializes the database to its text image.
pub fn save(db: &MetaDb) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');

    let mut oids: Vec<_> = db.iter_oids().collect();
    oids.sort_by(|a, b| a.1.oid.cmp(&b.1.oid));
    for (_, entry) in &oids {
        out.push_str(&format!("oid {}\n", entry.oid));
        for (name, value) in entry.props.iter() {
            out.push_str(&format!("prop {} {}\n", escape(name), encode_value(value)));
        }
    }

    // Image order (sorted by endpoint triplets, ties in arena order) is
    // shared with the journal's link-tag assignment: `MetaDb::attach_journal`
    // and `journal::recover` both enumerate links through
    // `links_in_image_order`, so record order here IS the tag order there.
    let links: Vec<_> = db
        .links_in_image_order()
        .into_iter()
        .filter_map(|id| {
            let link = db.link(id).ok()?;
            let from = db.oid(link.from).ok()?;
            let to = db.oid(link.to).ok()?;
            Some((from.clone(), to.clone(), link.clone()))
        })
        .collect();
    for (from, to, link) in links {
        let class = match link.class {
            LinkClass::Use => "use",
            LinkClass::Derive => "derive",
        };
        let propagates: Vec<String> = link.propagates.iter().map(|e| escape(e)).collect();
        out.push_str(&format!(
            "link {from} {to} {class} {} {}\n",
            escape(link.kind.as_keyword()),
            if propagates.is_empty() {
                "-".to_string()
            } else {
                propagates.join(",")
            }
        ));
        for (name, value) in link.props.iter() {
            out.push_str(&format!("lprop {} {}\n", escape(name), encode_value(value)));
        }
    }
    out
}

/// Loads a database from its text image.
///
/// # Errors
///
/// Returns [`MetaError::WireParse`] with the offending line for any format
/// violation.
pub fn load(image: &str) -> Result<MetaDb, MetaError> {
    let err = |line: &str, reason: String| MetaError::WireParse {
        reason,
        input: line.to_string(),
    };
    let mut lines = image.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => {
            return Err(err(
                other.unwrap_or(""),
                format!("expected header `{HEADER}`"),
            ))
        }
    }

    let mut db = MetaDb::new();
    let mut current_oid: Option<OidId> = None;
    let mut current_link: Option<crate::link::LinkId> = None;
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "oid" => {
                let oid: Oid = rest.trim().parse()?;
                current_oid = Some(db.create_oid(oid)?);
                current_link = None;
            }
            "prop" => {
                let id = current_oid.ok_or_else(|| err(line, "prop before any oid".to_string()))?;
                let (name, value) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(line, "prop needs name and value".to_string()))?;
                let name = unescape(name).map_err(|e| err(line, e))?;
                let value = decode_value(value).map_err(|e| err(line, e))?;
                db.set_prop(id, &name, value)?;
            }
            "link" => {
                let words: Vec<&str> = rest.split_whitespace().collect();
                let [from, to, class, kind, propagates] = words.as_slice() else {
                    return Err(err(line, "link needs 5 fields".to_string()));
                };
                let from_id = db.require(&from.parse()?)?;
                let to_id = db.require(&to.parse()?)?;
                let class = match *class {
                    "use" => LinkClass::Use,
                    "derive" => LinkClass::Derive,
                    other => return Err(err(line, format!("unknown link class `{other}`"))),
                };
                let kind: LinkKind = unescape(kind)
                    .map_err(|e| err(line, e))?
                    .parse()
                    .expect("LinkKind::from_str is infallible");
                let events: Vec<String> = if *propagates == "-" {
                    Vec::new()
                } else {
                    propagates
                        .split(',')
                        .map(unescape)
                        .collect::<Result<_, _>>()
                        .map_err(|e| err(line, e))?
                };
                current_link = Some(db.add_link_with(from_id, to_id, class, kind, events)?);
                current_oid = None;
            }
            "lprop" => {
                let link_id =
                    current_link.ok_or_else(|| err(line, "lprop before any link".to_string()))?;
                let (name, value) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(line, "lprop needs name and value".to_string()))?;
                let name = unescape(name).map_err(|e| err(line, e))?;
                let value = decode_value(value).map_err(|e| err(line, e))?;
                db.set_link_prop(link_id, &name, value)?;
            }
            other => return Err(err(line, format!("unknown record `{other}`"))),
        }
    }
    Ok(db)
}

/// Serializes database + workspace payloads (hex-encoded `data` records
/// appended to the [`save`] image).
pub fn save_project(db: &MetaDb, workspace: &crate::workspace::Workspace) -> String {
    let mut out = save(db);
    let mut data: Vec<(Oid, Vec<u8>)> = workspace
        .timestamps()
        .filter_map(|(id, _)| {
            let oid = db.oid(id).ok()?.clone();
            let payload = workspace.datum(id)?.content.clone();
            Some((oid, payload))
        })
        .collect();
    data.sort_by(|a, b| a.0.cmp(&b.0));
    for (oid, payload) in data {
        out.push_str(&format!("data {oid} {}\n", encode_hex(&payload)));
    }
    out
}

/// Loads database + workspace from a [`save_project`] image.
///
/// # Errors
///
/// Returns [`MetaError::WireParse`] on any format violation.
pub fn load_project(image: &str) -> Result<(MetaDb, crate::workspace::Workspace), MetaError> {
    // `load` ignores nothing, so strip data records first.
    let db_image: String = image
        .lines()
        .filter(|l| !l.starts_with("data "))
        .collect::<Vec<_>>()
        .join("\n");
    let db = load(&db_image)?;
    let mut workspace = crate::workspace::Workspace::new("restored");
    for line in image.lines().filter(|l| l.starts_with("data ")) {
        let err = |reason: &str| MetaError::WireParse {
            reason: reason.to_string(),
            input: line.to_string(),
        };
        let mut words = line.split_whitespace();
        let _ = words.next();
        let oid: Oid = words.next().ok_or_else(|| err("missing OID"))?.parse()?;
        let payload = decode_hex(words.next().unwrap_or("")).map_err(|e| err(&e))?;
        let id = db.require(&oid)?;
        workspace.store(id, payload);
    }
    Ok((db, workspace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetaDb {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let b = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        db.set_prop(a, "sim_result", Value::Str("4 errors".into()))
            .unwrap();
        db.set_prop(a, "uptodate", Value::Bool(true)).unwrap();
        db.set_prop(b, "version_count", Value::Int(7)).unwrap();
        let l = db
            .add_link_with(
                a,
                b,
                LinkClass::Derive,
                LinkKind::DeriveFrom,
                ["outofdate", "nl sim"],
            )
            .unwrap();
        db.set_link_prop(l, "weight", Value::Int(3)).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample();
        let image = save(&db);
        let loaded = load(&image).unwrap();
        assert_eq!(save(&loaded), image, "save∘load∘save is stable");
        assert_eq!(loaded.oid_count(), 2);
        assert_eq!(loaded.link_count(), 1);
        let a = loaded.resolve(&Oid::new("cpu", "HDL_model", 1)).unwrap();
        assert_eq!(
            loaded.get_prop(a, "sim_result").unwrap(),
            Some(&Value::Str("4 errors".into()))
        );
        assert_eq!(
            loaded.get_prop(a, "uptodate").unwrap(),
            Some(&Value::Bool(true))
        );
        let (_, link) = loaded.iter_links().next().unwrap();
        assert!(link.allows("outofdate"));
        assert!(link.allows("nl sim"));
        assert_eq!(link.props.get("weight"), Some(&Value::Int(3)));
    }

    #[test]
    fn type_fidelity_for_stringly_numbers() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.set_prop(a, "s", Value::Str("42".into())).unwrap();
        db.set_prop(a, "n", Value::Int(42)).unwrap();
        db.set_prop(a, "t", Value::Str("true".into())).unwrap();
        let loaded = load(&save(&db)).unwrap();
        let id = loaded.resolve(&Oid::new("b", "v", 1)).unwrap();
        assert_eq!(
            loaded.get_prop(id, "s").unwrap(),
            Some(&Value::Str("42".into()))
        );
        assert_eq!(loaded.get_prop(id, "n").unwrap(), Some(&Value::Int(42)));
        assert_eq!(
            loaded.get_prop(id, "t").unwrap(),
            Some(&Value::Str("true".into()))
        );
    }

    #[test]
    fn escaping_survives_hostile_content() {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.set_prop(a, "msg", Value::Str("line one\nline two % done".into()))
            .unwrap();
        let loaded = load(&save(&db)).unwrap();
        let id = loaded.resolve(&Oid::new("b", "v", 1)).unwrap();
        assert_eq!(
            loaded.get_prop(id, "msg").unwrap().unwrap().as_atom(),
            "line one\nline two % done"
        );
    }

    #[test]
    fn rejects_malformed_images() {
        for bad in [
            "",
            "not-a-header",
            "damocles-db v1\nprop orphan s:x",
            "damocles-db v1\nlprop orphan s:x",
            "damocles-db v1\noid b,v,1\nprop broken",
            "damocles-db v1\noid b,v,1\nprop p q:x",
            "damocles-db v1\nlink a,v,1 b,v,1 use composition -",
            "damocles-db v1\nmystery record",
        ] {
            assert!(load(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn project_image_restores_payloads() {
        let mut db = MetaDb::new();
        let mut ws = crate::workspace::Workspace::new("w");
        let (id, oid) = ws
            .checkin(
                &mut db,
                "cpu",
                "HDL_model",
                "yves",
                b"module cpu; \xffraw".to_vec(),
            )
            .unwrap();
        db.set_prop(id, "uptodate", Value::Bool(true)).unwrap();
        let image = save_project(&db, &ws);
        let (db2, ws2) = load_project(&image).unwrap();
        let id2 = db2.require(&oid).unwrap();
        assert_eq!(
            ws2.datum(id2).unwrap().content,
            b"module cpu; \xffraw".to_vec()
        );
        assert_eq!(
            db2.get_prop(id2, "uptodate").unwrap(),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = MetaDb::new();
        let loaded = load(&save(&db)).unwrap();
        assert_eq!(loaded.oid_count(), 0);
    }
}

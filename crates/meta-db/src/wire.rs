//! The `postEvent` wire format of Section 3.1.
//!
//! "An event message consists of an event name, a propagation direction
//! (either up or down through the links), a target OID and optional
//! arguments:
//!
//! ```text
//! postEvent ckin up reg,verilog,4 "logic sim passed"
//! ```
//!
//! Wrapper programs emit these lines over the network; the BluePrint engine
//! parses them into [`EventMessage`] values and queues them FIFO.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::MetaError;
use crate::link::Direction;
use crate::oid::Oid;

/// A parsed design-event message.
///
/// # Example
///
/// ```
/// use damocles_meta::{EventMessage, Direction};
///
/// let msg: EventMessage = r#"postEvent ckin up reg,verilog,4 "logic sim passed""#.parse()?;
/// assert_eq!(msg.event, "ckin");
/// assert_eq!(msg.direction, Direction::Up);
/// assert_eq!(msg.target.to_string(), "reg,verilog,4");
/// assert_eq!(msg.args, vec!["logic sim passed"]);
/// // Round-trips back to the wire form:
/// assert_eq!(msg.to_string(), r#"postEvent ckin up reg,verilog,4 "logic sim passed""#);
/// # Ok::<(), damocles_meta::MetaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventMessage {
    /// The event name (`ckin`, `hdl_sim`, `outofdate`, …).
    pub event: String,
    /// Propagation direction through the links.
    pub direction: Direction,
    /// The OID the event is targeted at.
    pub target: Oid,
    /// Optional arguments; the first one is what run-time rules see as
    /// `$arg` (e.g. `"4 errors"` or `"good"`).
    pub args: Vec<String>,
}

impl EventMessage {
    /// Builds an event message.
    pub fn new(event: impl Into<String>, direction: Direction, target: Oid) -> Self {
        EventMessage {
            event: event.into(),
            direction,
            target,
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn with_arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// The first argument, the `$arg` of run-time rules.
    pub fn arg(&self) -> Option<&str> {
        self.args.first().map(String::as_str)
    }
}

impl fmt::Display for EventMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "postEvent {} {} {}",
            self.event, self.direction, self.target
        )?;
        for arg in &self.args {
            write!(f, " \"{}\"", arg.replace('\\', "\\\\").replace('"', "\\\""))?;
        }
        Ok(())
    }
}

impl FromStr for EventMessage {
    type Err = MetaError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let parse_err = |reason: &str| MetaError::WireParse {
            reason: reason.to_string(),
            input: line.to_string(),
        };
        let mut rest = line.trim();
        if let Some(stripped) = rest.strip_prefix("postEvent") {
            rest = stripped.trim_start();
        } else {
            return Err(parse_err("missing `postEvent` keyword"));
        }
        let mut words = rest.splitn(3, char::is_whitespace);
        let event = words
            .next()
            .filter(|w| !w.is_empty())
            .ok_or_else(|| parse_err("missing event name"))?;
        let dir_word = words.next().ok_or_else(|| parse_err("missing direction"))?;
        let direction: Direction = dir_word.parse().map_err(|e: String| parse_err(&e))?;
        let tail = words
            .next()
            .ok_or_else(|| parse_err("missing target OID"))?;
        let tail = tail.trim_start();
        // Target is the first whitespace-delimited word; arguments follow as
        // a sequence of double-quoted strings.
        let (target_word, mut arg_tail) = match tail.find(char::is_whitespace) {
            Some(pos) => (&tail[..pos], tail[pos..].trim_start()),
            None => (tail, ""),
        };
        let target: Oid = target_word.parse()?;
        let mut args = Vec::new();
        while !arg_tail.is_empty() {
            let stripped = arg_tail
                .strip_prefix('"')
                .ok_or_else(|| parse_err("arguments must be double-quoted"))?;
            let mut value = String::new();
            let mut chars = stripped.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        if let Some((_, next)) = chars.next() {
                            value.push(next);
                        }
                    }
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    other => value.push(other),
                }
            }
            let end = end.ok_or_else(|| parse_err("unterminated quoted argument"))?;
            args.push(value);
            arg_tail = stripped[end + 1..].trim_start();
        }
        Ok(EventMessage {
            event: event.to_string(),
            direction,
            target,
            args,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let msg: EventMessage = r#"postEvent ckin up reg,verilog,4 "logic sim passed""#
            .parse()
            .unwrap();
        assert_eq!(msg.event, "ckin");
        assert_eq!(msg.direction, Direction::Up);
        assert_eq!(msg.target, Oid::new("reg", "verilog", 4));
        assert_eq!(msg.arg(), Some("logic sim passed"));
    }

    #[test]
    fn parses_without_args() {
        let msg: EventMessage = "postEvent outofdate down cpu,schematic,1".parse().unwrap();
        assert!(msg.args.is_empty());
        assert_eq!(msg.arg(), None);
    }

    #[test]
    fn parses_multiple_args() {
        let msg: EventMessage = r#"postEvent lvs up alu,layout,2 "not_equiv" "rerun extraction""#
            .parse()
            .unwrap();
        assert_eq!(msg.args, vec!["not_equiv", "rerun extraction"]);
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let original = EventMessage::new("note", Direction::Down, Oid::new("a", "v", 1))
            .with_arg(r#"says "hello""#);
        let wire = original.to_string();
        let parsed: EventMessage = wire.parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn display_roundtrip() {
        let original = EventMessage::new("ckin", Direction::Up, Oid::new("reg", "verilog", 4))
            .with_arg("logic sim passed");
        let parsed: EventMessage = original.to_string().parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "ckin up reg,verilog,4",              // missing keyword
            "postEvent",                          // nothing else
            "postEvent ckin",                     // no direction
            "postEvent ckin sideways reg,v,1",    // bad direction
            "postEvent ckin up",                  // no target
            "postEvent ckin up reg,verilog",      // bad OID
            r#"postEvent ckin up reg,v,1 "open"#, // unterminated arg
            "postEvent ckin up reg,v,1 bare",     // unquoted arg
        ] {
            assert!(
                bad.parse::<EventMessage>().is_err(),
                "should have rejected `{bad}`"
            );
        }
    }
}

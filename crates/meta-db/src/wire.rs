//! The `postEvent` wire format of Section 3.1.
//!
//! "An event message consists of an event name, a propagation direction
//! (either up or down through the links), a target OID and optional
//! arguments:
//!
//! ```text
//! postEvent ckin up reg,verilog,4 "logic sim passed"
//! ```
//!
//! Wrapper programs emit these lines over the network; the BluePrint engine
//! parses them into [`EventMessage`] values and queues them FIFO.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::MetaError;
use crate::link::Direction;
use crate::oid::Oid;

/// A parsed design-event message.
///
/// # Example
///
/// ```
/// use damocles_meta::{EventMessage, Direction};
///
/// let msg: EventMessage = r#"postEvent ckin up reg,verilog,4 "logic sim passed""#.parse()?;
/// assert_eq!(msg.event, "ckin");
/// assert_eq!(msg.direction, Direction::Up);
/// assert_eq!(msg.target.to_string(), "reg,verilog,4");
/// assert_eq!(msg.args, vec!["logic sim passed"]);
/// // Round-trips back to the wire form:
/// assert_eq!(msg.to_string(), r#"postEvent ckin up reg,verilog,4 "logic sim passed""#);
/// # Ok::<(), damocles_meta::MetaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventMessage {
    /// The event name (`ckin`, `hdl_sim`, `outofdate`, …).
    pub event: String,
    /// Propagation direction through the links.
    pub direction: Direction,
    /// The OID the event is targeted at.
    pub target: Oid,
    /// Optional arguments; the first one is what run-time rules see as
    /// `$arg` (e.g. `"4 errors"` or `"good"`).
    pub args: Vec<String>,
}

impl EventMessage {
    /// Builds an event message.
    pub fn new(event: impl Into<String>, direction: Direction, target: Oid) -> Self {
        EventMessage {
            event: event.into(),
            direction,
            target,
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn with_arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// The first argument, the `$arg` of run-time rules.
    pub fn arg(&self) -> Option<&str> {
        self.args.first().map(String::as_str)
    }
}

/// A structured wire-parse diagnostic: the byte offset of the offending
/// token in the input line, the token found there, and what the grammar
/// expected instead.
///
/// Produced by [`EventMessage::parse_wire`]; the API layer surfaces it as
/// `ApiError::Parse` so wrapper programs get a machine-readable position
/// rather than a bare reason string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiag {
    /// Byte offset of the offending token in the input line.
    pub at: usize,
    /// The token found at `at` (`"end of line"` when input ran out).
    pub found: String,
    /// What the grammar expected at `at`.
    pub expected: String,
}

impl WireDiag {
    fn new(at: usize, found: &str, expected: impl Into<String>) -> Self {
        WireDiag {
            at,
            found: if found.is_empty() {
                "end of line".to_string()
            } else {
                found.to_string()
            },
            expected: expected.into(),
        }
    }
}

impl fmt::Display for WireDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at byte {}: expected {}, found `{}`",
            self.at, self.expected, self.found
        )
    }
}

/// A whitespace word scanner that remembers byte offsets — the one
/// positional tokenizer behind the wire parser, the command-protocol
/// codec and the shell grammar, so diagnostics from every surface agree
/// on where a token starts.
///
/// Words are delimited by **exactly** the separator set
/// [`crate::persist::escape`] escapes (space, tab, CR, LF) — not full
/// Unicode whitespace. The invariant matters: an escaped string must
/// survive as one word, so any character the escaper passes through
/// (U+000B, U+00A0, U+2028, …) must not split words here.
#[derive(Debug, Clone)]
pub struct WordCursor<'a> {
    line: &'a str,
    pos: usize,
}

/// The codec's word separators — kept equal to the set
/// [`crate::persist::escape`] percent-escapes.
fn is_separator(c: char) -> bool {
    matches!(c, ' ' | '\t' | '\r' | '\n')
}

impl<'a> WordCursor<'a> {
    /// A cursor at the start of `line`.
    pub fn new(line: &'a str) -> Self {
        WordCursor { line, pos: 0 }
    }

    /// The scanned line.
    pub fn line(&self) -> &'a str {
        self.line
    }

    /// The current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Moves the cursor to `pos` (must be a char boundary) — for callers
    /// that consume non-word syntax (quoted arguments) themselves.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.line.len());
    }

    /// Advances past separators and returns the new offset.
    pub fn skip_ws(&mut self) -> usize {
        let rest = &self.line[self.pos..];
        let off = rest
            .char_indices()
            .find(|&(_, c)| !is_separator(c))
            .map_or(rest.len(), |(i, _)| i);
        self.pos += off;
        self.pos
    }

    /// The next word and its offset, without consuming it; `None` at end
    /// of line. Leaves the cursor at the word's start.
    pub fn peek_word(&mut self) -> Option<(usize, &'a str)> {
        self.skip_ws();
        if self.pos >= self.line.len() {
            return None;
        }
        let rest = &self.line[self.pos..];
        let end = rest
            .char_indices()
            .find(|&(_, c)| is_separator(c))
            .map_or(rest.len(), |(i, _)| i);
        Some((self.pos, &rest[..end]))
    }

    /// The next word and its offset, consumed; `None` at end of line.
    pub fn next_word(&mut self) -> Option<(usize, &'a str)> {
        let (at, word) = self.peek_word()?;
        self.pos = at + word.len();
        Some((at, word))
    }

    /// The unconsumed remainder (leading and trailing separators
    /// trimmed), consuming the line.
    pub fn rest(&mut self) -> &'a str {
        self.skip_ws();
        let rest = self.line[self.pos..].trim_end_matches(is_separator);
        self.pos = self.line.len();
        rest
    }
}

impl fmt::Display for EventMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "postEvent {} {} {}",
            self.event, self.direction, self.target
        )?;
        for arg in &self.args {
            write!(f, " \"{}\"", arg.replace('\\', "\\\\").replace('"', "\\\""))?;
        }
        Ok(())
    }
}

impl EventMessage {
    /// Parses a `postEvent` wire line, reporting failures as a structured
    /// [`WireDiag`] carrying the byte offset of the offending token.
    ///
    /// [`EventMessage::from_str`] wraps this, folding the diagnostic into
    /// [`MetaError::WireParse`] for callers that only need the rendering.
    ///
    /// # Errors
    ///
    /// A [`WireDiag`] naming the position, the found token and the
    /// expected grammar element.
    pub fn parse_wire(line: &str) -> Result<Self, WireDiag> {
        let mut cursor = WordCursor::new(line);
        fn word_or_eol<'l>(c: &mut WordCursor<'l>) -> (usize, &'l str) {
            c.next_word().unwrap_or((c.pos(), ""))
        }
        let (at, keyword) = word_or_eol(&mut cursor);
        if keyword != "postEvent" {
            return Err(WireDiag::new(at, keyword, "the `postEvent` keyword"));
        }
        let (at, event) = word_or_eol(&mut cursor);
        if event.is_empty() {
            return Err(WireDiag::new(at, event, "an event name"));
        }
        let (at, dir_word) = word_or_eol(&mut cursor);
        let direction: Direction = dir_word
            .parse()
            .map_err(|_: String| WireDiag::new(at, dir_word, "a direction (`up` or `down`)"))?;
        let (at, target_word) = word_or_eol(&mut cursor);
        let target: Oid = target_word.parse().map_err(|e: MetaError| {
            WireDiag::new(
                at,
                target_word,
                format!("a target OID `block,view,version` ({})", e.short_reason()),
            )
        })?;
        // Arguments follow as a sequence of double-quoted strings.
        let mut args = Vec::new();
        let mut pos = cursor.skip_ws();
        while pos < line.len() {
            if !line[pos..].starts_with('"') {
                let (_, word) = cursor.peek_word().unwrap_or((pos, ""));
                return Err(WireDiag::new(pos, word, "a double-quoted argument"));
            }
            let body = &line[pos + 1..];
            let mut value = String::new();
            let mut chars = body.char_indices();
            let mut close = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        if let Some((_, next)) = chars.next() {
                            value.push(next);
                        }
                    }
                    '"' => {
                        close = Some(i);
                        break;
                    }
                    other => value.push(other),
                }
            }
            let Some(close) = close else {
                return Err(WireDiag::new(
                    pos,
                    &line[pos..],
                    "a closing `\"` for this argument",
                ));
            };
            args.push(value);
            cursor.seek(pos + 1 + close + 1);
            pos = cursor.skip_ws();
        }
        Ok(EventMessage {
            event: event.to_string(),
            direction,
            target,
            args,
        })
    }
}

impl FromStr for EventMessage {
    type Err = MetaError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        EventMessage::parse_wire(line).map_err(|d| MetaError::WireParse {
            reason: d.to_string(),
            input: line.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let msg: EventMessage = r#"postEvent ckin up reg,verilog,4 "logic sim passed""#
            .parse()
            .unwrap();
        assert_eq!(msg.event, "ckin");
        assert_eq!(msg.direction, Direction::Up);
        assert_eq!(msg.target, Oid::new("reg", "verilog", 4));
        assert_eq!(msg.arg(), Some("logic sim passed"));
    }

    #[test]
    fn parses_without_args() {
        let msg: EventMessage = "postEvent outofdate down cpu,schematic,1".parse().unwrap();
        assert!(msg.args.is_empty());
        assert_eq!(msg.arg(), None);
    }

    #[test]
    fn parses_multiple_args() {
        let msg: EventMessage = r#"postEvent lvs up alu,layout,2 "not_equiv" "rerun extraction""#
            .parse()
            .unwrap();
        assert_eq!(msg.args, vec!["not_equiv", "rerun extraction"]);
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let original = EventMessage::new("note", Direction::Down, Oid::new("a", "v", 1))
            .with_arg(r#"says "hello""#);
        let wire = original.to_string();
        let parsed: EventMessage = wire.parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn display_roundtrip() {
        let original = EventMessage::new("ckin", Direction::Up, Oid::new("reg", "verilog", 4))
            .with_arg("logic sim passed");
        let parsed: EventMessage = original.to_string().parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn diagnostics_carry_position_and_expectation() {
        let d = EventMessage::parse_wire("postEvent ckin sideways reg,v,1").unwrap_err();
        assert_eq!(d.at, 15);
        assert_eq!(d.found, "sideways");
        assert!(d.expected.contains("direction"));

        let d = EventMessage::parse_wire("postEvent ckin up").unwrap_err();
        assert_eq!(d.found, "end of line");
        assert!(d.expected.contains("target OID"));

        let d = EventMessage::parse_wire("postEvent ckin up reg,v,1 bare").unwrap_err();
        assert_eq!(d.at, 26);
        assert_eq!(d.found, "bare");
        assert!(d.expected.contains("double-quoted"));

        let d = EventMessage::parse_wire(r#"postEvent ckin up reg,v,1 "open"#).unwrap_err();
        assert_eq!(d.at, 26);
        assert!(d.expected.contains("closing"));

        // The MetaError rendering keeps both the position and the input.
        let e = r#"notpost ckin up reg,v,1"#.parse::<EventMessage>().unwrap_err();
        let s = e.to_string();
        assert!(s.contains("at byte 0"), "{s}");
        assert!(s.contains("postEvent"), "{s}");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "ckin up reg,verilog,4",              // missing keyword
            "postEvent",                          // nothing else
            "postEvent ckin",                     // no direction
            "postEvent ckin sideways reg,v,1",    // bad direction
            "postEvent ckin up",                  // no target
            "postEvent ckin up reg,verilog",      // bad OID
            r#"postEvent ckin up reg,v,1 "open"#, // unterminated arg
            "postEvent ckin up reg,v,1 bare",     // unquoted arg
        ] {
            assert!(
                bad.parse::<EventMessage>().is_err(),
                "should have rejected `{bad}`"
            );
        }
    }
}

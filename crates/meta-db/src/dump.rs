//! Deterministic, human-readable dumps of the meta-database.
//!
//! DAMOCLES administrators lived in terminals; a stable textual rendering of
//! the whole database doubles as a golden-test format (two databases are
//! equivalent iff their dumps match) and as the CLI's `dump` output.

use std::fmt::Write;

use crate::db::MetaDb;
use crate::link::LinkClass;
use crate::property::Value;

/// Renders every live OID (sorted by triplet) with its properties, followed
/// by every live link (sorted by endpoint triplets).
///
/// The format is stable: equal databases produce byte-equal dumps.
///
/// # Example
///
/// ```
/// use damocles_meta::{dump::dump, MetaDb, Oid, Value};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// let id = db.create_oid(Oid::new("cpu", "schematic", 1))?;
/// db.set_prop(id, "uptodate", Value::Bool(true))?;
/// let text = dump(&db);
/// assert!(text.contains("oid cpu,schematic,1"));
/// assert!(text.contains("uptodate = true"));
/// # Ok(())
/// # }
/// ```
pub fn dump(db: &MetaDb) -> String {
    let mut out = String::new();

    let mut oids: Vec<_> = db.iter_oids().collect();
    oids.sort_by(|a, b| a.1.oid.cmp(&b.1.oid));
    let _ = writeln!(out, "# {} oids, {} links", db.oid_count(), db.link_count());
    for (_, entry) in &oids {
        let _ = writeln!(out, "oid {}", entry.oid);
        for (name, value) in entry.props.iter() {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }

    let mut links: Vec<(String, String, String, String)> = db
        .iter_links()
        .filter_map(|(_, link)| {
            let from = db.oid(link.from).ok()?;
            let to = db.oid(link.to).ok()?;
            let class = match link.class {
                LinkClass::Use => "use",
                LinkClass::Derive => "derive",
            };
            let propagates: Vec<&str> = link.propagates.iter().map(String::as_str).collect();
            Some((
                from.to_string(),
                to.to_string(),
                format!("{class}/{}", link.kind),
                propagates.join(","),
            ))
        })
        .collect();
    links.sort();
    for (from, to, kind, propagates) in links {
        let _ = writeln!(out, "link {from} -> {to} [{kind}] propagates({propagates})");
    }
    out
}

/// Line-level diff of two dumps: `(only_in_a, only_in_b)`.
pub fn diff(a: &MetaDb, b: &MetaDb) -> (Vec<String>, Vec<String>) {
    let dump_a = dump(a);
    let dump_b = dump(b);
    let set_a: std::collections::BTreeSet<&str> = dump_a.lines().collect();
    let set_b: std::collections::BTreeSet<&str> = dump_b.lines().collect();
    (
        set_a.difference(&set_b).map(|s| s.to_string()).collect(),
        set_b.difference(&set_a).map(|s| s.to_string()).collect(),
    )
}

/// Escapes a string for a double-quoted Graphviz DOT identifier — the
/// one DOT quoting rule shared by every renderer (this module's
/// [`to_dot`] and `damocles_flows::viz::blueprint_to_dot`).
pub fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the live design state as a Graphviz DOT digraph: one node per
/// OID, coloured green/red/grey by the truthiness (or absence) of
/// `state_prop`, one edge per link (use links dashed). Served by the
/// command protocol's `Dot` request; `damocles_flows::viz::db_to_dot`
/// re-exports it.
pub fn to_dot(db: &MetaDb, state_prop: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph design_state {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=box, style=filled, fontname=\"monospace\"];"
    );
    for (_, entry) in db.iter_oids() {
        let color = match entry.props.get(state_prop) {
            Some(v) if v.is_truthy() => "palegreen",
            Some(_) => "lightcoral",
            None => "lightgrey",
        };
        let state = entry
            .props
            .get(state_prop)
            .map(Value::as_atom)
            .unwrap_or_else(|| "untracked".to_string());
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}={}\", fillcolor={}];",
            dot_escape(&entry.oid.to_string()),
            dot_escape(&entry.oid.to_string()),
            dot_escape(state_prop),
            dot_escape(&state),
            color
        );
    }
    for (_, link) in db.iter_links() {
        let (Ok(from), Ok(to)) = (db.oid(link.from), db.oid(link.to)) else {
            continue;
        };
        let style = match link.class {
            LinkClass::Use => "dashed",
            LinkClass::Derive => "solid",
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
            dot_escape(&from.to_string()),
            dot_escape(&to.to_string()),
            dot_escape(link.kind.as_keyword()),
            style
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use crate::oid::Oid;
    use crate::property::Value;

    fn sample() -> MetaDb {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let b = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        db.set_prop(a, "sim_result", Value::from_atom("good"))
            .unwrap();
        db.add_link_with(a, b, LinkClass::Derive, LinkKind::DeriveFrom, ["outofdate"])
            .unwrap();
        db
    }

    #[test]
    fn dump_is_deterministic_and_complete() {
        let db = sample();
        let d1 = dump(&db);
        let d2 = dump(&db.clone());
        assert_eq!(d1, d2);
        assert!(d1.contains("# 2 oids, 1 links"));
        assert!(d1.contains("oid cpu,HDL_model,1"));
        assert!(d1.contains("sim_result = good"));
        assert!(d1.contains(
            "link cpu,HDL_model,1 -> cpu,schematic,1 [derive/derive_from] propagates(outofdate)"
        ));
    }

    #[test]
    fn dump_orders_by_triplet_not_insertion() {
        let mut db = MetaDb::new();
        db.create_oid(Oid::new("z", "v", 1)).unwrap();
        db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let d = dump(&db);
        let a_pos = d.find("oid a,v,1").unwrap();
        let z_pos = d.find("oid z,v,1").unwrap();
        assert!(a_pos < z_pos);
    }

    #[test]
    fn diff_finds_changes() {
        let db_a = sample();
        let mut db_b = sample();
        let id = db_b.resolve(&Oid::new("cpu", "HDL_model", 1)).unwrap();
        db_b.set_prop(id, "sim_result", Value::from_atom("bad"))
            .unwrap();
        let (only_a, only_b) = diff(&db_a, &db_b);
        assert_eq!(only_a, vec!["  sim_result = good"]);
        assert_eq!(only_b, vec!["  sim_result = bad"]);
        let (x, y) = diff(&db_a, &db_a.clone());
        assert!(x.is_empty() && y.is_empty());
    }
}

//! Deterministic, human-readable dumps of the meta-database.
//!
//! DAMOCLES administrators lived in terminals; a stable textual rendering of
//! the whole database doubles as a golden-test format (two databases are
//! equivalent iff their dumps match) and as the CLI's `dump` output.

use std::fmt::Write;

use crate::db::MetaDb;
use crate::link::LinkClass;
use crate::property::Value;

/// Renders every live OID (sorted by triplet) with its properties, followed
/// by every live link (sorted by endpoint triplets).
///
/// The format is stable: equal databases produce byte-equal dumps.
///
/// # Example
///
/// ```
/// use damocles_meta::{dump::dump, MetaDb, Oid, Value};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// let id = db.create_oid(Oid::new("cpu", "schematic", 1))?;
/// db.set_prop(id, "uptodate", Value::Bool(true))?;
/// let text = dump(&db);
/// assert!(text.contains("oid cpu,schematic,1"));
/// assert!(text.contains("uptodate = true"));
/// # Ok(())
/// # }
/// ```
pub fn dump(db: &MetaDb) -> String {
    let mut out = String::new();

    let mut oids: Vec<_> = db.iter_oids().collect();
    oids.sort_by(|a, b| a.1.oid.cmp(&b.1.oid));
    let _ = writeln!(out, "# {} oids, {} links", db.oid_count(), db.link_count());
    for (_, entry) in &oids {
        let _ = writeln!(out, "oid {}", entry.oid);
        for (name, value) in entry.props.iter() {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }

    let mut links: Vec<(String, String, String, String)> = db
        .iter_links()
        .filter_map(|(_, link)| {
            let from = db.oid(link.from).ok()?;
            let to = db.oid(link.to).ok()?;
            let class = match link.class {
                LinkClass::Use => "use",
                LinkClass::Derive => "derive",
            };
            let propagates: Vec<&str> = link.propagates.iter().map(String::as_str).collect();
            Some((
                from.to_string(),
                to.to_string(),
                format!("{class}/{}", link.kind),
                propagates.join(","),
            ))
        })
        .collect();
    links.sort();
    for (from, to, kind, propagates) in links {
        let _ = writeln!(out, "link {from} -> {to} [{kind}] propagates({propagates})");
    }
    out
}

/// Line-level diff of two dumps: `(only_in_a, only_in_b)`.
pub fn diff(a: &MetaDb, b: &MetaDb) -> (Vec<String>, Vec<String>) {
    let dump_a = dump(a);
    let dump_b = dump(b);
    let set_a: std::collections::BTreeSet<&str> = dump_a.lines().collect();
    let set_b: std::collections::BTreeSet<&str> = dump_b.lines().collect();
    (
        set_a.difference(&set_b).map(|s| s.to_string()).collect(),
        set_b.difference(&set_a).map(|s| s.to_string()).collect(),
    )
}

/// Escapes a string for a double-quoted Graphviz DOT identifier — the
/// one DOT quoting rule shared by every renderer (this module's
/// [`to_dot`] and `damocles_flows::viz::blueprint_to_dot`).
pub fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the live design state as a Graphviz DOT digraph: one node per
/// OID, coloured green/red/grey by the truthiness (or absence) of
/// `state_prop`, one edge per link (use links dashed). Served by the
/// command protocol's `Dot` request; `damocles_flows::viz::db_to_dot`
/// re-exports it.
pub fn to_dot(db: &MetaDb, state_prop: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph design_state {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=box, style=filled, fontname=\"monospace\"];"
    );
    for (_, entry) in db.iter_oids() {
        let color = match entry.props.get(state_prop) {
            Some(v) if v.is_truthy() => "palegreen",
            Some(_) => "lightcoral",
            None => "lightgrey",
        };
        let state = entry
            .props
            .get(state_prop)
            .map(Value::as_atom)
            .unwrap_or_else(|| "untracked".to_string());
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}={}\", fillcolor={}];",
            dot_escape(&entry.oid.to_string()),
            dot_escape(&entry.oid.to_string()),
            dot_escape(state_prop),
            dot_escape(&state),
            color
        );
    }
    for (_, link) in db.iter_links() {
        let (Ok(from), Ok(to)) = (db.oid(link.from), db.oid(link.to)) else {
            continue;
        };
        let style = match link.class {
            LinkClass::Use => "dashed",
            LinkClass::Derive => "solid",
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
            dot_escape(&from.to_string()),
            dot_escape(&to.to_string()),
            dot_escape(link.kind.as_keyword()),
            style
        );
    }
    out.push_str("}\n");
    out
}

/// A propagation edge that fired during a traced wave, tagged with the
/// trace step that fired it.
///
/// The meta-database knows nothing about the engine's trace format; the
/// inspector (`damocles_inspect`) maps engine `fire` trace records down to
/// this plain struct so [`to_dot_diff`] can annotate the rendered edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredLink {
    /// Source OID triplet, as rendered by `Oid::to_string`.
    pub from: String,
    /// Destination OID triplet.
    pub to: String,
    /// Event name that travelled the link.
    pub event: String,
    /// 0-based step number within the trace slice being rendered.
    pub step: u64,
}

/// Renders a before/after pair of database images as one DOT digraph —
/// the flow-inspector view of "what did this slice of history do".
///
/// Nodes come from the union of both images. A node whose property set
/// changed is outlined in orange with every changed property shown as
/// `name: old -> new` (`∅` stands for absent); created nodes are bold,
/// removed nodes dotted. Fill colour tracks `state_prop` truthiness in
/// the *after* image, exactly as in [`to_dot`]. Edges come from the
/// after image; edges matched by a [`FiredLink`] are drawn orange and
/// labelled with their trace step numbers.
pub fn to_dot_diff(
    before: &MetaDb,
    after: &MetaDb,
    state_prop: &str,
    fired: &[FiredLink],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph design_diff {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=box, style=filled, fontname=\"monospace\"];"
    );

    // Union of OID triplets, sorted for a stable rendering.
    let mut names: Vec<String> = after
        .iter_oids()
        .map(|(_, e)| e.oid.to_string())
        .chain(before.iter_oids().map(|(_, e)| e.oid.to_string()))
        .collect();
    names.sort();
    names.dedup();

    for name in &names {
        let oid: crate::oid::Oid = match name.parse() {
            Ok(o) => o,
            Err(_) => continue,
        };
        let after_id = after.resolve(&oid);
        let before_id = before.resolve(&oid);
        match (before_id, after_id) {
            (Some(_), None) => {
                // Removed between the two cursors.
                let _ = writeln!(
                    out,
                    "  \"{}\" [label=\"{}\\n(removed)\", style=\"filled,dotted\", fillcolor=white];",
                    dot_escape(name),
                    dot_escape(name),
                );
            }
            (before_id, Some(aid)) => {
                let entry = match after.entry(aid) {
                    Ok(e) => e,
                    Err(_) => continue,
                };
                let fill = match entry.props.get(state_prop) {
                    Some(v) if v.is_truthy() => "palegreen",
                    Some(_) => "lightcoral",
                    None => "lightgrey",
                };
                // Collect property-level changes against the before image.
                let mut changes: Vec<String> = Vec::new();
                for (prop, value) in entry.props.iter() {
                    let old = before_id
                        .and_then(|bid| before.get_prop(bid, prop).ok().flatten())
                        .map(Value::as_atom);
                    match old {
                        Some(old) if old == value.as_atom() => {}
                        Some(old) => changes.push(format!("{prop}: {old} -> {value}")),
                        None => changes.push(format!("{prop}: \u{2205} -> {value}")),
                    }
                }
                if let Some(bid) = before_id {
                    if let Ok(props) = before.props(bid) {
                        for (prop, old) in props.iter() {
                            if entry.props.get(prop).is_none() {
                                changes.push(format!("{prop}: {old} -> \u{2205}"));
                            }
                        }
                    }
                }
                changes.sort();
                let created = before_id.is_none();
                let mut label = dot_escape(name);
                if created {
                    label.push_str("\\n(created)");
                }
                for change in &changes {
                    label.push_str("\\n");
                    label.push_str(&dot_escape(change));
                }
                let extra = if created {
                    ", penwidth=3, color=orange, fontname=\"monospace bold\""
                } else if changes.is_empty() {
                    ""
                } else {
                    ", penwidth=3, color=orange"
                };
                let _ = writeln!(
                    out,
                    "  \"{}\" [label=\"{}\", fillcolor={}{}];",
                    dot_escape(name),
                    label,
                    fill,
                    extra
                );
            }
            (None, None) => {}
        }
    }

    let mut links: Vec<(String, String, String, &'static str)> = after
        .iter_links()
        .filter_map(|(_, link)| {
            let from = after.oid(link.from).ok()?;
            let to = after.oid(link.to).ok()?;
            let style = match link.class {
                LinkClass::Use => "dashed",
                LinkClass::Derive => "solid",
            };
            Some((
                from.to_string(),
                to.to_string(),
                link.kind.as_keyword().to_string(),
                style,
            ))
        })
        .collect();
    links.sort();
    for (from, to, kind, style) in links {
        let steps: Vec<String> = fired
            .iter()
            .filter(|f| f.from == from && f.to == to)
            .map(|f| dot_escape(&format!("step {}: {}", f.step, f.event)))
            .collect();
        if steps.is_empty() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
                dot_escape(&from),
                dot_escape(&to),
                dot_escape(&kind),
                style
            );
        } else {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\\n{}\", style={}, color=orange, penwidth=2];",
                dot_escape(&from),
                dot_escape(&to),
                dot_escape(&kind),
                steps.join("\\n"),
                style
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use crate::oid::Oid;
    use crate::property::Value;

    fn sample() -> MetaDb {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let b = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        db.set_prop(a, "sim_result", Value::from_atom("good"))
            .unwrap();
        db.add_link_with(a, b, LinkClass::Derive, LinkKind::DeriveFrom, ["outofdate"])
            .unwrap();
        db
    }

    #[test]
    fn dump_is_deterministic_and_complete() {
        let db = sample();
        let d1 = dump(&db);
        let d2 = dump(&db.clone());
        assert_eq!(d1, d2);
        assert!(d1.contains("# 2 oids, 1 links"));
        assert!(d1.contains("oid cpu,HDL_model,1"));
        assert!(d1.contains("sim_result = good"));
        assert!(d1.contains(
            "link cpu,HDL_model,1 -> cpu,schematic,1 [derive/derive_from] propagates(outofdate)"
        ));
    }

    #[test]
    fn dump_orders_by_triplet_not_insertion() {
        let mut db = MetaDb::new();
        db.create_oid(Oid::new("z", "v", 1)).unwrap();
        db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let d = dump(&db);
        let a_pos = d.find("oid a,v,1").unwrap();
        let z_pos = d.find("oid z,v,1").unwrap();
        assert!(a_pos < z_pos);
    }

    #[test]
    fn dot_diff_highlights_changes_and_fired_links() {
        let before = sample();
        let mut after = sample();
        let id = after.resolve(&Oid::new("cpu", "HDL_model", 1)).unwrap();
        after
            .set_prop(id, "sim_result", Value::from_atom("bad"))
            .unwrap();
        after.create_oid(Oid::new("cpu", "netlist", 1)).unwrap();
        let fired = vec![FiredLink {
            from: "cpu,HDL_model,1".to_string(),
            to: "cpu,schematic,1".to_string(),
            event: "modified".to_string(),
            step: 3,
        }];
        let dot = to_dot_diff(&before, &after, "sim_result", &fired);
        // Changed prop shows old -> new and the node is outlined.
        assert!(dot.contains("sim_result: good -> bad"));
        assert!(dot.contains("penwidth=3, color=orange"));
        // New node is marked created.
        assert!(dot.contains("(created)"));
        // The fired link carries its step annotation and stands out.
        assert!(dot.contains("step 3: modified"));
        assert!(dot.contains("color=orange, penwidth=2"));
        // Unchanged nodes are not outlined: the schematic line has no penwidth.
        let schematic = dot
            .lines()
            .find(|l| l.contains("\"cpu,schematic,1\" [label"))
            .unwrap();
        assert!(!schematic.contains("penwidth"));
    }

    #[test]
    fn dot_diff_marks_removed_oids() {
        let before = sample();
        let mut after = sample();
        let id = after.resolve(&Oid::new("cpu", "schematic", 1)).unwrap();
        after.delete_oid(id).unwrap();
        let dot = to_dot_diff(&before, &after, "sim_result", &[]);
        assert!(dot.contains("(removed)"));
        assert!(dot.contains("style=\"filled,dotted\""));
        // Identical images produce no orange anywhere.
        let quiet = to_dot_diff(&before, &before.clone(), "sim_result", &[]);
        assert!(!quiet.contains("orange"));
        assert!(!quiet.contains("removed"));
    }

    #[test]
    fn diff_finds_changes() {
        let db_a = sample();
        let mut db_b = sample();
        let id = db_b.resolve(&Oid::new("cpu", "HDL_model", 1)).unwrap();
        db_b.set_prop(id, "sim_result", Value::from_atom("bad"))
            .unwrap();
        let (only_a, only_b) = diff(&db_a, &db_b);
        assert_eq!(only_a, vec!["  sim_result = good"]);
        assert_eq!(only_b, vec!["  sim_result = bad"]);
        let (x, y) = diff(&db_a, &db_a.clone());
        assert!(x.is_empty() && y.is_empty());
    }
}

//! OID triplets: block-name × view-type × version.
//!
//! "To each design object corresponds a meta-data object (referenced by an
//! OID, Object Identifier), which is defined by a triplet of block-name,
//! view-type and version number." — Section 2.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::MetaError;

/// A design block name, e.g. `cpu` or `reg`.
///
/// Block names are case-preserving but compared case-sensitively, matching
/// the paper's examples which freely mix `CPU` and `cpu`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockName(String);

impl BlockName {
    /// Creates a block name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains a comma (the wire-format
    /// separator); use [`BlockName::try_new`] for fallible construction.
    pub fn new(name: impl Into<String>) -> Self {
        Self::try_new(name).expect("invalid block name")
    }

    /// Fallible constructor validating the wire-format constraints.
    pub fn try_new(name: impl Into<String>) -> Result<Self, MetaError> {
        let name = name.into();
        validate_component(&name, "block name")?;
        Ok(BlockName(name))
    }

    /// The block name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BlockName {
    fn from(s: &str) -> Self {
        BlockName::new(s)
    }
}

/// A design view type, e.g. `HDL_model`, `schematic`, `netlist`, `layout`.
///
/// "OIDs are instances of views defined in the BluePrint" — Section 3.2.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewType(String);

impl ViewType {
    /// Creates a view type.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains a comma; use
    /// [`ViewType::try_new`] for fallible construction.
    pub fn new(name: impl Into<String>) -> Self {
        Self::try_new(name).expect("invalid view type")
    }

    /// Fallible constructor validating the wire-format constraints.
    pub fn try_new(name: impl Into<String>) -> Result<Self, MetaError> {
        let name = name.into();
        validate_component(&name, "view type")?;
        Ok(ViewType(name))
    }

    /// The view type as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ViewType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ViewType {
    fn from(s: &str) -> Self {
        ViewType::new(s)
    }
}

fn validate_component(s: &str, what: &str) -> Result<(), MetaError> {
    if s.is_empty() {
        return Err(MetaError::OidParse {
            reason: format!("{what} is empty"),
            input: s.to_string(),
        });
    }
    if s.contains(',') || s.contains(char::is_whitespace) {
        return Err(MetaError::OidParse {
            reason: format!("{what} contains a separator character"),
            input: s.to_string(),
        });
    }
    Ok(())
}

/// An Object Identifier: the `<block, view, version>` triplet of Section 2.
///
/// Parsed and displayed in the paper's wire form `block,view,version` (as in
/// `postEvent ckin up reg,verilog,4`); the prose form `<CPU.HDL_model.1>` is
/// accepted by [`Oid::from_str`] as well.
///
/// # Example
///
/// ```
/// use damocles_meta::Oid;
///
/// let oid: Oid = "reg,verilog,4".parse()?;
/// assert_eq!(oid.block.as_str(), "reg");
/// assert_eq!(oid.version, 4);
/// assert_eq!(oid.to_string(), "reg,verilog,4");
/// # Ok::<(), damocles_meta::MetaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Oid {
    /// The design block this object describes.
    pub block: BlockName,
    /// The representation (design view) of the block.
    pub view: ViewType,
    /// Version number within the `(block, view)` chain; the paper counts
    /// from 1.
    pub version: u32,
}

impl Oid {
    /// Creates an OID triplet.
    ///
    /// # Panics
    ///
    /// Panics if `block` or `view` are invalid component names; use
    /// [`Oid::try_new`] for fallible construction.
    pub fn new(block: impl Into<String>, view: impl Into<String>, version: u32) -> Self {
        Self::try_new(block, view, version).expect("invalid OID component")
    }

    /// Fallible constructor.
    pub fn try_new(
        block: impl Into<String>,
        view: impl Into<String>,
        version: u32,
    ) -> Result<Self, MetaError> {
        Ok(Oid {
            block: BlockName::try_new(block)?,
            view: ViewType::try_new(view)?,
            version,
        })
    }

    /// The same block/view at a different version.
    pub fn at_version(&self, version: u32) -> Oid {
        Oid {
            block: self.block.clone(),
            view: self.view.clone(),
            version,
        }
    }

    /// The `(block, view)` pair identifying this OID's version chain.
    pub fn chain(&self) -> (&BlockName, &ViewType) {
        (&self.block, &self.view)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{},{}", self.block, self.view, self.version)
    }
}

impl FromStr for Oid {
    type Err = MetaError;

    /// Parses `block,view,version` (wire form) or `block.view.version`
    /// (prose form, optionally wrapped in `<`…`>`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_start_matches('<').trim_end_matches('>');
        let sep = if trimmed.contains(',') { ',' } else { '.' };
        let parts: Vec<&str> = trimmed.split(sep).collect();
        if parts.len() != 3 {
            return Err(MetaError::OidParse {
                reason: format!("expected 3 components, found {}", parts.len()),
                input: s.to_string(),
            });
        }
        let version: u32 = parts[2].trim().parse().map_err(|_| MetaError::OidParse {
            reason: format!("version `{}` is not a number", parts[2]),
            input: s.to_string(),
        })?;
        Oid::try_new(parts[0].trim(), parts[1].trim(), version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let oid = Oid::new("reg", "verilog", 4);
        let parsed: Oid = oid.to_string().parse().unwrap();
        assert_eq!(parsed, oid);
    }

    #[test]
    fn prose_form_parses() {
        let oid: Oid = "<CPU.HDL_model.1>".parse().unwrap();
        assert_eq!(oid, Oid::new("CPU", "HDL_model", 1));
    }

    #[test]
    fn rejects_two_components() {
        let err = "cpu,schematic".parse::<Oid>().unwrap_err();
        assert!(matches!(err, MetaError::OidParse { .. }));
    }

    #[test]
    fn rejects_non_numeric_version() {
        let err = "cpu,schematic,latest".parse::<Oid>().unwrap_err();
        assert!(matches!(err, MetaError::OidParse { .. }));
    }

    #[test]
    fn rejects_empty_block() {
        assert!(BlockName::try_new("").is_err());
        assert!(ViewType::try_new("a b").is_err());
        assert!(BlockName::try_new("a,b").is_err());
    }

    #[test]
    fn at_version_preserves_chain() {
        let v1 = Oid::new("alu", "GDSII", 5);
        let v2 = v1.at_version(6);
        assert_eq!(v2.block, v1.block);
        assert_eq!(v2.view, v1.view);
        assert_eq!(v2.version, 6);
    }

    #[test]
    fn ordering_is_block_view_version() {
        let a = Oid::new("alu", "GDSII", 5);
        let b = Oid::new("alu", "GDSII", 6);
        let c = Oid::new("cpu", "GDSII", 1);
        assert!(a < b && b < c);
    }
}

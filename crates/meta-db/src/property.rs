//! Property/value annotation of OIDs and Links.
//!
//! "A Link object can be annotated by property/value pairs" and "the design
//! state of an OID is given by the value of the OID's property" — Sections 2
//! and 3.2. The paper's values are shell-flavoured atoms (`ok`, `bad`,
//! `is_equiv`, `true`, `4 errors`); we parse them into a small typed lattice
//! while keeping string comparison semantics for mixed types.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

/// A property value: a typed atom.
///
/// Atoms are classified on construction: `true`/`false` become [`Value::Bool`],
/// decimal integers become [`Value::Int`], everything else stays a
/// [`Value::Str`]. Comparison between different types falls back to the
/// canonical string form, matching the untyped flavour of the paper's rule
/// language (where `$uptodate == true` compares a stored atom with a bare
/// word).
///
/// # Example
///
/// ```
/// use damocles_meta::Value;
///
/// assert_eq!(Value::from_atom("true"), Value::Bool(true));
/// assert_eq!(Value::from_atom("4"), Value::Int(4));
/// assert_eq!(Value::from_atom("good"), Value::Str("good".into()));
/// // Mixed-type comparison goes through the canonical string form:
/// assert!(Value::Int(4).loose_eq(&Value::Str("4".into())));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A boolean atom (`true` / `false`).
    Bool(bool),
    /// A signed integer atom.
    Int(i64),
    /// Any other atom or free text.
    Str(String),
}

impl Value {
    /// Classifies a textual atom into a typed value.
    pub fn from_atom(atom: &str) -> Value {
        match atom {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => match atom.parse::<i64>() {
                Ok(n) => Value::Int(n),
                Err(_) => Value::Str(atom.to_string()),
            },
        }
    }

    /// The canonical string form (what a shell wrapper would see).
    pub fn as_atom(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// Truthiness for rule conditions: `Bool` is itself, `Int` is non-zero,
    /// `Str` is non-empty and not `"false"`/`"0"`.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(n) => *n != 0,
            Value::Str(s) => !s.is_empty() && s != "false" && s != "0",
        }
    }

    /// Equality with cross-type coercion through the canonical string form.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => self.as_atom() == other.as_atom(),
        }
    }

    /// Whether this value is the boolean `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_atom())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// An ordered property map, as attached to OIDs and Links.
///
/// Ordered (`BTreeMap`) so snapshots and audit dumps are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyMap {
    entries: BTreeMap<String, Value>,
}

impl PropertyMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.entries.insert(name.into(), value.into())
    }

    /// Looks up a property.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Removes a property, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Property names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

impl FromIterator<(String, Value)> for PropertyMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        PropertyMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for PropertyMap {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

// ---------------------------------------------------------------------
// The property-hash-sharded secondary index
// ---------------------------------------------------------------------

/// Number of property-name shards in a [`PropIndex`].
///
/// Fixed, not tunable: the shard of a name must be a pure function of the
/// name so concurrently produced [`IndexDelta`] batches can be bucketed
/// without coordination. Sixteen shards comfortably out-number any worker
/// count the wave scheduler runs (workers chunk the shard array), while
/// keeping the per-shard maps dense enough to stay cache-friendly.
pub const PROP_INDEX_SHARDS: usize = 16;

/// The shard a property name belongs to: FNV-1a over the name bytes,
/// reduced modulo [`PROP_INDEX_SHARDS`]. Deterministic across runs and
/// platforms (no `RandomState`), so shard routing never perturbs results.
pub fn prop_shard(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    (h % PROP_INDEX_SHARDS as u64) as usize
}

/// One property write's effect on the secondary index, decoupled from the
/// write itself so storage mutation and index maintenance can run in
/// different phases (and on different threads). `old` is the value the
/// storage write displaced — exactly what the serial path would have
/// unindexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDelta<Id> {
    /// The object the write landed on.
    pub id: Id,
    /// The property name (routes the delta via [`prop_shard`]).
    pub name: String,
    /// The displaced value, if the property existed.
    pub old: Option<Value>,
    /// The value written.
    pub new: Value,
}

/// One shard of a [`PropIndex`]: `name → value → ids holding exactly that
/// value`. All names mapping here share the same [`prop_shard`] bucket.
#[derive(Debug, Clone)]
pub struct PropIndexShard<Id> {
    by_name: HashMap<String, HashMap<Value, BTreeSet<Id>>>,
}

impl<Id> Default for PropIndexShard<Id> {
    fn default() -> Self {
        PropIndexShard {
            by_name: HashMap::new(),
        }
    }
}

impl<Id: Ord + Copy> PropIndexShard<Id> {
    /// Records that `id` now holds `value` for `name`.
    pub fn insert(&mut self, name: &str, value: Value, id: Id) {
        // `get_mut` first so the steady state (an already-indexed property
        // name) performs no String allocation.
        let by_value = match self.by_name.get_mut(name) {
            Some(m) => m,
            None => self.by_name.entry(name.to_string()).or_default(),
        };
        by_value.entry(value).or_default().insert(id);
    }

    /// Drops `(id, value)` for `name`, pruning empty value buckets and
    /// empty name entries so the index never outgrows the live property
    /// set.
    pub fn remove(&mut self, name: &str, value: &Value, id: Id) {
        if let Some(by_value) = self.by_name.get_mut(name) {
            if let Some(set) = by_value.get_mut(value) {
                set.remove(&id);
                if set.is_empty() {
                    by_value.remove(value);
                }
            }
            if by_value.is_empty() {
                self.by_name.remove(name);
            }
        }
    }

    /// Applies one displaced-value delta: unindex the old value (when it
    /// differs), index the new — the same two steps the serial write path
    /// performs inline.
    pub fn apply(&mut self, delta: IndexDelta<Id>) {
        if let Some(old) = &delta.old {
            if *old != delta.new {
                self.remove(&delta.name, old, delta.id);
            }
        }
        self.insert(&delta.name, delta.new, delta.id);
    }

    /// The ids holding exactly `value` for `name`, if any.
    pub fn get(&self, name: &str, value: &Value) -> Option<&BTreeSet<Id>> {
        self.by_name
            .get(name)
            .and_then(|by_value| by_value.get(value))
    }
}

/// The `(property, value) → ids` secondary index, sharded by property-name
/// hash so index maintenance parallelizes with the writes that feed it.
///
/// Correctness under sharded application rests on two facts:
///
/// * deltas for one property name always land in one shard
///   ([`prop_shard`] is a pure function of the name), so a shard sees
///   *every* operation affecting its names;
/// * concurrent producers (wave worker lanes) write disjoint id sets, so
///   within one `(name, value)` bucket their set inserts/removes commute
///   — applying lane batches in any order yields the same index as the
///   serial interleaving.
#[derive(Debug, Clone)]
pub struct PropIndex<Id> {
    shards: Vec<PropIndexShard<Id>>,
}

impl<Id> Default for PropIndex<Id> {
    fn default() -> Self {
        PropIndex {
            shards: (0..PROP_INDEX_SHARDS)
                .map(|_| PropIndexShard::default())
                .collect(),
        }
    }
}

impl<Id: Ord + Copy> PropIndex<Id> {
    /// Creates an empty index with [`PROP_INDEX_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `id` now holds `value` for `name`.
    pub fn insert(&mut self, name: &str, value: Value, id: Id) {
        self.shards[prop_shard(name)].insert(name, value, id);
    }

    /// Drops `(id, value)` for `name`, pruning empty buckets.
    pub fn remove(&mut self, name: &str, value: &Value, id: Id) {
        self.shards[prop_shard(name)].remove(name, value, id);
    }

    /// The ids holding exactly `value` for `name`, if any.
    pub fn get(&self, name: &str, value: &Value) -> Option<&BTreeSet<Id>> {
        self.shards[prop_shard(name)].get(name, value)
    }

    /// The shard array, for parallel delta application: callers split it
    /// with `chunks_mut` and hand each chunk (with the matching delta
    /// buckets) to one thread — plain disjoint borrows, no unsafe.
    pub fn shards_mut(&mut self) -> &mut [PropIndexShard<Id>] {
        &mut self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_classification() {
        assert_eq!(Value::from_atom("true"), Value::Bool(true));
        assert_eq!(Value::from_atom("false"), Value::Bool(false));
        assert_eq!(Value::from_atom("-17"), Value::Int(-17));
        assert_eq!(Value::from_atom("0"), Value::Int(0));
        assert_eq!(Value::from_atom("ok"), Value::Str("ok".into()));
        assert_eq!(Value::from_atom("4 errors"), Value::Str("4 errors".into()));
    }

    #[test]
    fn atom_roundtrip() {
        for atom in ["true", "false", "42", "-1", "good", "not_equiv"] {
            assert_eq!(Value::from_atom(atom).as_atom(), atom);
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Str("ok".into()).is_truthy());
        assert!(!Value::Str("".into()).is_truthy());
        assert!(!Value::Str("false".into()).is_truthy());
    }

    #[test]
    fn loose_eq_coerces_across_types() {
        assert!(Value::Int(4).loose_eq(&Value::Str("4".into())));
        assert!(Value::Bool(true).loose_eq(&Value::Str("true".into())));
        assert!(!Value::Bool(true).loose_eq(&Value::Str("TRUE".into())));
        assert!(Value::Str("ok".into()).loose_eq(&Value::Str("ok".into())));
    }

    #[test]
    fn map_set_get_remove() {
        let mut m = PropertyMap::new();
        assert!(m.set("DRC", Value::from_atom("bad")).is_none());
        assert_eq!(
            m.set("DRC", Value::from_atom("ok")),
            Some(Value::Str("bad".into()))
        );
        assert_eq!(m.get("DRC"), Some(&Value::Str("ok".into())));
        assert_eq!(m.remove("DRC"), Some(Value::Str("ok".into())));
        assert!(m.is_empty());
    }

    #[test]
    fn map_iterates_in_name_order() {
        let mut m = PropertyMap::new();
        m.set("z", 1i64);
        m.set("a", 2i64);
        m.set("m", 3i64);
        let names: Vec<&str> = m.names().collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn map_collect_and_extend() {
        let m: PropertyMap = vec![("a".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(m.len(), 1);
        let mut m2 = m.clone();
        m2.extend(vec![("b".to_string(), Value::Int(2))]);
        assert_eq!(m2.len(), 2);
    }

    #[test]
    fn prop_shard_is_stable_and_in_range() {
        for name in ["uptodate", "state", "sim_result", "", "a", "DRC"] {
            let s = prop_shard(name);
            assert!(s < PROP_INDEX_SHARDS);
            assert_eq!(s, prop_shard(name), "routing must be deterministic");
        }
    }

    #[test]
    fn prop_index_tracks_inserts_moves_and_removals() {
        let mut idx: PropIndex<u32> = PropIndex::new();
        idx.insert("drc", Value::from_atom("ok"), 1);
        idx.insert("drc", Value::from_atom("ok"), 2);
        let hits: Vec<u32> = idx
            .get("drc", &Value::from_atom("ok"))
            .unwrap()
            .iter()
            .copied()
            .collect();
        assert_eq!(hits, vec![1, 2]);

        // A displaced-value delta moves the id between buckets.
        idx.shards_mut()[prop_shard("drc")].apply(IndexDelta {
            id: 1,
            name: "drc".to_string(),
            old: Some(Value::from_atom("ok")),
            new: Value::from_atom("bad"),
        });
        assert_eq!(
            idx.get("drc", &Value::from_atom("ok")).unwrap().len(),
            1,
            "old bucket keeps only the untouched id"
        );
        assert!(idx
            .get("drc", &Value::from_atom("bad"))
            .unwrap()
            .contains(&1));

        // Removal prunes empty buckets all the way up.
        idx.remove("drc", &Value::from_atom("bad"), 1);
        idx.remove("drc", &Value::from_atom("ok"), 2);
        assert!(idx.get("drc", &Value::from_atom("ok")).is_none());
        assert!(idx.get("drc", &Value::from_atom("bad")).is_none());
    }

    #[test]
    fn lane_batches_commute_within_a_shard() {
        // Two "lanes" writing disjoint ids: applying their delta batches
        // in either order yields the same index content.
        let delta = |id: u32, v: &str| IndexDelta {
            id,
            name: "state".to_string(),
            old: None,
            new: Value::from_atom(v),
        };
        let lane_a = vec![delta(1, "ok"), delta(2, "bad")];
        let lane_b = vec![delta(3, "ok"), delta(4, "bad")];
        let build = |first: &[IndexDelta<u32>], second: &[IndexDelta<u32>]| {
            let mut idx: PropIndex<u32> = PropIndex::new();
            for d in first.iter().chain(second) {
                idx.shards_mut()[prop_shard(&d.name)].apply(d.clone());
            }
            let ok: Vec<u32> = idx
                .get("state", &Value::from_atom("ok"))
                .unwrap()
                .iter()
                .copied()
                .collect();
            let bad: Vec<u32> = idx
                .get("state", &Value::from_atom("bad"))
                .unwrap()
                .iter()
                .copied()
                .collect();
            (ok, bad)
        };
        assert_eq!(build(&lane_a, &lane_b), build(&lane_b, &lane_a));
    }
}

//! Property/value annotation of OIDs and Links.
//!
//! "A Link object can be annotated by property/value pairs" and "the design
//! state of an OID is given by the value of the OID's property" — Sections 2
//! and 3.2. The paper's values are shell-flavoured atoms (`ok`, `bad`,
//! `is_equiv`, `true`, `4 errors`); we parse them into a small typed lattice
//! while keeping string comparison semantics for mixed types.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A property value: a typed atom.
///
/// Atoms are classified on construction: `true`/`false` become [`Value::Bool`],
/// decimal integers become [`Value::Int`], everything else stays a
/// [`Value::Str`]. Comparison between different types falls back to the
/// canonical string form, matching the untyped flavour of the paper's rule
/// language (where `$uptodate == true` compares a stored atom with a bare
/// word).
///
/// # Example
///
/// ```
/// use damocles_meta::Value;
///
/// assert_eq!(Value::from_atom("true"), Value::Bool(true));
/// assert_eq!(Value::from_atom("4"), Value::Int(4));
/// assert_eq!(Value::from_atom("good"), Value::Str("good".into()));
/// // Mixed-type comparison goes through the canonical string form:
/// assert!(Value::Int(4).loose_eq(&Value::Str("4".into())));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A boolean atom (`true` / `false`).
    Bool(bool),
    /// A signed integer atom.
    Int(i64),
    /// Any other atom or free text.
    Str(String),
}

impl Value {
    /// Classifies a textual atom into a typed value.
    pub fn from_atom(atom: &str) -> Value {
        match atom {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => match atom.parse::<i64>() {
                Ok(n) => Value::Int(n),
                Err(_) => Value::Str(atom.to_string()),
            },
        }
    }

    /// The canonical string form (what a shell wrapper would see).
    pub fn as_atom(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// Truthiness for rule conditions: `Bool` is itself, `Int` is non-zero,
    /// `Str` is non-empty and not `"false"`/`"0"`.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(n) => *n != 0,
            Value::Str(s) => !s.is_empty() && s != "false" && s != "0",
        }
    }

    /// Equality with cross-type coercion through the canonical string form.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => self.as_atom() == other.as_atom(),
        }
    }

    /// Whether this value is the boolean `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_atom())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// An ordered property map, as attached to OIDs and Links.
///
/// Ordered (`BTreeMap`) so snapshots and audit dumps are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyMap {
    entries: BTreeMap<String, Value>,
}

impl PropertyMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.entries.insert(name.into(), value.into())
    }

    /// Looks up a property.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Removes a property, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Property names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

impl FromIterator<(String, Value)> for PropertyMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        PropertyMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for PropertyMap {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_classification() {
        assert_eq!(Value::from_atom("true"), Value::Bool(true));
        assert_eq!(Value::from_atom("false"), Value::Bool(false));
        assert_eq!(Value::from_atom("-17"), Value::Int(-17));
        assert_eq!(Value::from_atom("0"), Value::Int(0));
        assert_eq!(Value::from_atom("ok"), Value::Str("ok".into()));
        assert_eq!(Value::from_atom("4 errors"), Value::Str("4 errors".into()));
    }

    #[test]
    fn atom_roundtrip() {
        for atom in ["true", "false", "42", "-1", "good", "not_equiv"] {
            assert_eq!(Value::from_atom(atom).as_atom(), atom);
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Str("ok".into()).is_truthy());
        assert!(!Value::Str("".into()).is_truthy());
        assert!(!Value::Str("false".into()).is_truthy());
    }

    #[test]
    fn loose_eq_coerces_across_types() {
        assert!(Value::Int(4).loose_eq(&Value::Str("4".into())));
        assert!(Value::Bool(true).loose_eq(&Value::Str("true".into())));
        assert!(!Value::Bool(true).loose_eq(&Value::Str("TRUE".into())));
        assert!(Value::Str("ok".into()).loose_eq(&Value::Str("ok".into())));
    }

    #[test]
    fn map_set_get_remove() {
        let mut m = PropertyMap::new();
        assert!(m.set("DRC", Value::from_atom("bad")).is_none());
        assert_eq!(
            m.set("DRC", Value::from_atom("ok")),
            Some(Value::Str("bad".into()))
        );
        assert_eq!(m.get("DRC"), Some(&Value::Str("ok".into())));
        assert_eq!(m.remove("DRC"), Some(Value::Str("ok".into())));
        assert!(m.is_empty());
    }

    #[test]
    fn map_iterates_in_name_order() {
        let mut m = PropertyMap::new();
        m.set("z", 1i64);
        m.set("a", 2i64);
        m.set("m", 3i64);
        let names: Vec<&str> = m.names().collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn map_collect_and_extend() {
        let m: PropertyMap = vec![("a".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(m.len(), 1);
        let mut m2 = m.clone();
        m2.extend(vec![("b".to_string(), Value::Int(2))]);
        assert_eq!(m2.len(), 2);
    }
}

//! Workspaces: data repositories associated to a meta-database.
//!
//! "DAMOCLES manages data repositories, called workspaces by associating them
//! to a meta-database." — Section 2. The design data itself (HDL text, GDSII
//! streams…) is opaque to the tracking system; we store simulated payloads
//! with a checksum and a logical timestamp so baseline trackers (make-style
//! polling) have something to scan.

use std::collections::HashMap;

use crate::db::{MetaDb, OidId};
use crate::error::MetaError;
use crate::oid::Oid;
use crate::version::VersionHistory;

/// A stored design-data payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignDatum {
    /// Opaque content (simulated design data).
    pub content: Vec<u8>,
    /// FNV-1a checksum of the content.
    pub checksum: u64,
    /// Logical timestamp at store time (workspace-local Lamport counter).
    pub stored_at: u64,
}

/// Check-out bookkeeping for one version chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckoutState {
    /// Designer currently holding the chain, if any.
    pub holder: Option<String>,
    /// Logical timestamp of the last check-out.
    pub since: u64,
}

/// A data repository bound to (but not owning) a [`MetaDb`].
///
/// The workspace implements the promotion model of Section 3.3–3.4: designers
/// *check out* a `(block, view)` chain, modify data locally, and *check in*
/// the result, which creates the next version OID in the meta-database and
/// stores the payload. Posting the `ckin` event (and thus template
/// application and change propagation) is the run-time engine's job, one
/// layer up.
///
/// # Example
///
/// ```
/// use damocles_meta::{MetaDb, Workspace};
///
/// # fn main() -> Result<(), damocles_meta::MetaError> {
/// let mut db = MetaDb::new();
/// let mut ws = Workspace::new("project");
/// let (id, oid) = ws.checkin(&mut db, "cpu", "HDL_model", "yves", b"module cpu;".to_vec())?;
/// assert_eq!(oid.version, 1);
/// assert!(ws.datum(id).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    name: String,
    payloads: HashMap<OidId, DesignDatum>,
    checkouts: HashMap<(String, String), CheckoutState>,
    clock: u64,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new(name: impl Into<String>) -> Self {
        Workspace {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The workspace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current logical time (advances on every store/checkout/checkin).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Number of stored payloads.
    pub fn payload_count(&self) -> usize {
        self.payloads.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Stores a payload for an existing OID without version promotion
    /// (e.g. data produced by a tool for an OID it just created).
    pub fn store(&mut self, id: OidId, content: Vec<u8>) -> &DesignDatum {
        let stored_at = self.tick();
        let checksum = fnv1a(&content);
        self.payloads.entry(id).and_modify(|d| {
            d.content.clone_from(&content);
            d.checksum = checksum;
            d.stored_at = stored_at;
        });
        self.payloads.entry(id).or_insert(DesignDatum {
            content,
            checksum,
            stored_at,
        })
    }

    /// The payload stored for `id`, if any.
    pub fn datum(&self, id: OidId) -> Option<&DesignDatum> {
        self.payloads.get(&id)
    }

    /// Marks `(block, view)` as checked out by `user`.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::CheckoutConflict`] if someone else already holds
    /// the chain. Re-checkout by the same user is idempotent.
    pub fn checkout(
        &mut self,
        db: &MetaDb,
        block: &str,
        view: &str,
        user: &str,
    ) -> Result<(), MetaError> {
        let key = (block.to_string(), view.to_string());
        if let Some(state) = self.checkouts.get(&key) {
            match &state.holder {
                Some(h) if h != user => {
                    let latest = db
                        .latest_version(block, view)
                        .and_then(|id| db.oid(id).ok().cloned())
                        .unwrap_or_else(|| Oid::new(block, view, 0));
                    return Err(MetaError::CheckoutConflict {
                        oid: latest,
                        holder: Some(h.clone()),
                    });
                }
                _ => {}
            }
        }
        let since = self.tick();
        self.checkouts.insert(
            key,
            CheckoutState {
                holder: Some(user.to_string()),
                since,
            },
        );
        Ok(())
    }

    /// Who currently holds `(block, view)`, if anyone.
    pub fn holder(&self, block: &str, view: &str) -> Option<&str> {
        self.checkouts
            .get(&(block.to_string(), view.to_string()))
            .and_then(|s| s.holder.as_deref())
    }

    /// Promotes new design data: creates the next version OID in `db`,
    /// stores the payload, and releases any check-out held by `user`.
    ///
    /// Returns the new address and triplet. The caller is expected to post a
    /// `ckin` event for the new OID so the BluePrint can apply template rules
    /// and propagate changes.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::CheckoutConflict`] if another user holds the
    /// chain.
    pub fn checkin(
        &mut self,
        db: &mut MetaDb,
        block: &str,
        view: &str,
        user: &str,
        content: Vec<u8>,
    ) -> Result<(OidId, Oid), MetaError> {
        let key = (block.to_string(), view.to_string());
        if let Some(state) = self.checkouts.get(&key) {
            if let Some(h) = &state.holder {
                if h != user {
                    let latest = db
                        .latest_version(block, view)
                        .and_then(|id| db.oid(id).ok().cloned())
                        .unwrap_or_else(|| Oid::new(block, view, 0));
                    return Err(MetaError::CheckoutConflict {
                        oid: latest,
                        holder: Some(h.clone()),
                    });
                }
            }
        }
        let version = VersionHistory::of(db, block, view).next_version();
        let oid = Oid::try_new(block, view, version)?;
        let id = db.create_oid(oid.clone())?;
        self.store(id, content);
        if let Some(state) = self.checkouts.get_mut(&key) {
            state.holder = None;
        }
        Ok((id, oid))
    }

    /// Logical timestamps of every stored payload, for timestamp-scanning
    /// baselines: `(address, stored_at)`.
    pub fn timestamps(&self) -> impl Iterator<Item = (OidId, u64)> + '_ {
        self.payloads.iter().map(|(&id, d)| (id, d.stored_at))
    }
}

/// FNV-1a, enough to detect payload changes in simulated design data.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkin_assigns_increasing_versions() {
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let (_, v1) = ws
            .checkin(&mut db, "cpu", "HDL_model", "yves", b"a".to_vec())
            .unwrap();
        let (_, v2) = ws
            .checkin(&mut db, "cpu", "HDL_model", "yves", b"b".to_vec())
            .unwrap();
        assert_eq!(v1.version, 1);
        assert_eq!(v2.version, 2);
    }

    #[test]
    fn checkout_conflict_detected() {
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        ws.checkin(&mut db, "cpu", "schematic", "yves", b"s".to_vec())
            .unwrap();
        ws.checkout(&db, "cpu", "schematic", "yves").unwrap();
        // Same user: idempotent.
        ws.checkout(&db, "cpu", "schematic", "yves").unwrap();
        // Different user: conflict, on both checkout and checkin.
        let err = ws.checkout(&db, "cpu", "schematic", "marc").unwrap_err();
        assert!(matches!(err, MetaError::CheckoutConflict { .. }));
        let err = ws
            .checkin(&mut db, "cpu", "schematic", "marc", b"x".to_vec())
            .unwrap_err();
        assert!(matches!(err, MetaError::CheckoutConflict { .. }));
        assert_eq!(ws.holder("cpu", "schematic"), Some("yves"));
    }

    #[test]
    fn checkin_releases_checkout() {
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        ws.checkout(&db, "cpu", "schematic", "yves").unwrap();
        ws.checkin(&mut db, "cpu", "schematic", "yves", b"s".to_vec())
            .unwrap();
        assert_eq!(ws.holder("cpu", "schematic"), None);
        // Now marc can take it.
        ws.checkout(&db, "cpu", "schematic", "marc").unwrap();
    }

    #[test]
    fn store_updates_checksum_and_time() {
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let (id, _) = ws
            .checkin(&mut db, "cpu", "netlist", "tool", b"v1".to_vec())
            .unwrap();
        let first = ws.datum(id).unwrap().clone();
        ws.store(id, b"v2".to_vec());
        let second = ws.datum(id).unwrap();
        assert_ne!(first.checksum, second.checksum);
        assert!(second.stored_at > first.stored_at);
    }

    #[test]
    fn timestamps_enumerate_payloads() {
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        ws.checkin(&mut db, "a", "v", "u", b"1".to_vec()).unwrap();
        ws.checkin(&mut db, "b", "v", "u", b"2".to_vec()).unwrap();
        assert_eq!(ws.timestamps().count(), 2);
        assert_eq!(ws.payload_count(), 2);
    }

    #[test]
    fn fnv_distinguishes_content() {
        assert_ne!(fnv1a(b"module cpu;"), fnv1a(b"module reg;"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}

//! Links: the relationship objects of the meta-database.
//!
//! "The relationship between the design objects are represented in the
//! meta-database by Links. … DAMOCLES distinguishes between two classes of
//! Links: *use* links which represent hierarchy and *derive* links which
//! represent other relationships. … Each Link has a PROPAGATE property which
//! enumerates events which are allowed to propagate through it." — Section 2.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::arena::ArenaIndex;
use crate::db::OidId;
use crate::intern::{Sym, SymSet};
use crate::property::PropertyMap;

/// Stable database address of a [`Link`].
pub type LinkId = ArenaIndex<Link>;

/// The two link classes of Section 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Hierarchy within a view: parent and child are the same view type
    /// (e.g. `<cpu,SCHEMA,4>` uses `<reg,SCHEMA,2>`).
    Use,
    /// Everything else: derivation, equivalence, depend-on…
    Derive,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LinkClass::Use => "use",
            LinkClass::Derive => "derive",
        })
    }
}

/// The TYPE property of derive links.
///
/// "A link's type is not directly used by the BluePrint. Link types are, in a
/// way, like comments which help the user in visualizing the data flow" —
/// Section 3.2. We still model the four common types the paper enumerates,
/// plus free-form ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Hierarchical decomposition of data.
    Composition,
    /// Ties alternative representations together (the "equivalence plane").
    Equivalence,
    /// Dependence on a tool version or process file.
    DependOn,
    /// A data view derived from another view.
    DeriveFrom,
    /// Project-specific link type.
    Other(String),
}

impl LinkKind {
    /// The canonical keyword used in BluePrint sources.
    pub fn as_keyword(&self) -> &str {
        match self {
            LinkKind::Composition => "composition",
            LinkKind::Equivalence => "equivalence",
            LinkKind::DependOn => "depend_on",
            LinkKind::DeriveFrom => "derive_from",
            LinkKind::Other(s) => s,
        }
    }
}

impl FromStr for LinkKind {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "composition" => LinkKind::Composition,
            "equivalence" => LinkKind::Equivalence,
            "depend_on" => LinkKind::DependOn,
            "derive_from" | "derived" => LinkKind::DeriveFrom,
            other => LinkKind::Other(other.to_string()),
        })
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_keyword())
    }
}

/// Propagation direction of an event through links.
///
/// "The events … can be propagated in either direction through the Link" —
/// Section 2. A link is directed from its *from* end (source / hierarchical
/// parent) to its *to* end (derived object / hierarchical child):
///
/// * [`Direction::Down`] travels `from → to` (source to derived, parent to
///   child) — the direction of `post outofdate down` invalidating derived
///   data.
/// * [`Direction::Up`] travels `to → from` — the direction of
///   `post lvs up` from a layout back to its schematic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From source/parent towards derived/child objects.
    Down,
    /// From derived/child objects back towards their source/parent.
    Up,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Down => Direction::Up,
            Direction::Up => Direction::Down,
        }
    }

    /// The keyword used in event messages (`up` / `down`).
    pub fn as_keyword(self) -> &'static str {
        match self {
            Direction::Down => "down",
            Direction::Up => "up",
        }
    }
}

impl FromStr for Direction {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "up" => Ok(Direction::Up),
            "down" => Ok(Direction::Down),
            other => Err(format!("direction must be `up` or `down`, got `{other}`")),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_keyword())
    }
}

/// A relationship object between two OIDs.
///
/// The PROPAGATE property (`propagates`) and the TYPE property (`kind`) are
/// first-class because the run-time engine consults them on every traversal;
/// arbitrary additional annotation lives in `props`. The PROPAGATE set is
/// held in two synchronized forms — event-name strings for persistence and
/// display, and a [`SymSet`] bitset over [`MetaDb`](crate::MetaDb)'s interned
/// event universe for the hot propagation filter — which is why the fields
/// are private and all mutation goes through
/// [`MetaDb::allow_event`](crate::MetaDb::allow_event) /
/// [`MetaDb::add_link_with`](crate::MetaDb::add_link_with).
#[derive(Debug, Clone)]
pub struct Link {
    /// Source / hierarchical parent end.
    pub from: OidId,
    /// Derived / hierarchical child end.
    pub to: OidId,
    /// Use (hierarchy) or derive (everything else).
    pub class: LinkClass,
    /// The TYPE property ("like comments", not interpreted by the engine).
    pub kind: LinkKind,
    /// The PROPAGATE property: names of events allowed through this link.
    pub(crate) propagates: BTreeSet<String>,
    /// The PROPAGATE property as a bitset over the owning database's
    /// interned event universe. Kept in lock-step with `propagates`.
    pub(crate) propagates_syms: SymSet,
    /// Free-form property/value annotation.
    pub props: PropertyMap,
}

impl Link {
    /// Creates a link with an empty PROPAGATE set and no annotation.
    pub fn new(from: OidId, to: OidId, class: LinkClass, kind: LinkKind) -> Self {
        Link {
            from,
            to,
            class,
            kind,
            propagates: BTreeSet::new(),
            propagates_syms: SymSet::new(),
            props: PropertyMap::new(),
        }
    }

    /// The PROPAGATE set: names of events allowed through this link.
    pub fn propagates(&self) -> &BTreeSet<String> {
        &self.propagates
    }

    /// Whether `event` may travel through this link at all.
    pub fn allows(&self, event: &str) -> bool {
        self.propagates.contains(event)
    }

    /// Bitset form of [`Link::allows`] over the owning database's interned
    /// event universe: one word test, no string comparison. `sym` must come
    /// from the same database's interner (see
    /// [`MetaDb::event_sym`](crate::MetaDb::event_sym)).
    pub fn allows_sym(&self, sym: Sym) -> bool {
        self.propagates_syms.contains(sym)
    }

    /// The OID reached when traversing this link in `dir`, starting from
    /// `origin` — or `None` if the link does not leave `origin` in that
    /// direction.
    ///
    /// Down leaves the `from` end towards `to`; up leaves the `to` end
    /// towards `from`.
    pub fn traverse_from(&self, origin: OidId, dir: Direction) -> Option<OidId> {
        match dir {
            Direction::Down if self.from == origin => Some(self.to),
            Direction::Up if self.to == origin => Some(self.from),
            _ => None,
        }
    }

    /// The end opposite to `origin`, regardless of direction, if `origin` is
    /// an end of this link.
    pub fn other_end(&self, origin: OidId) -> Option<OidId> {
        if self.from == origin {
            Some(self.to)
        } else if self.to == origin {
            Some(self.from)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::MetaDb;
    use crate::oid::Oid;

    fn two_oids() -> (MetaDb, OidId, OidId) {
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        let b = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        (db, a, b)
    }

    #[test]
    fn traverse_down_follows_from_to() {
        let (_db, a, b) = two_oids();
        let link = Link::new(a, b, LinkClass::Derive, LinkKind::DeriveFrom);
        assert_eq!(link.traverse_from(a, Direction::Down), Some(b));
        assert_eq!(link.traverse_from(a, Direction::Up), None);
        assert_eq!(link.traverse_from(b, Direction::Up), Some(a));
        assert_eq!(link.traverse_from(b, Direction::Down), None);
    }

    #[test]
    fn other_end_is_symmetric() {
        let (_db, a, b) = two_oids();
        let link = Link::new(a, b, LinkClass::Use, LinkKind::Composition);
        assert_eq!(link.other_end(a), Some(b));
        assert_eq!(link.other_end(b), Some(a));
    }

    #[test]
    fn propagate_filter() {
        let (_db, a, b) = two_oids();
        let mut link = Link::new(a, b, LinkClass::Derive, LinkKind::DeriveFrom);
        assert!(!link.allows("outofdate"));
        link.propagates.insert("outofdate".into());
        assert!(link.allows("outofdate"));
        assert!(!link.allows("lvs"));
    }

    #[test]
    fn direction_parse_and_reverse() {
        assert_eq!("up".parse::<Direction>().unwrap(), Direction::Up);
        assert_eq!("down".parse::<Direction>().unwrap(), Direction::Down);
        assert!("sideways".parse::<Direction>().is_err());
        assert_eq!(Direction::Up.reverse(), Direction::Down);
        assert_eq!(Direction::Down.reverse(), Direction::Up);
    }

    #[test]
    fn link_kind_keywords_roundtrip() {
        for kind in [
            LinkKind::Composition,
            LinkKind::Equivalence,
            LinkKind::DependOn,
            LinkKind::DeriveFrom,
            LinkKind::Other("golden".into()),
        ] {
            let parsed: LinkKind = kind.as_keyword().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        // The paper's EDTC example writes `derived`; it maps to DeriveFrom.
        assert_eq!("derived".parse::<LinkKind>().unwrap(), LinkKind::DeriveFrom);
    }
}

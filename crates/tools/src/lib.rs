//! # damocles-tools — the simulated EDA tool substrate
//!
//! The paper integrates real 1995 EDA tools (netlister, simulators, DRC, LVS,
//! synthesis) behind *wrapper programs* that (a) query the meta-database for
//! permission based on input state and (b) post event messages to the
//! BluePrint (Sections 3.1 and 3.3). Those tools no longer exist; this crate
//! provides deterministic simulated equivalents that exercise the identical
//! engine paths:
//!
//! * every tool consumes and produces *design-data payloads* through the
//!   workspace ([`design_data`] defines the deterministic derivation scheme,
//!   so LVS can really detect a stale layout);
//! * every tool creates OIDs through the template engine and posts the same
//!   events the paper's wrappers post (`ckin`, `hdl_sim`, `nl_sim`, `drc`,
//!   `lvs`);
//! * failures are injectable ([`FaultPlan`]) for workload realism;
//! * [`ToolExecutor`] plugs the whole chain into a
//!   [`blueprint_core::ProjectServer`](blueprint_core::engine::server::ProjectServer),
//!   implementing the automatic tool invocation of Section 3.3 with per-tool
//!   permission requirements.
//!
//! See `examples/automated_flow.rs` at the workspace root for the end-to-end
//! loop: one `checkin` of an HDL model drives synthesis, netlisting,
//! simulation, layout, DRC and LVS entirely through blueprint rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design_data;
pub mod fault;
pub mod remote;
pub mod tool;
pub mod tools;

pub use fault::FaultPlan;
pub use remote::RemoteWrapper;
pub use tool::{Requirement, Tool, ToolExecutor, ToolRun};
pub use tools::{Drc, LayoutGen, Lvs, Netlister, Simulator, Synthesizer};

//! The [`Tool`] trait, per-tool permission requirements, and the
//! [`ToolExecutor`] that plugs a simulated tool chain into a project server.
//!
//! "Tool scheduling is implemented by the wrapper programs. The program
//! queries the meta-database, requesting the permission to access data and to
//! run the tool. The permission is given based on the state of the input
//! data." — Section 3.3.

use std::collections::BTreeMap;
use std::fmt;

use blueprint_core::engine::exec::{
    DetachedJob, PreparedRun, ScriptExecutor, ScriptInvocation, ToolCtx,
};
use damocles_meta::{EventMessage, MetaError, Oid, OidId};

/// A simulated EDA tool invoked through wrapper scripts.
pub trait Tool: Send {
    /// The script name rules use (`exec netlister "$oid"`).
    fn name(&self) -> &'static str;

    /// Runs the tool. `args` are the interpolated script arguments; by
    /// convention `args[0]` is the input OID. Returns the event messages the
    /// wrapper posts back to the BluePrint.
    ///
    /// # Errors
    ///
    /// Database errors (stale/unknown OIDs) abort the run; the executor
    /// records the failure and continues, as a crashed wrapper would not
    /// take the project server down.
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError>;

    /// Captures this run as a [`DetachedJob`] for the async invocation
    /// pool: all database reads happen here, on the command loop, and the
    /// returned closure carries its inputs by value. `None` (the default)
    /// means the tool must run inline — the right answer for tools that
    /// *mutate* the project (check in results, create links), since
    /// detached jobs have no database access.
    ///
    /// In a detached job, injected faults surface as retryable `Err`s (a
    /// tool crash) rather than verdict messages — the invocation pool's
    /// retry policy decides whether the flow sees a verdict or a
    /// structured failure.
    fn prepare_detached(&self, ctx: &ToolCtx<'_>, args: &[String]) -> Option<DetachedJob> {
        let _ = (ctx, args);
        None
    }
}

/// A permission requirement checked before a tool runs: the named property
/// on the input OID (args\[0\]) must be truthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requirement {
    /// Property that must be truthy on the input OID.
    pub prop: String,
}

impl Requirement {
    /// Requires `prop` to be truthy on the input.
    pub fn prop(prop: impl Into<String>) -> Self {
        Requirement { prop: prop.into() }
    }
}

/// How one dispatched invocation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The tool ran; this many messages were posted back.
    Completed {
        /// Number of event messages returned.
        messages: usize,
    },
    /// Permission denied by a [`Requirement`].
    Denied {
        /// Human-readable reason.
        reason: String,
    },
    /// The tool itself failed.
    Failed {
        /// Rendered error.
        error: String,
    },
    /// No tool is registered under the script name.
    UnknownScript,
    /// The invocation was a `notify`; the message was recorded.
    Notification,
    /// The run was captured as a detached job for the async invocation
    /// pool; its outcome is tracked by the pool, not this log.
    Detached,
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Completed { messages } => write!(f, "completed ({messages} messages)"),
            RunStatus::Denied { reason } => write!(f, "denied: {reason}"),
            RunStatus::Failed { error } => write!(f, "failed: {error}"),
            RunStatus::UnknownScript => f.write_str("unknown script"),
            RunStatus::Notification => f.write_str("notification"),
            RunStatus::Detached => f.write_str("detached"),
        }
    }
}

/// A log entry for one dispatched invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolRun {
    /// Script name.
    pub script: String,
    /// Arguments.
    pub args: Vec<String>,
    /// Outcome.
    pub status: RunStatus,
}

/// Dispatches `exec` invocations to registered [`Tool`]s, enforcing
/// permission requirements and keeping a run log.
#[derive(Default)]
pub struct ToolExecutor {
    tools: BTreeMap<String, Box<dyn Tool>>,
    requirements: BTreeMap<String, Vec<Requirement>>,
    runs: Vec<ToolRun>,
    notifications: Vec<String>,
    detached: bool,
}

impl fmt::Debug for ToolExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ToolExecutor")
            .field("tools", &self.tools.keys().collect::<Vec<_>>())
            .field("runs", &self.runs.len())
            .field("notifications", &self.notifications.len())
            .finish()
    }
}

impl ToolExecutor {
    /// An executor with no tools registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard simulated tool chain of the EDTC flow: synthesizer,
    /// netlister, simulator, layout generator, DRC and LVS, with the
    /// Section 3.3 permission rule (simulation requires an up-to-date
    /// input).
    pub fn standard(fault: crate::FaultPlan) -> Self {
        let mut ex = Self::new();
        ex.register(Box::new(crate::Synthesizer::new()));
        ex.register(Box::new(crate::Netlister::new()));
        ex.register(Box::new(crate::Simulator::new(fault)));
        ex.register(Box::new(crate::LayoutGen::new()));
        ex.register(Box::new(crate::Drc::new(fault)));
        ex.register(Box::new(crate::Lvs::new(fault)));
        ex.require("simulator", Requirement::prop("uptodate"));
        ex
    }

    /// Switches this executor into detached mode (builder style): tools
    /// offering a [`Tool::prepare_detached`] form run on the server's
    /// async invocation pool under its retry policies, with injected
    /// faults acting as retryable crashes instead of verdicts. Notify
    /// invocations, permission denials, unknown scripts, and tools
    /// without a detached form keep running inline.
    #[must_use]
    pub fn detached(mut self) -> Self {
        self.detached = true;
        self
    }

    /// Whether detached mode is on.
    pub fn is_detached(&self) -> bool {
        self.detached
    }

    /// Registers a tool under its own name.
    pub fn register(&mut self, tool: Box<dyn Tool>) -> &mut Self {
        self.tools.insert(tool.name().to_string(), tool);
        self
    }

    /// Adds a permission requirement for `script`.
    pub fn require(&mut self, script: impl Into<String>, req: Requirement) -> &mut Self {
        self.requirements
            .entry(script.into())
            .or_default()
            .push(req);
        self
    }

    /// The run log.
    pub fn runs(&self) -> &[ToolRun] {
        &self.runs
    }

    /// Runs of one script.
    pub fn runs_of(&self, script: &str) -> Vec<&ToolRun> {
        self.runs.iter().filter(|r| r.script == script).collect()
    }

    /// Recorded `notify` messages, in order.
    pub fn notifications(&self) -> &[String] {
        &self.notifications
    }

    /// Clears the run log and notifications.
    pub fn reset_log(&mut self) {
        self.runs.clear();
        self.notifications.clear();
    }

    fn check_permission(
        &self,
        ctx: &ToolCtx<'_>,
        script: &str,
        args: &[String],
    ) -> Result<(), String> {
        let Some(reqs) = self.requirements.get(script) else {
            return Ok(());
        };
        if reqs.is_empty() {
            return Ok(());
        }
        let Some(first) = args.first() else {
            return Err("no input OID argument".to_string());
        };
        let oid: Oid = first
            .parse()
            .map_err(|e: MetaError| format!("bad input OID: {e}"))?;
        let id = ctx
            .db
            .resolve(&oid)
            .ok_or_else(|| format!("input {oid} does not exist"))?;
        for req in reqs {
            let ok = ctx
                .db
                .get_prop(id, &req.prop)
                .ok()
                .flatten()
                .is_some_and(damocles_meta::Value::is_truthy);
            if !ok {
                return Err(format!("input {oid} fails requirement `{}`", req.prop));
            }
        }
        Ok(())
    }
}

impl ScriptExecutor for ToolExecutor {
    fn execute(
        &mut self,
        invocation: &ScriptInvocation,
        ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage> {
        if invocation.notify {
            self.notifications.push(invocation.args.join(" "));
            self.runs.push(ToolRun {
                script: invocation.script.clone(),
                args: invocation.args.clone(),
                status: RunStatus::Notification,
            });
            return Vec::new();
        }
        if let Err(reason) = self.check_permission(ctx, &invocation.script, &invocation.args) {
            self.runs.push(ToolRun {
                script: invocation.script.clone(),
                args: invocation.args.clone(),
                status: RunStatus::Denied { reason },
            });
            return Vec::new();
        }
        let Some(tool) = self.tools.get_mut(&invocation.script) else {
            self.runs.push(ToolRun {
                script: invocation.script.clone(),
                args: invocation.args.clone(),
                status: RunStatus::UnknownScript,
            });
            return Vec::new();
        };
        match tool.run(ctx, &invocation.args) {
            Ok(messages) => {
                self.runs.push(ToolRun {
                    script: invocation.script.clone(),
                    args: invocation.args.clone(),
                    status: RunStatus::Completed {
                        messages: messages.len(),
                    },
                });
                messages
            }
            Err(e) => {
                self.runs.push(ToolRun {
                    script: invocation.script.clone(),
                    args: invocation.args.clone(),
                    status: RunStatus::Failed {
                        error: e.to_string(),
                    },
                });
                Vec::new()
            }
        }
    }

    fn prepare(&mut self, invocation: &ScriptInvocation, ctx: &mut ToolCtx<'_>) -> PreparedRun {
        if self.detached
            && !invocation.notify
            && self
                .check_permission(ctx, &invocation.script, &invocation.args)
                .is_ok()
        {
            if let Some(job) = self
                .tools
                .get(&invocation.script)
                .and_then(|tool| tool.prepare_detached(ctx, &invocation.args))
            {
                self.runs.push(ToolRun {
                    script: invocation.script.clone(),
                    args: invocation.args.clone(),
                    status: RunStatus::Detached,
                });
                return PreparedRun::Detached(job);
            }
        }
        // Notifications, denials, unknown scripts, and tools without a
        // detached form take the classic inline path (and its run log).
        PreparedRun::Inline(self.execute(invocation, ctx))
    }
}

/// The input OID argument of a tool run (`args[0]`), resolved.
///
/// # Errors
///
/// Fails when the argument is missing, malformed, or unknown.
pub(crate) fn input_oid(ctx: &ToolCtx<'_>, args: &[String]) -> Result<(OidId, Oid), MetaError> {
    let first = args.first().ok_or_else(|| MetaError::OidParse {
        reason: "tool invoked without an input OID argument".to_string(),
        input: String::new(),
    })?;
    let oid: Oid = first.parse()?;
    let id = ctx.db.require(&oid)?;
    Ok((id, oid))
}

/// The stored payload of `id`, or a deterministic placeholder when the
/// workspace has none (objects created outside the workspace).
pub(crate) fn payload_of(ctx: &ToolCtx<'_>, id: OidId, oid: &Oid) -> Vec<u8> {
    ctx.workspace
        .datum(id)
        .map(|d| d.content.clone())
        .unwrap_or_else(|| format!("placeholder:{oid}").into_bytes())
}

/// Connects `from` to `to` unless a link between them already exists (the
/// template engine may have moved one over from a previous version).
pub(crate) fn ensure_connected(
    ctx: &mut ToolCtx<'_>,
    from: OidId,
    to: OidId,
) -> Result<(), MetaError> {
    let already = ctx
        .db
        .links_of(from)?
        .iter()
        .any(|(_, link)| link.other_end(from) == Some(to));
    if !already {
        ctx.connect(from, to)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{Direction, MetaDb, Value, Workspace};

    struct Echo;
    impl Tool for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn run(
            &mut self,
            ctx: &mut ToolCtx<'_>,
            args: &[String],
        ) -> Result<Vec<EventMessage>, MetaError> {
            let (_, oid) = input_oid(ctx, args)?;
            Ok(vec![EventMessage::new("echoed", Direction::Down, oid)])
        }
    }

    fn harness() -> (MetaDb, Workspace, blueprint_core::Blueprint, AuditLog) {
        let bp = parse("blueprint t view v endview endblueprint").unwrap();
        (
            MetaDb::new(),
            Workspace::new("w"),
            bp,
            AuditLog::counters_only(),
        )
    }

    fn invocation(script: &str, args: Vec<String>) -> ScriptInvocation {
        ScriptInvocation {
            script: script.into(),
            args,
            notify: false,
            origin: "b,v,1".into(),
            event: "ckin".into(),
        }
    }

    #[test]
    fn dispatches_to_registered_tool() {
        let (mut db, mut ws, bp, mut audit) = harness();
        db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let mut ex = ToolExecutor::new();
        ex.register(Box::new(Echo));
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = ex.execute(&invocation("echo", vec!["b,v,1".into()]), &mut ctx);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            ex.runs()[0].status,
            RunStatus::Completed { messages: 1 }
        ));
    }

    #[test]
    fn unknown_script_is_recorded_not_fatal() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ex = ToolExecutor::new();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = ex.execute(&invocation("ghost.sh", vec![]), &mut ctx);
        assert!(msgs.is_empty());
        assert_eq!(ex.runs()[0].status, RunStatus::UnknownScript);
    }

    #[test]
    fn permission_denied_when_input_stale() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let id = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        db.set_prop(id, "uptodate", Value::Bool(false)).unwrap();
        let mut ex = ToolExecutor::new();
        ex.register(Box::new(Echo));
        ex.require("echo", Requirement::prop("uptodate"));
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = ex.execute(&invocation("echo", vec!["b,v,1".into()]), &mut ctx);
        assert!(msgs.is_empty());
        assert!(matches!(ex.runs()[0].status, RunStatus::Denied { .. }));

        // Once the input is up to date, the tool runs.
        ctx.db.set_prop(id, "uptodate", Value::Bool(true)).unwrap();
        let msgs = ex.execute(&invocation("echo", vec!["b,v,1".into()]), &mut ctx);
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn tool_failure_is_contained() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ex = ToolExecutor::new();
        ex.register(Box::new(Echo));
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        // echo on a nonexistent OID fails inside the tool.
        let msgs = ex.execute(&invocation("echo", vec!["ghost,v,9".into()]), &mut ctx);
        assert!(msgs.is_empty());
        assert!(matches!(ex.runs()[0].status, RunStatus::Failed { .. }));
    }

    #[test]
    fn notifications_are_recorded() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ex = ToolExecutor::new();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut inv = invocation("notify", vec!["yves: modified".into()]);
        inv.notify = true;
        ex.execute(&inv, &mut ctx);
        assert_eq!(ex.notifications(), &["yves: modified".to_string()]);
        assert_eq!(ex.runs()[0].status, RunStatus::Notification);
    }

    #[test]
    fn ensure_connected_is_idempotent() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let a = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let b = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        ensure_connected(&mut ctx, a, b).unwrap();
        ensure_connected(&mut ctx, a, b).unwrap();
        assert_eq!(ctx.db.link_count(), 1);
    }
}

//! The networked wrapper side of the command protocol.
//!
//! "The wrapper programs emit event messages over the network" (§3.1) —
//! this module is that emitter. A [`RemoteWrapper`] holds one line-framed
//! TCP connection to a `damocles_server` front door and speaks the typed
//! [`Request`]/[`Response`] codec: encode a request, write one line, read
//! one line, decode the response. Everything a tool chain needs — post a
//! result event, trigger a drain, query state — without linking the
//! engine into the tool process, exactly the paper's process split.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use blueprint_core::engine::api::{ApiError, Request, Response};
use damocles_meta::EventMessage;

/// Renders the protocol line a wrapper sends to post `message` as `user` —
/// pure, so tools can also queue lines into files or tests without a
/// socket.
pub fn encode_post(message: &EventMessage, user: &str) -> String {
    Request::Post {
        message: message.clone(),
        user: user.to_string(),
    }
    .encode()
}

/// One wrapper program's session with a networked project server.
#[derive(Debug)]
pub struct RemoteWrapper {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    user: String,
}

impl RemoteWrapper {
    /// Connects to a `damocles_server` listener; `user` tags every posted
    /// event (the wrapper's identity, e.g. `"sim-wrapper"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs, user: impl Into<String>) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RemoteWrapper {
            writer,
            reader,
            user: user.into(),
        })
    }

    /// The identity events are posted under.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or a closed connection (`UnexpectedEof`). Protocol
    /// decode failures are folded into a [`Response::Error`], not an
    /// `Err` — the transport worked, the payload did not.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.writer
            .write_all(format!("{}\n", request.encode()).as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(Response::decode(line.trim_end()).unwrap_or_else(|e: ApiError| Response::Error(e)))
    }

    /// Posts one event message under this wrapper's user.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn post(&mut self, message: &EventMessage) -> io::Result<Response> {
        let request = Request::Post {
            message: message.clone(),
            user: self.user.clone(),
        };
        self.request(&request)
    }

    /// Asks the server to drain its event queue.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn process_all(&mut self) -> io::Result<Response> {
        self.request(&Request::ProcessAll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::{Direction, Oid};

    #[test]
    fn encode_post_roundtrips_through_the_codec() {
        let message = EventMessage::new("hdl_sim", Direction::Up, Oid::new("reg", "verilog", 4))
            .with_arg("logic sim passed");
        let line = encode_post(&message, "sim-wrapper");
        match Request::decode(&line).unwrap() {
            Request::Post {
                message: back,
                user,
            } => {
                assert_eq!(back, message);
                assert_eq!(user, "sim-wrapper");
            }
            other => panic!("{other:?}"),
        }
    }
}

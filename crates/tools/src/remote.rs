//! The networked wrapper side of the command protocol.
//!
//! "The wrapper programs emit event messages over the network" (§3.1) —
//! this module is that emitter. A [`RemoteWrapper`] holds one line-framed
//! TCP connection to a `damocles_server` front door and speaks the typed
//! [`Request`]/[`Response`] codec: encode a request, write one line, read
//! one line, decode the response. Everything a tool chain needs — post a
//! result event, trigger a drain, query state — without linking the
//! engine into the tool process, exactly the paper's process split. It
//! is also the follower runtime's transport: [`RemoteWrapper::tail_from`]
//! turns one connection into a live journal-tail stream.
//!
//! A bare [`RemoteWrapper`] dies with its socket. [`LeaderClient`] wraps
//! it into a **leader-chasing** session for HA deployments (`DESIGN.md`
//! §13): it reconnects through a bounded exponential backoff
//! ([`ReconnectPolicy`]), rotates through its seed addresses when a node
//! is gone, and follows `read-only` redirects to whichever node
//! currently leads — so a workload survives a leader crash and lands on
//! the promoted follower without the caller doing anything.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use blueprint_core::engine::api::{ApiError, Request, Response};
use blueprint_core::engine::tail::TailFrame;
use damocles_meta::EventMessage;

/// Renders the protocol line a wrapper sends to post `message` as `user` —
/// pure, so tools can also queue lines into files or tests without a
/// socket.
pub fn encode_post(message: &EventMessage, user: &str) -> String {
    Request::Post {
        message: message.clone(),
        user: user.to_string(),
    }
    .encode()
}

/// One wrapper program's session with a networked project server.
#[derive(Debug)]
pub struct RemoteWrapper {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    user: String,
}

impl RemoteWrapper {
    /// Connects to a `damocles_server` listener; `user` tags every posted
    /// event (the wrapper's identity, e.g. `"sim-wrapper"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs, user: impl Into<String>) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RemoteWrapper {
            writer,
            reader,
            user: user.into(),
        })
    }

    /// The identity events are posted under.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or a closed connection (`UnexpectedEof`). Protocol
    /// decode failures are folded into a [`Response::Error`], not an
    /// `Err` — the transport worked, the payload did not.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.writer
            .write_all(format!("{}\n", request.encode()).as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(Response::decode(line.trim_end()).unwrap_or_else(|e: ApiError| Response::Error(e)))
    }

    /// Attaches this connection's session to a fleet project
    /// (`project <name>`); `create` registers it on first attach. Must
    /// precede routable commands when talking to a
    /// `damocles_server --fleet` front door.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn attach(&mut self, project: impl Into<String>, create: bool) -> io::Result<Response> {
        self.request(&Request::Attach {
            project: project.into(),
            create,
        })
    }

    /// Posts one event message under this wrapper's user.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn post(&mut self, message: &EventMessage) -> io::Result<Response> {
        let request = Request::Post {
            message: message.clone(),
            user: self.user.clone(),
        };
        self.request(&request)
    }

    /// Asks the server to drain its event queue.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn process_all(&mut self) -> io::Result<Response> {
        self.request(&Request::ProcessAll)
    }

    /// Performs the replication tail handshake
    /// ([`Request::TailFrom`]) and, when the leader accepts, converts
    /// this connection into a frame stream — the follower runtime's
    /// catch-up + live-tail transport. The connection cannot be used for
    /// request/response traffic afterwards, which is why this consumes
    /// the wrapper.
    ///
    /// # Errors
    ///
    /// Transport failures. A *protocol* refusal (journaling off, or the
    /// peer is itself a follower) is [`TailHandshake::Refused`], not an
    /// `Err`.
    pub fn tail_from(mut self, epoch: u64, seq: u64) -> io::Result<TailHandshake> {
        let response = self.request(&Request::TailFrom { epoch, seq })?;
        match response {
            Response::Tailing { .. } => Ok(TailHandshake::Accepted {
                position: response,
                stream: TailStream {
                    reader: self.reader,
                },
            }),
            other => Ok(TailHandshake::Refused(other)),
        }
    }
}

/// How hard a [`LeaderClient`] tries before giving up: a bounded number
/// of attempts with exponential backoff between them. The PR 5 caveat —
/// "a `RemoteWrapper` whose socket dies is dead" — is closed by this
/// policy: the client re-dials instead.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Total request attempts (connects and redirects each consume one).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles per `multiplier`.
    pub base_delay: Duration,
    /// Backoff growth factor per failed attempt.
    pub multiplier: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(25),
            multiplier: 2,
        }
    }
}

/// A wrapper session that survives its socket: reconnects under a
/// [`ReconnectPolicy`], rotates through seed addresses, and chases
/// `read-only` redirects to the current leader.
///
/// Give it every node of the deployment as a seed; it finds whichever
/// one accepts writes. Connection setup is lazy — construction never
/// touches the network.
#[derive(Debug)]
pub struct LeaderClient {
    /// Known front doors, tried round-robin when the current one fails.
    seeds: Vec<String>,
    next_seed: usize,
    /// An explicit redirect target (from `read-only <leader>`), tried
    /// before the seed rotation.
    target: Option<String>,
    user: String,
    policy: ReconnectPolicy,
    conn: Option<(String, RemoteWrapper)>,
}

impl LeaderClient {
    /// A client that will chase the leader across `seeds` (at least one).
    pub fn new(
        seeds: impl IntoIterator<Item = impl Into<String>>,
        user: impl Into<String>,
    ) -> Self {
        let seeds: Vec<String> = seeds.into_iter().map(Into::into).collect();
        assert!(!seeds.is_empty(), "LeaderClient needs at least one seed");
        LeaderClient {
            seeds,
            next_seed: 0,
            target: None,
            user: user.into(),
            policy: ReconnectPolicy::default(),
            conn: None,
        }
    }

    /// Replaces the retry policy (builder-style).
    #[must_use]
    pub fn with_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The address of the node the client is currently connected to.
    pub fn connected_to(&self) -> Option<&str> {
        self.conn.as_ref().map(|(addr, _)| addr.as_str())
    }

    /// Sends one request, reconnecting/redirecting as needed under the
    /// policy. A structured *application* error (unknown OID, policy
    /// refusal, …) returns as a normal [`Response::Error`] — only
    /// transport failures and leadership redirects are retried.
    ///
    /// **Ambiguity caveat:** a connection that dies after a request was
    /// written may or may not have committed it. For a **mutation** this
    /// method does NOT re-send in that window — it returns the transport
    /// error and leaves re-submission to the caller, who knows whether
    /// the operation is idempotent or detectable (e.g. a re-issued
    /// `checkin` is detectable by querying whether the version landed).
    /// Read-only requests are re-sent freely; failed *dials* and
    /// leadership redirects never carry ambiguity and always retry.
    ///
    /// # Errors
    ///
    /// The last transport error once `max_attempts` is exhausted, or the
    /// first post-send transport error of a mutation (ambiguous — see
    /// above).
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let ambiguity_safe = !request.is_mutation();
        let mut delay = self.policy.base_delay;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay *= self.policy.multiplier.max(1);
            }
            if self.conn.is_none() {
                let addr = self.target.take().unwrap_or_else(|| {
                    let addr = self.seeds[self.next_seed % self.seeds.len()].clone();
                    self.next_seed += 1;
                    addr
                });
                match RemoteWrapper::connect(&addr, self.user.clone()) {
                    Ok(wrapper) => self.conn = Some((addr, wrapper)),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let (addr, wrapper) = self.conn.as_mut().expect("connected above");
            match wrapper.request(request) {
                Ok(Response::Error(ApiError::ReadOnly { leader })) => {
                    // A follower: chase the leader it names (unless it
                    // named us or nothing — then rotate seeds). The
                    // request did not apply, so this is never ambiguous.
                    if !leader.is_empty() && leader != *addr {
                        self.target = Some(leader);
                    }
                    self.conn = None;
                    last_err = Some(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        "node is a read-only follower",
                    ));
                }
                Ok(Response::Error(ApiError::StaleTerm { term, current })) => {
                    // A fenced, deposed leader: it knows it lost the
                    // reign but not to whom. Rotate.
                    self.conn = None;
                    last_err = Some(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("node fenced at term {term} (term {current} leads)"),
                    ));
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.conn = None;
                    if !ambiguity_safe {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "no attempts were permitted")
        }))
    }
}

/// The outcome of [`RemoteWrapper::tail_from`].
#[derive(Debug)]
pub enum TailHandshake {
    /// The leader accepted; read frames from `stream` until it ends.
    Accepted {
        /// The [`Response::Tailing`] line carrying the leader's
        /// committed position.
        position: Response,
        /// The live frame stream.
        stream: TailStream,
    },
    /// The leader refused (its structured response says why).
    Refused(Response),
}

/// The read side of an accepted tail stream: one [`TailFrame`] per line.
#[derive(Debug)]
pub struct TailStream {
    reader: BufReader<TcpStream>,
}

impl TailStream {
    /// Reads the next frame, blocking until the leader sends one (the
    /// leader pings at least every ~500ms, so this also detects stalls).
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the leader closed the stream; other I/O
    /// errors from the transport; `InvalidData` carrying the leader's
    /// structured error when the stream ended protocol-side (journaling
    /// disabled, leader shutdown) or a line was not a frame.
    pub fn next_frame(&mut self) -> io::Result<TailFrame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "leader closed the tail stream",
            ));
        }
        let trimmed = line.trim_end();
        TailFrame::decode(trimmed).map_err(|frame_err| {
            // The stream's last line is a structured `err …` response
            // when the leader ends it deliberately.
            let reason = match Response::decode(trimmed) {
                Ok(Response::Error(e)) => format!("leader ended the tail stream: {e}"),
                _ => format!("broken tail stream: {frame_err}"),
            };
            io::Error::new(io::ErrorKind::InvalidData, reason)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::{Direction, Oid};
    use std::net::TcpListener;

    /// A scripted one-shot node for transport tests: accepts connections
    /// and answers each request line with the next canned reply —
    /// `None` means "drop the socket mid-session" (the PR 5 caveat).
    fn scripted_node(replies: Vec<Option<String>>) -> (String, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let join = std::thread::spawn(move || {
            let mut served = 0usize;
            let mut replies = replies.into_iter();
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    return served;
                };
                served += 1;
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut out = stream;
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break; // client went away
                    }
                    match replies.next() {
                        Some(Some(reply)) => {
                            out.write_all(format!("{reply}\n").as_bytes()).unwrap();
                        }
                        Some(None) => break, // scripted socket drop
                        None => return served,
                    }
                }
            }
        });
        (addr, join)
    }

    /// The PR 5 caveat, closed: the node drops the socket mid-session
    /// (no promotion involved). A READ retries transparently on a fresh
    /// connection; a MUTATION surfaces the ambiguous error (it may have
    /// committed) but the client recovers on its next call.
    #[test]
    fn leader_client_survives_a_dropped_socket() {
        let (addr, _join) = scripted_node(vec![
            None,                        // read request: socket dropped
            Some(Response::Ok.encode()), // read retry on a fresh conn
            None,                        // mutation: dropped → ambiguous
            Some(Response::Ok.encode()), // next call reconnects fine
        ]);
        let mut client = LeaderClient::new([addr], "test").with_policy(ReconnectPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
        });
        // Reads are never ambiguous: the drop is absorbed by the policy.
        assert!(matches!(client.call(&Request::Stat).unwrap(), Response::Ok));
        // A mutation must NOT be silently re-sent: the caller sees the
        // ambiguous transport error and decides.
        assert!(client.call(&Request::ProcessAll).is_err());
        assert!(matches!(
            client.call(&Request::ProcessAll).unwrap(),
            Response::Ok
        ));
    }

    /// A `read-only` reply redirects the client to the named leader; the
    /// next attempt runs against that address.
    #[test]
    fn leader_client_chases_a_read_only_redirect() {
        let (leader_addr, _leader) = scripted_node(vec![Some(Response::Ok.encode())]);
        let follower_reply = Response::Error(ApiError::ReadOnly {
            leader: leader_addr.clone(),
        })
        .encode();
        let (follower_addr, _follower) = scripted_node(vec![Some(follower_reply)]);
        let mut client = LeaderClient::new([follower_addr], "test").with_policy(ReconnectPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
        });
        assert!(matches!(
            client.call(&Request::ProcessAll).unwrap(),
            Response::Ok
        ));
        assert_eq!(client.connected_to(), Some(leader_addr.as_str()));
    }

    /// With every seed dead, the policy bounds the suffering: `call`
    /// returns the last transport error after `max_attempts`.
    #[test]
    fn leader_client_gives_up_after_max_attempts() {
        // Bind-then-drop reserves an address nobody is listening on.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut client = LeaderClient::new([dead], "test").with_policy(ReconnectPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
        });
        assert!(client.call(&Request::ProcessAll).is_err());
    }

    #[test]
    fn encode_post_roundtrips_through_the_codec() {
        let message = EventMessage::new("hdl_sim", Direction::Up, Oid::new("reg", "verilog", 4))
            .with_arg("logic sim passed");
        let line = encode_post(&message, "sim-wrapper");
        match Request::decode(&line).unwrap() {
            Request::Post {
                message: back,
                user,
            } => {
                assert_eq!(back, message);
                assert_eq!(user, "sim-wrapper");
            }
            other => panic!("{other:?}"),
        }
    }
}

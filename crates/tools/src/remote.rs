//! The networked wrapper side of the command protocol.
//!
//! "The wrapper programs emit event messages over the network" (§3.1) —
//! this module is that emitter. A [`RemoteWrapper`] holds one line-framed
//! TCP connection to a `damocles_server` front door and speaks the typed
//! [`Request`]/[`Response`] codec: encode a request, write one line, read
//! one line, decode the response. Everything a tool chain needs — post a
//! result event, trigger a drain, query state — without linking the
//! engine into the tool process, exactly the paper's process split. It
//! is also the follower runtime's transport: [`RemoteWrapper::tail_from`]
//! turns one connection into a live journal-tail stream.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use blueprint_core::engine::api::{ApiError, Request, Response};
use blueprint_core::engine::tail::TailFrame;
use damocles_meta::EventMessage;

/// Renders the protocol line a wrapper sends to post `message` as `user` —
/// pure, so tools can also queue lines into files or tests without a
/// socket.
pub fn encode_post(message: &EventMessage, user: &str) -> String {
    Request::Post {
        message: message.clone(),
        user: user.to_string(),
    }
    .encode()
}

/// One wrapper program's session with a networked project server.
#[derive(Debug)]
pub struct RemoteWrapper {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    user: String,
}

impl RemoteWrapper {
    /// Connects to a `damocles_server` listener; `user` tags every posted
    /// event (the wrapper's identity, e.g. `"sim-wrapper"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs, user: impl Into<String>) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RemoteWrapper {
            writer,
            reader,
            user: user.into(),
        })
    }

    /// The identity events are posted under.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or a closed connection (`UnexpectedEof`). Protocol
    /// decode failures are folded into a [`Response::Error`], not an
    /// `Err` — the transport worked, the payload did not.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.writer
            .write_all(format!("{}\n", request.encode()).as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(Response::decode(line.trim_end()).unwrap_or_else(|e: ApiError| Response::Error(e)))
    }

    /// Attaches this connection's session to a fleet project
    /// (`project <name>`); `create` registers it on first attach. Must
    /// precede routable commands when talking to a
    /// `damocles_server --fleet` front door.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn attach(&mut self, project: impl Into<String>, create: bool) -> io::Result<Response> {
        self.request(&Request::Attach {
            project: project.into(),
            create,
        })
    }

    /// Posts one event message under this wrapper's user.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn post(&mut self, message: &EventMessage) -> io::Result<Response> {
        let request = Request::Post {
            message: message.clone(),
            user: self.user.clone(),
        };
        self.request(&request)
    }

    /// Asks the server to drain its event queue.
    ///
    /// # Errors
    ///
    /// As [`RemoteWrapper::request`].
    pub fn process_all(&mut self) -> io::Result<Response> {
        self.request(&Request::ProcessAll)
    }

    /// Performs the replication tail handshake
    /// ([`Request::TailFrom`]) and, when the leader accepts, converts
    /// this connection into a frame stream — the follower runtime's
    /// catch-up + live-tail transport. The connection cannot be used for
    /// request/response traffic afterwards, which is why this consumes
    /// the wrapper.
    ///
    /// # Errors
    ///
    /// Transport failures. A *protocol* refusal (journaling off, or the
    /// peer is itself a follower) is [`TailHandshake::Refused`], not an
    /// `Err`.
    pub fn tail_from(mut self, epoch: u64, seq: u64) -> io::Result<TailHandshake> {
        let response = self.request(&Request::TailFrom { epoch, seq })?;
        match response {
            Response::Tailing { .. } => Ok(TailHandshake::Accepted {
                position: response,
                stream: TailStream {
                    reader: self.reader,
                },
            }),
            other => Ok(TailHandshake::Refused(other)),
        }
    }
}

/// The outcome of [`RemoteWrapper::tail_from`].
#[derive(Debug)]
pub enum TailHandshake {
    /// The leader accepted; read frames from `stream` until it ends.
    Accepted {
        /// The [`Response::Tailing`] line carrying the leader's
        /// committed position.
        position: Response,
        /// The live frame stream.
        stream: TailStream,
    },
    /// The leader refused (its structured response says why).
    Refused(Response),
}

/// The read side of an accepted tail stream: one [`TailFrame`] per line.
#[derive(Debug)]
pub struct TailStream {
    reader: BufReader<TcpStream>,
}

impl TailStream {
    /// Reads the next frame, blocking until the leader sends one (the
    /// leader pings at least every ~500ms, so this also detects stalls).
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the leader closed the stream; other I/O
    /// errors from the transport; `InvalidData` carrying the leader's
    /// structured error when the stream ended protocol-side (journaling
    /// disabled, leader shutdown) or a line was not a frame.
    pub fn next_frame(&mut self) -> io::Result<TailFrame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "leader closed the tail stream",
            ));
        }
        let trimmed = line.trim_end();
        TailFrame::decode(trimmed).map_err(|frame_err| {
            // The stream's last line is a structured `err …` response
            // when the leader ends it deliberately.
            let reason = match Response::decode(trimmed) {
                Ok(Response::Error(e)) => format!("leader ended the tail stream: {e}"),
                _ => format!("broken tail stream: {frame_err}"),
            };
            io::Error::new(io::ErrorKind::InvalidData, reason)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::{Direction, Oid};

    #[test]
    fn encode_post_roundtrips_through_the_codec() {
        let message = EventMessage::new("hdl_sim", Direction::Up, Oid::new("reg", "verilog", 4))
            .with_arg("logic sim passed");
        let line = encode_post(&message, "sim-wrapper");
        match Request::decode(&line).unwrap() {
            Request::Post {
                message: back,
                user,
            } => {
                assert_eq!(back, message);
                assert_eq!(user, "sim-wrapper");
            }
            other => panic!("{other:?}"),
        }
    }
}

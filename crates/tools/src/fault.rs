//! Seeded fault injection for simulated tools.
//!
//! Real design flows fail stochastically — DRC violations, LVS mismatches,
//! simulator crashes. Workload generators use a [`FaultPlan`] to make
//! simulated tools fail deterministically-per-seed, so experiments are
//! reproducible while still exercising failure paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic failure plan.
///
/// Failure is decided by hashing the `(tool, subject)` pair with the seed, so
/// the same plan gives the same verdicts regardless of query order.
///
/// # Example
///
/// ```
/// use damocles_tools::FaultPlan;
///
/// let plan = FaultPlan::new(42, 0.25);
/// let a = plan.fails("drc", "alu,layout,1");
/// // Deterministic: same inputs, same verdict.
/// assert_eq!(a, plan.fails("drc", "alu,layout,1"));
/// // A plan with rate 0 never fails anything.
/// assert!(!FaultPlan::never().fails("drc", "alu,layout,1"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
}

impl FaultPlan {
    /// A plan failing roughly `rate` (0.0–1.0) of tool runs.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `0.0..=1.0`.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in 0.0..=1.0");
        FaultPlan { seed, rate }
    }

    /// A plan that never injects failures.
    pub fn never() -> Self {
        FaultPlan { seed: 0, rate: 0.0 }
    }

    /// The configured failure rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether the run of `tool` on `subject` fails under this plan.
    pub fn fails(&self, tool: &str, subject: &str) -> bool {
        self.fails_attempt(tool, subject, 0)
    }

    /// Whether retry `attempt` (0-based) of `tool` on `subject` fails.
    ///
    /// Attempt 0 is hash-identical to [`FaultPlan::fails`]; later attempts
    /// re-roll independently, so a retried run can deterministically
    /// recover — or keep failing — per `(tool, subject, attempt)`.
    pub fn fails_attempt(&self, tool: &str, subject: &str, attempt: u32) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        let mut h: u64 = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in tool.bytes().chain([0u8]).chain(subject.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if attempt > 0 {
            // Folded in only for retries, keeping attempt 0 byte-compatible
            // with the historical `fails` hash.
            h ^= u64::from(attempt);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(h);
        rng.gen_bool(self.rate)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::never()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_pair() {
        let plan = FaultPlan::new(7, 0.5);
        for i in 0..20 {
            let subject = format!("b{i},layout,1");
            assert_eq!(plan.fails("drc", &subject), plan.fails("drc", &subject));
        }
    }

    #[test]
    fn rate_zero_and_one() {
        let never = FaultPlan::new(1, 0.0);
        let always = FaultPlan::new(1, 1.0);
        assert!(!never.fails("lvs", "x"));
        assert!(always.fails("lvs", "x"));
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::new(99, 0.3);
        let failures = (0..1000)
            .filter(|i| plan.fails("drc", &format!("blk{i},layout,1")))
            .count();
        assert!(
            (200..400).contains(&failures),
            "expected ~300 failures, got {failures}"
        );
    }

    #[test]
    fn different_tools_decorrelated() {
        let plan = FaultPlan::new(5, 0.5);
        let same = (0..200)
            .filter(|i| {
                let s = format!("b{i}");
                plan.fails("drc", &s) == plan.fails("lvs", &s)
            })
            .count();
        // If correlated, this would be ~200; independent ≈ 100.
        assert!((60..150).contains(&same), "correlation suspicious: {same}");
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn bad_rate_panics() {
        let _ = FaultPlan::new(0, 1.5);
    }

    #[test]
    fn attempt_zero_matches_fails() {
        let plan = FaultPlan::new(11, 0.5);
        for i in 0..50 {
            let s = format!("b{i},layout,1");
            assert_eq!(plan.fails("drc", &s), plan.fails_attempt("drc", &s, 0));
        }
    }

    #[test]
    fn retries_reroll_independently() {
        let plan = FaultPlan::new(13, 0.5);
        // Across many subjects, at least one verdict must flip between
        // attempts (otherwise retries would be pointless).
        let flipped = (0..100).any(|i| {
            let s = format!("b{i},netlist,1");
            plan.fails_attempt("simulator", &s, 0) != plan.fails_attempt("simulator", &s, 1)
        });
        assert!(flipped);
        // And each (subject, attempt) verdict is stable.
        assert_eq!(
            plan.fails_attempt("simulator", "x", 2),
            plan.fails_attempt("simulator", "x", 2)
        );
    }
}

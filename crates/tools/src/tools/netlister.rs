//! The netlister: schematic → netlist.
//!
//! "Let's take an example where the netlister has to be invoked every time a
//! new version of schematic is promoted (checked in) to the project
//! workspace. The run-time rule would be `when ckin do exec netlister.sh
//! "$OID" done`" — Section 3.3. In the Section 3.4 walkthrough this is how
//! `<CPU.netlist.1>` comes to exist.

use blueprint_core::engine::exec::ToolCtx;
use damocles_meta::{Direction, EventMessage, MetaError};

use crate::design_data;
use crate::tool::{ensure_connected, input_oid, payload_of, Tool};

/// Simulated netlister.
#[derive(Debug, Clone, Copy, Default)]
pub struct Netlister {
    _private: (),
}

impl Netlister {
    /// Creates a netlister.
    pub fn new() -> Self {
        Netlister::default()
    }
}

impl Tool for Netlister {
    fn name(&self) -> &'static str {
        "netlister"
    }

    /// Derives a netlist payload from the input schematic, creates the next
    /// `(block, netlist)` version, links it to the schematic, and posts
    /// `ckin` for the new netlist so the BluePrint tracks it.
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        let (sch_id, sch_oid) = input_oid(ctx, args)?;
        let schematic = payload_of(ctx, sch_id, &sch_oid);
        let netlist = design_data::derive("netlist", &schematic);
        let (net_id, net_oid) =
            ctx.create_versioned(sch_oid.block.as_str(), "netlist", "netlister", netlist)?;
        ensure_connected(ctx, sch_id, net_id)?;
        Ok(vec![EventMessage::new("ckin", Direction::Up, net_oid)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{MetaDb, Oid, Workspace};

    const BP: &str = r#"blueprint t
        view schematic endview
        view netlist
            link_from schematic propagates nl_sim, outofdate type derived
        endview
    endblueprint"#;

    #[test]
    fn creates_linked_netlist_and_posts_ckin() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let (sch_id, sch_oid) = ws
            .checkin(&mut db, "cpu", "schematic", "yves", b"sch-v1".to_vec())
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut tool = Netlister::new();
        let msgs = tool.run(&mut ctx, &[sch_oid.to_string()]).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].event, "ckin");
        assert_eq!(msgs[0].target, Oid::new("cpu", "netlist", 1));

        let net_id = ctx.db.require(&Oid::new("cpu", "netlist", 1)).unwrap();
        // Linked with the template's PROPAGATE set.
        let neighbors = ctx
            .db
            .neighbors(sch_id, Direction::Down, Some("outofdate"))
            .unwrap();
        assert_eq!(neighbors, vec![net_id]);
        // Payload is derived from the schematic content.
        let sch_payload = ctx.workspace.datum(sch_id).unwrap().content.clone();
        let net_payload = ctx.workspace.datum(net_id).unwrap().content.clone();
        assert!(design_data::derived_from(
            "netlist",
            &net_payload,
            &sch_payload
        ));
    }

    #[test]
    fn reruns_create_new_versions_without_duplicate_links() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let (_, sch_oid) = ws
            .checkin(&mut db, "cpu", "schematic", "yves", b"sch-v1".to_vec())
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut tool = Netlister::new();
        tool.run(&mut ctx, &[sch_oid.to_string()]).unwrap();
        tool.run(&mut ctx, &[sch_oid.to_string()]).unwrap();
        assert_eq!(ctx.db.versions("cpu", "netlist"), vec![1, 2]);
        // The template has no `move` on this link, so v1 keeps its link and
        // v2 got a fresh one: exactly two links total.
        assert_eq!(ctx.db.link_count(), 2);
    }

    #[test]
    fn missing_input_fails() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut tool = Netlister::new();
        assert!(tool.run(&mut ctx, &[]).is_err());
        assert!(tool.run(&mut ctx, &["ghost,schematic,1".into()]).is_err());
    }
}

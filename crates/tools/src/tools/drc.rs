//! Design-rule check: layout → `drc` verdict event.

use blueprint_core::engine::exec::{DetachedJob, ToolCtx};
use damocles_meta::{Direction, EventMessage, MetaError};

use crate::tool::{input_oid, Tool};
use crate::FaultPlan;

/// Simulated DRC.
///
/// Geometry is not modelled; violations come from the fault plan, which is
/// exactly the role DRC failures play in the tracking experiments — an
/// externally decided verdict the BluePrint must record and propagate.
#[derive(Debug, Clone, Copy)]
pub struct Drc {
    fault: FaultPlan,
}

impl Drc {
    /// A DRC with fault injection.
    pub fn new(fault: FaultPlan) -> Self {
        Drc { fault }
    }
}

impl Tool for Drc {
    fn name(&self) -> &'static str {
        "drc"
    }

    /// Posts `drc <verdict>` targeted at the input layout.
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        let (_, oid) = input_oid(ctx, args)?;
        let verdict = if self.fault.fails("drc", &oid.to_string()) {
            "bad"
        } else {
            "good"
        };
        Ok(vec![
            EventMessage::new("drc", Direction::Up, oid).with_arg(verdict)
        ])
    }

    /// Detached form: a fault is a retryable *crash* of the checker (the
    /// pool's retry policy re-rolls it); a clean run reports `good`.
    fn prepare_detached(&self, ctx: &ToolCtx<'_>, args: &[String]) -> Option<DetachedJob> {
        let (_, oid) = input_oid(ctx, args).ok()?;
        let fault = self.fault;
        Some(Box::new(move |attempt| {
            if fault.fails_attempt("drc", &oid.to_string(), attempt) {
                Err("design-rule check crashed".to_string())
            } else {
                Ok(vec![
                    EventMessage::new("drc", Direction::Up, oid.clone()).with_arg("good")
                ])
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{MetaDb, Oid, Workspace};

    #[test]
    fn verdicts_follow_fault_plan() {
        let bp = parse("blueprint t view layout endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        db.create_oid(Oid::new("alu", "layout", 1)).unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Drc::new(FaultPlan::never())
            .run(&mut ctx, &["alu,layout,1".into()])
            .unwrap();
        assert_eq!(msgs[0].event, "drc");
        assert_eq!(msgs[0].arg(), Some("good"));
        let msgs = Drc::new(FaultPlan::new(0, 1.0))
            .run(&mut ctx, &["alu,layout,1".into()])
            .unwrap();
        assert_eq!(msgs[0].arg(), Some("bad"));
    }
}

//! The simulator: HDL models and netlists → pass/fail verdicts.
//!
//! The Section 3.4 walkthrough: "They then simulate the model and get a
//! negative result … They run the simulation again and this time get a
//! 'good' result." The wrapper posts the designer's interpretation as an
//! event (`hdl_sim` / `nl_sim`) with the verdict as `$arg` — the simulation
//! *output* itself is deliberately not tracked ("the views for the output of
//! simulations were deliberately left out and replaced by event messages").

use blueprint_core::engine::exec::{DetachedJob, ToolCtx};
use damocles_meta::{Direction, EventMessage, MetaError};

use crate::design_data;
use crate::tool::{input_oid, payload_of, Tool};
use crate::FaultPlan;

/// Simulated HDL/netlist simulator.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    fault: FaultPlan,
}

impl Simulator {
    /// A simulator with fault injection.
    pub fn new(fault: FaultPlan) -> Self {
        Simulator { fault }
    }

    /// The event name for a given input view, following the paper's naming:
    /// `HDL_model → hdl_sim`, `netlist → nl_sim`, anything else
    /// `<view>_sim`.
    pub fn event_for_view(view: &str) -> String {
        match view {
            "HDL_model" => "hdl_sim".to_string(),
            "netlist" => "nl_sim".to_string(),
            other => format!("{other}_sim"),
        }
    }
}

impl Tool for Simulator {
    fn name(&self) -> &'static str {
        "simulator"
    }

    /// Simulates the input payload and posts the verdict event targeted at
    /// the input OID, direction `up` (results flow back towards sources,
    /// e.g. `nl_sim` crossing the schematic→netlist link to update the
    /// schematic's `nl_sim_res`).
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        let (id, oid) = input_oid(ctx, args)?;
        let payload = payload_of(ctx, id, &oid);
        let verdict = if self.fault.fails("simulator", &oid.to_string()) {
            "simulation crashed".to_string()
        } else {
            design_data::sim_verdict(&payload)
        };
        let event = Self::event_for_view(oid.view.as_str());
        Ok(vec![
            EventMessage::new(event, Direction::Up, oid).with_arg(verdict)
        ])
    }

    /// Detached form: the input payload is captured at prepare time (on
    /// the command loop) so the worker thread needs no database access; a
    /// fault is a retryable crash rather than a verdict.
    fn prepare_detached(&self, ctx: &ToolCtx<'_>, args: &[String]) -> Option<DetachedJob> {
        let (id, oid) = input_oid(ctx, args).ok()?;
        let payload = payload_of(ctx, id, &oid);
        let event = Self::event_for_view(oid.view.as_str());
        let fault = self.fault;
        Some(Box::new(move |attempt| {
            if fault.fails_attempt("simulator", &oid.to_string(), attempt) {
                Err("simulation crashed".to_string())
            } else {
                Ok(vec![EventMessage::new(
                    event.clone(),
                    Direction::Up,
                    oid.clone(),
                )
                .with_arg(design_data::sim_verdict(&payload))])
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{MetaDb, Workspace};

    fn harness() -> (MetaDb, Workspace, blueprint_core::Blueprint, AuditLog) {
        let bp =
            parse("blueprint t view HDL_model endview view netlist endview endblueprint").unwrap();
        (
            MetaDb::new(),
            Workspace::new("w"),
            bp,
            AuditLog::counters_only(),
        )
    }

    #[test]
    fn clean_model_simulates_good() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let (_, oid) = ws
            .checkin(
                &mut db,
                "cpu",
                "HDL_model",
                "yves",
                design_data::hdl_source("cpu", 1, &[], false),
            )
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Simulator::new(FaultPlan::never())
            .run(&mut ctx, &[oid.to_string()])
            .unwrap();
        assert_eq!(msgs[0].event, "hdl_sim");
        assert_eq!(msgs[0].arg(), Some("good"));
        assert_eq!(msgs[0].direction, Direction::Up);
    }

    #[test]
    fn buggy_model_reports_errors() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let (_, oid) = ws
            .checkin(
                &mut db,
                "cpu",
                "HDL_model",
                "yves",
                design_data::hdl_source("cpu", 1, &[], true),
            )
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Simulator::new(FaultPlan::never())
            .run(&mut ctx, &[oid.to_string()])
            .unwrap();
        assert!(msgs[0].arg().unwrap().ends_with("errors"));
    }

    #[test]
    fn netlist_view_gets_nl_sim_event() {
        assert_eq!(Simulator::event_for_view("netlist"), "nl_sim");
        assert_eq!(Simulator::event_for_view("HDL_model"), "hdl_sim");
        assert_eq!(Simulator::event_for_view("spice"), "spice_sim");
    }

    #[test]
    fn fault_injection_crashes_runs() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let (_, oid) = ws
            .checkin(
                &mut db,
                "cpu",
                "HDL_model",
                "yves",
                design_data::hdl_source("cpu", 1, &[], false),
            )
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Simulator::new(FaultPlan::new(1, 1.0))
            .run(&mut ctx, &[oid.to_string()])
            .unwrap();
        assert_eq!(msgs[0].arg(), Some("simulation crashed"));
    }
}

//! The simulated EDA tools of the sample design flow (Fig. 4): synthesis,
//! schematic generation, netlisting, simulation, layout, DRC and LVS.

mod drc;
mod layout;
mod lvs;
mod netlister;
mod simulator;
mod synthesis;

pub use drc::Drc;
pub use layout::LayoutGen;
pub use lvs::Lvs;
pub use netlister::Netlister;
pub use simulator::Simulator;
pub use synthesis::Synthesizer;

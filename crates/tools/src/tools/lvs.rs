//! Layout-versus-schematic: a real equivalence check over simulated data.
//!
//! Unlike DRC, the LVS verdict is computed, not injected: the layout payload
//! embeds the content hash of the schematic it was derived from
//! ([`crate::design_data::derive`]), so LVS can detect a layout that lags its
//! schematic — the exact staleness the Fig. 5 equivalence link models.

use blueprint_core::engine::exec::{DetachedJob, ToolCtx};
use damocles_meta::{Direction, EventMessage, LinkClass, MetaError, OidId};

use crate::design_data;
use crate::tool::{input_oid, payload_of, Tool};
use crate::FaultPlan;

/// Simulated LVS.
#[derive(Debug, Clone, Copy)]
pub struct Lvs {
    fault: FaultPlan,
}

impl Lvs {
    /// An LVS with fault injection (a fault forces `not_equiv`).
    pub fn new(fault: FaultPlan) -> Self {
        Lvs { fault }
    }

    /// The schematic OID the layout is linked to, if any.
    fn linked_schematic(ctx: &ToolCtx<'_>, layout: OidId) -> Result<Option<OidId>, MetaError> {
        for (_, link) in ctx.db.links_of(layout)? {
            if link.class != LinkClass::Derive {
                continue;
            }
            let other = match link.other_end(layout) {
                Some(o) => o,
                None => continue,
            };
            if ctx.db.oid(other)?.view.as_str() == "schematic" {
                return Ok(Some(other));
            }
        }
        Ok(None)
    }
}

impl Tool for Lvs {
    fn name(&self) -> &'static str {
        "lvs"
    }

    /// Posts `lvs <verdict>` targeted at the input layout, direction `up` so
    /// the verdict also crosses the equivalence link back to the schematic
    /// side when the blueprint propagates `lvs`.
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        let (lay_id, lay_oid) = input_oid(ctx, args)?;
        let verdict = if self.fault.fails("lvs", &lay_oid.to_string()) {
            "not_equiv".to_string()
        } else {
            match Self::linked_schematic(ctx, lay_id)? {
                Some(sch_id) => {
                    let sch_oid = ctx.db.oid(sch_id)?.clone();
                    let layout = payload_of(ctx, lay_id, &lay_oid);
                    let schematic = payload_of(ctx, sch_id, &sch_oid);
                    if design_data::derived_from("layout", &layout, &schematic) {
                        "is_equiv".to_string()
                    } else {
                        "not_equiv".to_string()
                    }
                }
                None => "not_equiv".to_string(),
            }
        };
        Ok(vec![
            EventMessage::new("lvs", Direction::Up, lay_oid).with_arg(verdict)
        ])
    }

    /// Detached form: the schematic link is resolved and both payloads
    /// captured at prepare time; the equivalence verdict is computed on
    /// the worker. A fault is a retryable crash, not a verdict.
    fn prepare_detached(&self, ctx: &ToolCtx<'_>, args: &[String]) -> Option<DetachedJob> {
        let (lay_id, lay_oid) = input_oid(ctx, args).ok()?;
        let payloads = match Self::linked_schematic(ctx, lay_id).ok()? {
            Some(sch_id) => {
                let sch_oid = ctx.db.oid(sch_id).ok()?.clone();
                Some((
                    payload_of(ctx, lay_id, &lay_oid),
                    payload_of(ctx, sch_id, &sch_oid),
                ))
            }
            None => None,
        };
        let fault = self.fault;
        Some(Box::new(move |attempt| {
            if fault.fails_attempt("lvs", &lay_oid.to_string(), attempt) {
                return Err("lvs run crashed".to_string());
            }
            let verdict = match &payloads {
                Some((layout, schematic))
                    if design_data::derived_from("layout", layout, schematic) =>
                {
                    "is_equiv"
                }
                _ => "not_equiv",
            };
            Ok(vec![EventMessage::new(
                "lvs",
                Direction::Up,
                lay_oid.clone(),
            )
            .with_arg(verdict)])
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tools::LayoutGen;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{MetaDb, Oid, Workspace};

    const BP: &str = r#"blueprint t
        view schematic endview
        view layout
            link_from schematic propagates lvs, outofdate type equivalence
        endview
    endblueprint"#;

    fn setup() -> (MetaDb, Workspace, blueprint_core::Blueprint, AuditLog) {
        (
            MetaDb::new(),
            Workspace::new("w"),
            parse(BP).unwrap(),
            AuditLog::counters_only(),
        )
    }

    #[test]
    fn fresh_layout_is_equivalent() {
        let (mut db, mut ws, bp, mut audit) = setup();
        let (_, sch_oid) = ws
            .checkin(&mut db, "alu", "schematic", "yves", b"sch-v1".to_vec())
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        LayoutGen::new()
            .run(&mut ctx, &[sch_oid.to_string()])
            .unwrap();
        let msgs = Lvs::new(FaultPlan::never())
            .run(&mut ctx, &["alu,layout,1".into()])
            .unwrap();
        assert_eq!(msgs[0].arg(), Some("is_equiv"));
    }

    #[test]
    fn stale_layout_is_detected() {
        let (mut db, mut ws, bp, mut audit) = setup();
        let (sch_id, sch_oid) = ws
            .checkin(&mut db, "alu", "schematic", "yves", b"sch-v1".to_vec())
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        LayoutGen::new()
            .run(&mut ctx, &[sch_oid.to_string()])
            .unwrap();
        // The schematic changes in place (same OID, new payload): the layout
        // now lags it.
        ctx.workspace.store(sch_id, b"sch-v1-edited".to_vec());
        let msgs = Lvs::new(FaultPlan::never())
            .run(&mut ctx, &["alu,layout,1".into()])
            .unwrap();
        assert_eq!(msgs[0].arg(), Some("not_equiv"));
    }

    #[test]
    fn unlinked_layout_is_not_equiv() {
        let (mut db, mut ws, bp, mut audit) = setup();
        db.create_oid(Oid::new("alu", "layout", 1)).unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Lvs::new(FaultPlan::never())
            .run(&mut ctx, &["alu,layout,1".into()])
            .unwrap();
        assert_eq!(msgs[0].arg(), Some("not_equiv"));
    }

    #[test]
    fn fault_forces_not_equiv() {
        let (mut db, mut ws, bp, mut audit) = setup();
        let (_, sch_oid) = ws
            .checkin(&mut db, "alu", "schematic", "yves", b"sch-v1".to_vec())
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        LayoutGen::new()
            .run(&mut ctx, &[sch_oid.to_string()])
            .unwrap();
        let msgs = Lvs::new(FaultPlan::new(0, 1.0))
            .run(&mut ctx, &["alu,layout,1".into()])
            .unwrap();
        assert_eq!(msgs[0].arg(), Some("not_equiv"));
    }
}

//! The layout generator: schematic → layout.

use blueprint_core::engine::exec::ToolCtx;
use damocles_meta::{Direction, EventMessage, MetaError};

use crate::design_data;
use crate::tool::{ensure_connected, input_oid, payload_of, Tool};

/// Simulated layout editor / place-and-route.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutGen {
    _private: (),
}

impl LayoutGen {
    /// Creates a layout generator.
    pub fn new() -> Self {
        LayoutGen::default()
    }
}

impl Tool for LayoutGen {
    fn name(&self) -> &'static str {
        "layout_gen"
    }

    /// Derives a layout payload from the input schematic, creates the next
    /// `(block, layout)` version linked to the schematic (the equivalence
    /// link of Fig. 5), and posts `ckin` for the new layout.
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        let (sch_id, sch_oid) = input_oid(ctx, args)?;
        let schematic = payload_of(ctx, sch_id, &sch_oid);
        let layout = design_data::derive("layout", &schematic);
        let (lay_id, lay_oid) =
            ctx.create_versioned(sch_oid.block.as_str(), "layout", "layout_gen", layout)?;
        ensure_connected(ctx, sch_id, lay_id)?;
        Ok(vec![EventMessage::new("ckin", Direction::Up, lay_oid)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{LinkKind, MetaDb, Oid, Workspace};

    const BP: &str = r#"blueprint t
        view schematic endview
        view layout
            link_from schematic propagates lvs, outofdate type equivalence
        endview
    endblueprint"#;

    #[test]
    fn creates_equivalence_linked_layout() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let (sch_id, sch_oid) = ws
            .checkin(&mut db, "alu", "schematic", "yves", b"sch".to_vec())
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = LayoutGen::new()
            .run(&mut ctx, &[sch_oid.to_string()])
            .unwrap();
        assert_eq!(msgs[0].target, Oid::new("alu", "layout", 1));
        let lay_id = ctx.db.require(&Oid::new("alu", "layout", 1)).unwrap();
        let links = ctx.db.links_of(lay_id).unwrap();
        assert_eq!(links.len(), 1);
        let (_, link) = &links[0];
        assert_eq!(link.kind, LinkKind::Equivalence);
        assert_eq!(link.from, sch_id);
        assert!(link.allows("lvs"));
        // Lineage is real: the layout payload derives from the schematic's.
        let lay = ctx.workspace.datum(lay_id).unwrap().content.clone();
        let sch = ctx.workspace.datum(sch_id).unwrap().content.clone();
        assert!(design_data::derived_from("layout", &lay, &sch));
    }
}

//! The synthesizer: HDL model → schematic hierarchy.
//!
//! In Section 3.4 synthesis of the CPU model "creates OIDs
//! `<CPU.schematic.1>` and `<REG.schematic.1>`. The second OID is part of the
//! hierarchy of the CPU schematic. It has a use link (hierarchical link)
//! which points to it from the CPU schematic." The simulated synthesizer
//! reads `submodule` lines out of the HDL payload to build that hierarchy.

use blueprint_core::engine::exec::ToolCtx;
use damocles_meta::{Direction, EventMessage, MetaError};

use crate::design_data;
use crate::tool::{ensure_connected, input_oid, payload_of, Tool};

/// Simulated synthesis tool.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synthesizer {
    _private: (),
}

impl Synthesizer {
    /// Creates a synthesizer.
    pub fn new() -> Self {
        Synthesizer::default()
    }
}

impl Tool for Synthesizer {
    fn name(&self) -> &'static str {
        "synthesizer"
    }

    /// Creates the next schematic version for the input block, one schematic
    /// per `submodule` with use links from the top, a derive link from the
    /// HDL model, and posts `ckin` for every created schematic (top first).
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        let (hdl_id, hdl_oid) = input_oid(ctx, args)?;
        let hdl = payload_of(ctx, hdl_id, &hdl_oid);
        let top_payload = design_data::derive("schematic", &hdl);
        let (top_id, top_oid) = ctx.create_versioned(
            hdl_oid.block.as_str(),
            "schematic",
            "synthesizer",
            top_payload,
        )?;
        ensure_connected(ctx, hdl_id, top_id)?;

        let mut messages = vec![EventMessage::new("ckin", Direction::Up, top_oid)];
        for sub in design_data::submodules_of(&hdl) {
            let sub_payload = design_data::derive("schematic", sub.as_bytes());
            let (sub_id, sub_oid) =
                ctx.create_versioned(&sub, "schematic", "synthesizer", sub_payload)?;
            ensure_connected(ctx, top_id, sub_id)?;
            messages.push(EventMessage::new("ckin", Direction::Up, sub_oid));
        }
        Ok(messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::audit::AuditLog;
    use blueprint_core::lang::parser::parse;
    use damocles_meta::{LinkClass, MetaDb, Oid, Workspace};

    const BP: &str = r#"blueprint t
        view HDL_model endview
        view schematic
            link_from HDL_model move propagates outofdate type derived
            use_link move propagates outofdate
        endview
    endblueprint"#;

    #[test]
    fn synthesizes_the_papers_cpu_reg_hierarchy() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let (_, hdl_oid) = ws
            .checkin(
                &mut db,
                "CPU",
                "HDL_model",
                "yves",
                design_data::hdl_source("CPU", 2, &["REG"], false),
            )
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Synthesizer::new()
            .run(&mut ctx, &[hdl_oid.to_string()])
            .unwrap();
        // ckin for CPU.schematic.1 then REG.schematic.1.
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].target, Oid::new("CPU", "schematic", 1));
        assert_eq!(msgs[1].target, Oid::new("REG", "schematic", 1));

        let cpu = ctx.db.require(&Oid::new("CPU", "schematic", 1)).unwrap();
        let reg = ctx.db.require(&Oid::new("REG", "schematic", 1)).unwrap();
        // CPU schematic uses REG schematic through a use link.
        let links = ctx.db.links_of(cpu).unwrap();
        assert!(links
            .iter()
            .any(|(_, l)| l.class == LinkClass::Use && l.to == reg));
        // And derives from the HDL model through a derive link.
        let hdl = ctx.db.require(&Oid::new("CPU", "HDL_model", 1)).unwrap();
        assert!(links
            .iter()
            .any(|(_, l)| l.class == LinkClass::Derive && l.from == hdl));
    }

    #[test]
    fn flat_model_creates_single_schematic() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let (_, hdl_oid) = ws
            .checkin(
                &mut db,
                "alu",
                "HDL_model",
                "yves",
                design_data::hdl_source("alu", 1, &[], false),
            )
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let msgs = Synthesizer::new()
            .run(&mut ctx, &[hdl_oid.to_string()])
            .unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(ctx.db.oids_of_view("schematic").len(), 1);
    }

    #[test]
    fn resynthesis_creates_new_versions() {
        let bp = parse(BP).unwrap();
        let mut db = MetaDb::new();
        let mut ws = Workspace::new("w");
        let mut audit = AuditLog::counters_only();
        let (_, hdl_oid) = ws
            .checkin(
                &mut db,
                "CPU",
                "HDL_model",
                "yves",
                design_data::hdl_source("CPU", 1, &["REG"], false),
            )
            .unwrap();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut tool = Synthesizer::new();
        tool.run(&mut ctx, &[hdl_oid.to_string()]).unwrap();
        tool.run(&mut ctx, &[hdl_oid.to_string()]).unwrap();
        assert_eq!(ctx.db.versions("CPU", "schematic"), vec![1, 2]);
        assert_eq!(ctx.db.versions("REG", "schematic"), vec![1, 2]);
    }
}

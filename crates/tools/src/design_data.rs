//! Deterministic simulated design data.
//!
//! The tracking system treats design data as opaque, but the *tools* need
//! content with real derivation structure so that equivalence checks mean
//! something: an LVS run must be able to tell whether a layout was produced
//! from the current schematic or from a stale one. The scheme:
//!
//! * HDL sources are text listing the block, a version marker, optional
//!   `submodule <name>` lines (consumed by the synthesizer to build the
//!   schematic hierarchy) and an optional `BUG` marker (failing simulations).
//! * Every derived artifact embeds `<kind>-of:<fnv64 of input>`, so
//!   derivation lineage is checkable by recomputation.

/// FNV-1a content hash used for derivation lineage.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds an HDL source payload.
///
/// `submodules` become `submodule <name>` lines the synthesizer expands into
/// hierarchy; `buggy` plants the `BUG` marker the simulator detects.
pub fn hdl_source(block: &str, version: u32, submodules: &[&str], buggy: bool) -> Vec<u8> {
    let mut text = format!("module {block}; // v{version}\n");
    for sub in submodules {
        text.push_str(&format!("submodule {sub}\n"));
    }
    if buggy {
        text.push_str("BUG\n");
    }
    text.push_str("endmodule\n");
    text.into_bytes()
}

/// Extracts the `submodule` names from an HDL payload.
pub fn submodules_of(payload: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(payload);
    text.lines()
        .filter_map(|l| l.strip_prefix("submodule "))
        .map(|s| s.trim().to_string())
        .collect()
}

/// Whether the payload carries the simulated bug marker.
pub fn has_bug(payload: &[u8]) -> bool {
    payload.windows(3).any(|w| w == b"BUG")
}

/// Derives an artifact of `kind` from `input`, embedding the lineage hash.
pub fn derive(kind: &str, input: &[u8]) -> Vec<u8> {
    let mut out = format!("{kind}-of:{:016x}\n", content_hash(input)).into_bytes();
    // Derived data inherits the bug marker: a buggy HDL model produces a
    // buggy netlist, so netlist simulation fails too.
    if has_bug(input) {
        out.extend_from_slice(b"BUG\n");
    }
    out
}

/// Whether `derived` was produced (by [`derive()`]) from exactly `input`.
pub fn derived_from(kind: &str, derived: &[u8], input: &[u8]) -> bool {
    let expected = format!("{kind}-of:{:016x}", content_hash(input));
    String::from_utf8_lossy(derived)
        .lines()
        .next()
        .is_some_and(|first| first == expected)
}

/// The simulated result message for a payload: `good`, or `N errors` with a
/// deterministic pseudo-count derived from the content hash.
pub fn sim_verdict(payload: &[u8]) -> String {
    if has_bug(payload) {
        let errors = (content_hash(payload) % 7) + 1;
        format!("{errors} errors")
    } else {
        "good".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdl_source_lists_submodules() {
        let src = hdl_source("cpu", 1, &["reg", "alu"], false);
        assert_eq!(submodules_of(&src), vec!["reg", "alu"]);
        assert!(!has_bug(&src));
    }

    #[test]
    fn bug_marker_detected() {
        let src = hdl_source("cpu", 2, &[], true);
        assert!(has_bug(&src));
        assert!(sim_verdict(&src).ends_with("errors"));
        let clean = hdl_source("cpu", 3, &[], false);
        assert_eq!(sim_verdict(&clean), "good");
    }

    #[test]
    fn derivation_lineage_checks() {
        let src = hdl_source("cpu", 1, &[], false);
        let netlist = derive("netlist", &src);
        assert!(derived_from("netlist", &netlist, &src));
        let src2 = hdl_source("cpu", 2, &[], false);
        assert!(!derived_from("netlist", &netlist, &src2));
        assert!(!derived_from("layout", &netlist, &src));
    }

    #[test]
    fn bugs_propagate_through_derivation() {
        let buggy = hdl_source("cpu", 1, &[], true);
        let netlist = derive("netlist", &buggy);
        assert!(has_bug(&netlist));
        let layout = derive("layout", &netlist);
        assert!(has_bug(&layout));
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = hdl_source("cpu", 1, &[], false);
        assert_eq!(content_hash(&a), content_hash(&a));
        let b = hdl_source("cpu", 2, &[], false);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn verdict_is_deterministic() {
        let buggy = hdl_source("x", 1, &[], true);
        assert_eq!(sim_verdict(&buggy), sim_verdict(&buggy));
    }
}

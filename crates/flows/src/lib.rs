//! # damocles-flows — flows, workloads and baseline trackers
//!
//! Everything the reproduction experiments run on:
//!
//! * [`edtc`] — the paper's Section 3.4 BluePrint, embedded (normalized)
//!   plus the "loosened" early-phase variant of Section 3.2;
//! * [`asic`] — a deeper nine-view ASIC sign-off flow exercising longer
//!   derivation chains;
//! * [`generator`] — parameterized design shapes ([`generator::DesignSpec`]),
//!   server population and seeded designer-activity streams;
//! * [`scenario`] — a scripted scenario player;
//! * [`baseline`] — the Section 4 comparison strategies (event-driven
//!   DAMOCLES vs NELSIS-style eager revalidation vs make-style polling vs no
//!   tracking), cross-validated to compute identical out-of-date sets;
//! * [`metrics`] — ASCII report helpers used by examples and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asic;
pub mod baseline;
pub mod edtc;
pub mod generator;
pub mod metrics;
pub mod scenario;
pub mod viz;

pub use baseline::{
    ChangeTracker, DamoclesTracker, DepGraph, EagerTracker, ManualTracker, PollingTracker,
    TrackerWork,
};
pub use edtc::{edtc_blueprint, edtc_loosened_blueprint, EDTC_LOOSENED_SOURCE, EDTC_SOURCE};
pub use generator::{populate, Activity, ActivityStream, DesignSpec};

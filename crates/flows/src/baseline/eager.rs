//! NELSIS-style activity-driven tracker: full revalidation per activity.
//!
//! "In the NELSIS framework the data flow management is driven by design
//! activities" (Section 4): the framework owns the flow and re-derives the
//! state of the whole flow graph whenever an activity completes. That global
//! re-derivation is what makes it obstructive at scale — and what this
//! baseline counts.

use std::collections::BTreeSet;

use super::{ChangeTracker, DepGraph, TrackerWork};

/// Eager full-revalidation tracker.
#[derive(Debug, Clone)]
pub struct EagerTracker {
    graph: DepGraph,
    timestamps: Vec<u64>,
    stale: BTreeSet<usize>,
    seq: u64,
    work: TrackerWork,
}

impl EagerTracker {
    /// A tracker over `graph` with everything initially fresh.
    pub fn new(graph: DepGraph) -> Self {
        let n = graph.len();
        EagerTracker {
            graph,
            timestamps: vec![0; n],
            stale: BTreeSet::new(),
            seq: 0,
            work: TrackerWork::default(),
        }
    }

    /// Recomputes the stale set for the entire graph: one pass in
    /// topological order, carrying the max upstream timestamp.
    fn revalidate_everything(&mut self) {
        self.stale.clear();
        let order = self.graph.topo_order();
        let mut max_upstream = vec![0u64; self.graph.len()];
        for &node in &order {
            self.work.checkin_units += 1;
            let mut newest = 0;
            for &dep in self.graph.upstream(node) {
                self.work.checkin_units += 1;
                newest = newest.max(self.timestamps[dep]).max(max_upstream[dep]);
            }
            max_upstream[node] = newest;
            if newest > self.timestamps[node] {
                self.stale.insert(node);
            }
        }
    }
}

impl ChangeTracker for EagerTracker {
    fn name(&self) -> &'static str {
        "eager (NELSIS-style)"
    }

    fn on_checkin(&mut self, node: usize) {
        self.seq += 1;
        self.timestamps[node] = self.seq;
        self.revalidate_everything();
    }

    fn out_of_date(&mut self) -> BTreeSet<usize> {
        self.work.query_units += 1;
        self.stale.clone()
    }

    fn work(&self) -> TrackerWork {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DesignSpec;

    fn chain3() -> DepGraph {
        // 0 -> 1 -> 2
        let mut g = DepGraph::isolated(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g
    }

    #[test]
    fn root_change_invalidates_descendants() {
        let mut t = EagerTracker::new(chain3());
        t.on_checkin(0);
        assert_eq!(t.out_of_date(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn checking_in_descendant_refreshes_it() {
        let mut t = EagerTracker::new(chain3());
        t.on_checkin(0);
        t.on_checkin(1);
        // 1 now newer than 0; 2 still older than 1.
        assert_eq!(t.out_of_date(), BTreeSet::from([2]));
        t.on_checkin(2);
        assert!(t.out_of_date().is_empty());
    }

    #[test]
    fn work_scales_with_whole_graph() {
        let spec = DesignSpec {
            stages: 5,
            blocks: 10,
            fanout: 2,
        };
        let g = DepGraph::from_spec(&spec);
        let per_pass = (g.len() + g.edge_count()) as u64;
        let mut t = EagerTracker::new(g);
        t.on_checkin(0);
        assert_eq!(t.work().checkin_units, per_pass);
        // A sink checkin costs exactly the same: the whole graph again.
        let sink = spec.oid_count() - 1;
        t.on_checkin(sink);
        assert_eq!(t.work().checkin_units, 2 * per_pass);
    }
}

//! The shared dependency-graph model all baseline trackers operate on.

use crate::generator::DesignSpec;

/// A DAG of design objects: node `n` depends on its `upstream` neighbours
/// (derivation sources and hierarchical parents), and invalidates its
/// `downstream` neighbours when it changes.
#[derive(Debug, Clone)]
pub struct DepGraph {
    upstream: Vec<Vec<usize>>,
    downstream: Vec<Vec<usize>>,
    labels: Vec<(String, String)>,
}

impl DepGraph {
    /// Builds the graph matching [`crate::generator::populate`]: node
    /// `stage * blocks + b`, derivation edges along the stage chain, and
    /// hierarchy edges within each stage.
    pub fn from_spec(spec: &DesignSpec) -> Self {
        let n = spec.oid_count();
        let mut g = DepGraph {
            upstream: vec![Vec::new(); n],
            downstream: vec![Vec::new(); n],
            labels: Vec::with_capacity(n),
        };
        for stage in 0..spec.stages {
            for b in 0..spec.blocks {
                g.labels
                    .push((DesignSpec::block_name(b), DesignSpec::view_name(stage)));
            }
        }
        let idx = |stage: usize, b: usize| stage * spec.blocks + b;
        for stage in 0..spec.stages {
            for b in 0..spec.blocks {
                if stage > 0 {
                    g.add_edge(idx(stage - 1, b), idx(stage, b));
                }
                if let Some(parent) = spec.parent_of(b) {
                    g.add_edge(idx(stage, parent), idx(stage, b));
                }
            }
        }
        g
    }

    /// An empty graph with `n` isolated nodes (for tests).
    pub fn isolated(n: usize) -> Self {
        DepGraph {
            upstream: vec![Vec::new(); n],
            downstream: vec![Vec::new(); n],
            labels: (0..n).map(|i| (format!("n{i}"), "v".to_string())).collect(),
        }
    }

    /// Adds a dependency edge `from → to` (`to` depends on `from`).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.downstream[from].push(to);
        self.upstream[to].push(from);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.upstream.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.upstream.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.downstream.iter().map(Vec::len).sum()
    }

    /// Direct dependencies of `n`.
    pub fn upstream(&self, n: usize) -> &[usize] {
        &self.upstream[n]
    }

    /// Direct dependents of `n`.
    pub fn downstream(&self, n: usize) -> &[usize] {
        &self.downstream[n]
    }

    /// The `(block, view)` label of node `n`.
    pub fn label(&self, n: usize) -> (&str, &str) {
        let (b, v) = &self.labels[n];
        (b, v)
    }

    /// Nodes in topological order (dependencies first).
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle; generated design graphs are DAGs.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.upstream[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = queue.pop() {
            order.push(node);
            for &next in &self.downstream[node] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    queue.push(next);
                }
            }
        }
        assert_eq!(order.len(), n, "dependency graph has a cycle");
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_graph_shape() {
        let spec = DesignSpec {
            stages: 3,
            blocks: 3,
            fanout: 2,
        };
        let g = DepGraph::from_spec(&spec);
        assert_eq!(g.len(), 9);
        // chain edges: 2 stages * 3 blocks; hierarchy: 3 stages * 2 children
        assert_eq!(g.edge_count(), 6 + 6);
        // stage-1 node depends on its stage-0 counterpart.
        assert_eq!(g.upstream(3), &[0]);
        // node 1 (stage 0, blk1) depends on node 0 (its hierarchy parent).
        assert_eq!(g.upstream(1), &[0]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let spec = DesignSpec {
            stages: 4,
            blocks: 5,
            fanout: 2,
        };
        let g = DepGraph::from_spec(&spec);
        let order = g.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &node) in order.iter().enumerate() {
                p[node] = i;
            }
            p
        };
        for from in 0..g.len() {
            for &to in g.downstream(from) {
                assert!(pos[from] < pos[to], "{from} must precede {to}");
            }
        }
    }

    #[test]
    fn labels_match_generator_names() {
        let spec = DesignSpec {
            stages: 2,
            blocks: 2,
            fanout: 2,
        };
        let g = DepGraph::from_spec(&spec);
        assert_eq!(g.label(0), ("blk0", "v0"));
        assert_eq!(g.label(3), ("blk1", "v1"));
    }
}

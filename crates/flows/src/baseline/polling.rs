//! Make-style polling tracker: cheap check-ins, full rescans on query.

use std::collections::BTreeSet;

use super::{ChangeTracker, DepGraph, TrackerWork};

/// Timestamp-scanning tracker: `on_checkin` is O(1); every `out_of_date`
/// query rescans the whole graph, like `make` re-statting every file.
#[derive(Debug, Clone)]
pub struct PollingTracker {
    graph: DepGraph,
    timestamps: Vec<u64>,
    seq: u64,
    work: TrackerWork,
}

impl PollingTracker {
    /// A tracker over `graph` with everything initially fresh.
    pub fn new(graph: DepGraph) -> Self {
        let n = graph.len();
        PollingTracker {
            graph,
            timestamps: vec![0; n],
            seq: 0,
            work: TrackerWork::default(),
        }
    }
}

impl ChangeTracker for PollingTracker {
    fn name(&self) -> &'static str {
        "polling (make-style)"
    }

    fn on_checkin(&mut self, node: usize) {
        self.seq += 1;
        self.timestamps[node] = self.seq;
        self.work.checkin_units += 1;
    }

    fn out_of_date(&mut self) -> BTreeSet<usize> {
        // Full rescan: carry max upstream timestamps in topological order.
        let order = self.graph.topo_order();
        let mut max_upstream = vec![0u64; self.graph.len()];
        let mut stale = BTreeSet::new();
        for &node in &order {
            self.work.query_units += 1;
            let mut newest = 0;
            for &dep in self.graph.upstream(node) {
                self.work.query_units += 1;
                newest = newest.max(self.timestamps[dep]).max(max_upstream[dep]);
            }
            max_upstream[node] = newest;
            if newest > self.timestamps[node] {
                stale.insert(node);
            }
        }
        stale
    }

    fn work(&self) -> TrackerWork {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkins_are_cheap_queries_are_not() {
        let mut g = DepGraph::isolated(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        let mut t = PollingTracker::new(g);
        t.on_checkin(0);
        assert_eq!(t.work().checkin_units, 1);
        let stale = t.out_of_date();
        assert_eq!(stale, BTreeSet::from([1, 2, 3]));
        assert_eq!(t.work().query_units, 4 + 3);
    }

    #[test]
    fn diamond_dependency_handled() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = DepGraph::isolated(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let mut t = PollingTracker::new(g);
        t.on_checkin(1);
        // 3 stale through the 1-branch; 2 unaffected.
        assert_eq!(t.out_of_date(), BTreeSet::from([3]));
        t.on_checkin(3);
        assert!(t.out_of_date().is_empty());
        t.on_checkin(0);
        assert_eq!(t.out_of_date(), BTreeSet::from([1, 2, 3]));
    }
}

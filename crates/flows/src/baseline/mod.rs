//! Baseline change trackers for the Section 4 related-work comparison.
//!
//! NELSIS, HILDA and ULYSSES are extinct closed systems; what the paper
//! contrasts is *where tracking work happens*:
//!
//! * DAMOCLES/BluePrint ([`DamoclesTracker`]): an **observer** — each change
//!   propagates through exactly the affected subgraph, queries are
//!   precomputed state.
//! * NELSIS-style ([`EagerTracker`]): **activity-driven** — the framework
//!   re-derives the validity of the whole flow graph on every activity.
//! * make-style ([`PollingTracker`]): nothing happens on change; every query
//!   rescans all dependencies against timestamps.
//! * no tracking ([`ManualTracker`]): the designer reconstructs staleness by
//!   walking dependencies per block on demand.
//!
//! All four implement [`ChangeTracker`] over the same [`DepGraph`] semantics
//! — *a node is out of date iff some transitive dependency carries a newer
//! timestamp* — and a cross-validation test asserts they always agree, so
//! the benchmark differences are pure overhead, not semantics.

mod damocles;
mod eager;
mod graph;
mod manual;
mod polling;

pub use damocles::DamoclesTracker;
pub use eager::EagerTracker;
pub use graph::DepGraph;
pub use manual::ManualTracker;
pub use polling::PollingTracker;

use std::collections::BTreeSet;

/// Cumulative work counters (graph units: node visits + edge traversals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerWork {
    /// Units spent reacting to check-ins.
    pub checkin_units: u64,
    /// Units spent answering out-of-date queries.
    pub query_units: u64,
}

impl TrackerWork {
    /// Total units.
    pub fn total(&self) -> u64 {
        self.checkin_units + self.query_units
    }
}

/// A change-tracking strategy over a [`DepGraph`].
pub trait ChangeTracker {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// A new version of node `n` was checked in.
    fn on_checkin(&mut self, node: usize);

    /// The set of out-of-date nodes.
    fn out_of_date(&mut self) -> BTreeSet<usize>;

    /// Cumulative work counters.
    fn work(&self) -> TrackerWork;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DesignSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// All four trackers agree on every prefix of a random checkin stream.
    #[test]
    fn trackers_agree_on_random_streams() {
        let spec = DesignSpec {
            stages: 4,
            blocks: 7,
            fanout: 2,
        };
        let graph = DepGraph::from_spec(&spec);
        let mut damocles = DamoclesTracker::new(&spec);
        let mut eager = EagerTracker::new(graph.clone());
        let mut polling = PollingTracker::new(graph.clone());
        let mut manual = ManualTracker::new(graph.clone());

        let mut rng = StdRng::seed_from_u64(20);
        for step in 0..40 {
            let node = rng.gen_range(0..graph.len());
            damocles.on_checkin(node);
            eager.on_checkin(node);
            polling.on_checkin(node);
            manual.on_checkin(node);

            let d = damocles.out_of_date();
            let e = eager.out_of_date();
            let p = polling.out_of_date();
            let m = manual.out_of_date();
            assert_eq!(d, e, "damocles vs eager at step {step} (node {node})");
            assert_eq!(e, p, "eager vs polling at step {step}");
            assert_eq!(p, m, "polling vs manual at step {step}");
        }
    }

    /// The headline claim: DAMOCLES check-in work scales with the affected
    /// subgraph while the eager baseline scales with the whole design.
    #[test]
    fn damocles_checkin_work_is_less_than_eager_on_leaf_changes() {
        let spec = DesignSpec {
            stages: 6,
            blocks: 15,
            fanout: 2,
        };
        let graph = DepGraph::from_spec(&spec);
        let mut damocles = DamoclesTracker::new(&spec);
        let mut eager = EagerTracker::new(graph.clone());

        // Checking in a *sink* node (last stage, leaf block) touches almost
        // nothing downstream.
        let leaf = graph.len() - 1;
        for _ in 0..10 {
            damocles.on_checkin(leaf);
            eager.on_checkin(leaf);
        }
        assert!(
            damocles.work().checkin_units < eager.work().checkin_units,
            "damocles {:?} vs eager {:?}",
            damocles.work(),
            eager.work()
        );
    }
}

//! No-tracking baseline: the designer reconstructs staleness by hand.

use std::collections::BTreeSet;

use super::{ChangeTracker, DepGraph, TrackerWork};

/// No bookkeeping beyond raw timestamps; every query walks each node's
/// dependency cone separately (with early exit on the first newer
/// dependency), the way a designer would chase "is my netlist current?"
/// through the team.
#[derive(Debug, Clone)]
pub struct ManualTracker {
    graph: DepGraph,
    timestamps: Vec<u64>,
    seq: u64,
    work: TrackerWork,
}

impl ManualTracker {
    /// A tracker over `graph` with everything initially fresh.
    pub fn new(graph: DepGraph) -> Self {
        let n = graph.len();
        ManualTracker {
            graph,
            timestamps: vec![0; n],
            seq: 0,
            work: TrackerWork::default(),
        }
    }

    /// Whether any transitive dependency of `node` is newer (DFS, early
    /// exit).
    fn is_stale(&mut self, node: usize) -> bool {
        let mut visited = vec![false; self.graph.len()];
        let mut stack: Vec<usize> = self.graph.upstream(node).to_vec();
        while let Some(dep) = stack.pop() {
            if visited[dep] {
                continue;
            }
            visited[dep] = true;
            self.work.query_units += 1;
            if self.timestamps[dep] > self.timestamps[node] {
                return true;
            }
            stack.extend_from_slice(self.graph.upstream(dep));
        }
        false
    }
}

impl ChangeTracker for ManualTracker {
    fn name(&self) -> &'static str {
        "manual (no tracking)"
    }

    fn on_checkin(&mut self, node: usize) {
        self.seq += 1;
        self.timestamps[node] = self.seq;
    }

    fn out_of_date(&mut self) -> BTreeSet<usize> {
        (0..self.graph.len())
            .filter(|&n| self.is_stale(n))
            .collect()
    }

    fn work(&self) -> TrackerWork {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_expected_staleness() {
        let mut g = DepGraph::isolated(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        let mut t = ManualTracker::new(g);
        t.on_checkin(0);
        assert_eq!(t.out_of_date(), BTreeSet::from([1, 2, 3]));
        t.on_checkin(1);
        t.on_checkin(2);
        t.on_checkin(3);
        assert!(t.out_of_date().is_empty());
    }

    #[test]
    fn checkin_is_free_queries_are_expensive() {
        let mut g = DepGraph::isolated(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let mut t = ManualTracker::new(g);
        t.on_checkin(0);
        assert_eq!(t.work().checkin_units, 0);
        t.out_of_date();
        // node0: 0 deps; node1: visits 0; node2: early-exits at 1.
        assert!(t.work().query_units >= 2);
    }

    #[test]
    fn transitive_staleness_found_deep() {
        // long chain; only the root changes.
        let n = 30;
        let mut g = DepGraph::isolated(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        let mut t = ManualTracker::new(g);
        // establish increasing timestamps so everything starts fresh
        for i in 0..n {
            t.on_checkin(i);
        }
        assert!(t.out_of_date().is_empty());
        t.on_checkin(0);
        let stale = t.out_of_date();
        assert_eq!(stale.len(), n - 1);
    }
}

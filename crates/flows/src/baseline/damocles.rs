//! The DAMOCLES/BluePrint side of the comparison: a real project server
//! wrapped in the [`ChangeTracker`] interface.

use std::collections::BTreeSet;

use blueprint_core::engine::server::ProjectServer;
use damocles_meta::Value;

use super::{ChangeTracker, TrackerWork};
use crate::generator::{populate, DesignSpec};

/// Event-driven tracker backed by a full [`ProjectServer`] running the
/// generated blueprint. Check-in work is measured from the audit trail
/// (rule deliveries + link propagations), i.e. exactly the affected
/// subgraph; queries read precomputed `uptodate` state with a scan to
/// collect it.
#[derive(Debug)]
pub struct DamoclesTracker {
    spec: DesignSpec,
    server: ProjectServer,
    work: TrackerWork,
    last_engine_units: u64,
}

impl DamoclesTracker {
    /// Builds and populates a server for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the generated blueprint fails to initialize — impossible
    /// for valid specs (covered by generator tests).
    pub fn new(spec: &DesignSpec) -> Self {
        let mut server = ProjectServer::from_source(&spec.blueprint_source(true))
            .expect("generated blueprint is valid");
        populate(&mut server, spec).expect("populate succeeds on a fresh server");
        let baseline_units = {
            let s = server.audit().summary();
            s.deliveries + s.propagations
        };
        DamoclesTracker {
            spec: *spec,
            server,
            work: TrackerWork::default(),
            last_engine_units: baseline_units,
        }
    }

    /// The underlying server (for inspection).
    pub fn server(&self) -> &ProjectServer {
        &self.server
    }

    fn node_names(&self, node: usize) -> (String, String) {
        let stage = node / self.spec.blocks;
        let b = node % self.spec.blocks;
        (DesignSpec::block_name(b), DesignSpec::view_name(stage))
    }
}

impl ChangeTracker for DamoclesTracker {
    fn name(&self) -> &'static str {
        "DAMOCLES (event-driven)"
    }

    fn on_checkin(&mut self, node: usize) {
        let (block, view) = self.node_names(node);
        let version = self
            .server
            .db()
            .versions(&block, &view)
            .last()
            .map_or(1, |v| v + 1);
        let payload = format!("{block}:{view}:v{version}").into_bytes();
        self.server
            .checkin(&block, &view, "designer", payload)
            .expect("checkin on generated design");
        self.server.process_all().expect("process_all");
        let units = {
            let s = self.server.audit().summary();
            s.deliveries + s.propagations
        };
        self.work.checkin_units += units - self.last_engine_units;
        self.last_engine_units = units;
    }

    fn out_of_date(&mut self) -> BTreeSet<usize> {
        let mut stale = BTreeSet::new();
        for node in 0..self.spec.oid_count() {
            self.work.query_units += 1;
            let (block, view) = self.node_names(node);
            let fresh = self
                .server
                .db()
                .latest_version(&block, &view)
                .and_then(|id| self.server.db().get_prop(id, "uptodate").ok().flatten())
                .is_none_or(Value::is_truthy);
            if !fresh {
                stale.insert(node);
            }
        }
        stale
    }

    fn work(&self) -> TrackerWork {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_fresh() {
        let spec = DesignSpec::tiny();
        let mut t = DamoclesTracker::new(&spec);
        assert!(t.out_of_date().is_empty());
    }

    #[test]
    fn root_checkin_invalidates_downstream_nodes() {
        let spec = DesignSpec {
            stages: 3,
            blocks: 3,
            fanout: 2,
        };
        let mut t = DamoclesTracker::new(&spec);
        t.on_checkin(0); // blk0 at stage v0: everything downstream goes stale
        let stale = t.out_of_date();
        assert!(!stale.contains(&0), "the checked-in node itself is fresh");
        // Its stage-1 derivation is stale.
        assert!(stale.contains(&3));
    }

    #[test]
    fn sink_checkin_costs_constant_work() {
        let spec = DesignSpec {
            stages: 4,
            blocks: 8,
            fanout: 2,
        };
        let mut t = DamoclesTracker::new(&spec);
        let sink = spec.oid_count() - 1;
        t.on_checkin(sink);
        let first = t.work().checkin_units;
        t.on_checkin(sink);
        let second = t.work().checkin_units - first;
        // Both check-ins touch the same small subgraph.
        assert_eq!(first, second);
        assert!(first < spec.oid_count() as u64);
    }
}

//! Synthetic design and workload generation.
//!
//! The paper evaluates nothing quantitatively; to characterize the system we
//! need parameterized designs. A [`DesignSpec`] describes a design the way
//! the paper's examples are shaped:
//!
//! * a *flow chain* of `stages` views (`v0 → v1 → … → v(d-1)`), each derived
//!   from its predecessor (`link_from v(i-1) … propagates outofdate`);
//! * a *block hierarchy* of `blocks` blocks arranged as a tree of the given
//!   `fanout`, expressed per view through use links;
//! * the default view's `ckin`/`outofdate` rules, so a check-in anywhere
//!   invalidates everything downstream.
//!
//! [`populate`] instantiates the design in a project server;
//! [`ActivityStream`] generates a seeded random stream of designer actions
//! over it.

use blueprint_core::engine::exec::ScriptExecutor;
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::EngineError;
use damocles_meta::Oid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpec {
    /// Number of views in the derivation chain (≥ 1).
    pub stages: usize,
    /// Number of blocks in the hierarchy (≥ 1).
    pub blocks: usize,
    /// Hierarchy fanout (children per node, ≥ 1).
    pub fanout: usize,
}

impl DesignSpec {
    /// A small smoke-test design.
    pub fn tiny() -> Self {
        DesignSpec {
            stages: 3,
            blocks: 4,
            fanout: 2,
        }
    }

    /// Total OIDs a populated design starts with.
    pub fn oid_count(&self) -> usize {
        self.stages * self.blocks
    }

    /// The view name of stage `i`.
    pub fn view_name(i: usize) -> String {
        format!("v{i}")
    }

    /// The block name of node `b`.
    pub fn block_name(b: usize) -> String {
        format!("blk{b}")
    }

    /// Generates the blueprint source for this design shape.
    ///
    /// `propagate_outofdate` mirrors the strict/loosened distinction of
    /// Section 3.2: with `false`, links exist but carry nothing.
    pub fn blueprint_source(&self, propagate_outofdate: bool) -> String {
        let events = if propagate_outofdate {
            "outofdate"
        } else {
            "nothing"
        };
        let mut src = String::from("blueprint generated\nview default\n");
        src.push_str("    property uptodate default true\n");
        if propagate_outofdate {
            src.push_str("    when ckin do uptodate = true; post outofdate down done\n");
            src.push_str("    when outofdate do uptodate = false done\n");
        }
        src.push_str("endview\n");
        for i in 0..self.stages {
            src.push_str(&format!("view {}\n", Self::view_name(i)));
            if i > 0 {
                src.push_str(&format!(
                    "    link_from {} move propagates {events} type derived\n",
                    Self::view_name(i - 1)
                ));
            }
            src.push_str(&format!("    use_link move propagates {events}\n"));
            src.push_str("endview\n");
        }
        src.push_str("endblueprint\n");
        src
    }

    /// Parent of block `b` in the fanout tree (`None` for the root).
    pub fn parent_of(&self, b: usize) -> Option<usize> {
        if b == 0 {
            None
        } else {
            Some((b - 1) / self.fanout)
        }
    }
}

/// Builds the design in a fresh-or-existing server: one OID per
/// (stage, block), chain links between stages, use links down the hierarchy.
///
/// Check-ins run bottom-up through the stages so the design starts fully up
/// to date; call `process_all` afterwards (this function does).
///
/// # Errors
///
/// Propagates server errors (none expected on a fresh server).
pub fn populate<E: ScriptExecutor>(
    server: &mut ProjectServer<E>,
    spec: &DesignSpec,
) -> Result<(), EngineError> {
    // Create stage by stage so upstream objects exist before links form.
    let mut prev_stage: Vec<Oid> = Vec::new();
    for i in 0..spec.stages {
        let view = DesignSpec::view_name(i);
        let mut this_stage = Vec::with_capacity(spec.blocks);
        for b in 0..spec.blocks {
            let block = DesignSpec::block_name(b);
            let payload = format!("{block}:{view}:seed").into_bytes();
            let oid = server.checkin(&block, &view, "generator", payload)?;
            this_stage.push(oid);
        }
        // Derivation links from the previous stage, block-wise.
        if i > 0 {
            for b in 0..spec.blocks {
                server.connect_oids(&prev_stage[b], &this_stage[b])?;
            }
        }
        // Hierarchy links within this stage.
        for b in 1..spec.blocks {
            let parent = spec.parent_of(b).expect("non-root");
            server.connect_oids(&this_stage[parent], &this_stage[b])?;
        }
        prev_stage = this_stage;
    }
    server.process_all()?;
    Ok(())
}

/// One designer action in a generated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Activity {
    /// Check in a new version of `(block, view)`.
    Checkin {
        /// Block name.
        block: String,
        /// View name.
        view: String,
    },
    /// Post a validation event (e.g. a simulation verdict) at the newest
    /// version of `(block, view)`.
    Validate {
        /// Block name.
        block: String,
        /// View name.
        view: String,
        /// Event name.
        event: String,
        /// Verdict argument.
        arg: String,
    },
}

/// A seeded random stream of designer activities over a [`DesignSpec`].
#[derive(Debug)]
pub struct ActivityStream {
    spec: DesignSpec,
    rng: StdRng,
    /// Fraction of activities that are check-ins (rest are validations).
    checkin_ratio: f64,
}

impl ActivityStream {
    /// A stream over `spec` with the given `seed`; `checkin_ratio` of the
    /// activities are check-ins.
    ///
    /// # Panics
    ///
    /// Panics if `checkin_ratio` is outside `0.0..=1.0`.
    pub fn new(spec: DesignSpec, seed: u64, checkin_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&checkin_ratio));
        ActivityStream {
            spec,
            rng: StdRng::seed_from_u64(seed),
            checkin_ratio,
        }
    }

    /// The next activity.
    pub fn next_activity(&mut self) -> Activity {
        let block = DesignSpec::block_name(self.rng.gen_range(0..self.spec.blocks));
        let view = DesignSpec::view_name(self.rng.gen_range(0..self.spec.stages));
        if self.rng.gen_bool(self.checkin_ratio) {
            Activity::Checkin { block, view }
        } else {
            let good = self.rng.gen_bool(0.8);
            Activity::Validate {
                block,
                view,
                event: "sim".to_string(),
                arg: if good { "good" } else { "bad" }.to_string(),
            }
        }
    }

    /// The next `n` activities.
    pub fn take_activities(&mut self, n: usize) -> Vec<Activity> {
        (0..n).map(|_| self.next_activity()).collect()
    }
}

/// Applies one activity to a server (the DAMOCLES side of the baseline
/// comparison).
///
/// # Errors
///
/// Propagates server errors.
pub fn apply_activity<E: ScriptExecutor>(
    server: &mut ProjectServer<E>,
    activity: &Activity,
) -> Result<(), EngineError> {
    match activity {
        Activity::Checkin { block, view } => {
            let version = server
                .db()
                .versions(block, view)
                .last()
                .map_or(1, |v| v + 1);
            let payload = format!("{block}:{view}:v{version}").into_bytes();
            server.checkin(block, view, "designer", payload)?;
            server.process_all()?;
        }
        Activity::Validate {
            block,
            view,
            event,
            arg,
        } => {
            if let Some(id) = server.db().latest_version(block, view) {
                let oid = server.db().oid(id).expect("live").clone();
                let line = format!("postEvent {event} up {oid} \"{arg}\"");
                server.post_line(&line, "validator")?;
                server.process_all()?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::Value;

    #[test]
    fn blueprint_source_parses_for_various_shapes() {
        for (stages, blocks, fanout) in [(1, 1, 1), (3, 4, 2), (6, 10, 3)] {
            let spec = DesignSpec {
                stages,
                blocks,
                fanout,
            };
            let src = spec.blueprint_source(true);
            let bp = blueprint_core::parse(&src).unwrap();
            assert_eq!(bp.views.len(), stages + 1);
            blueprint_core::lang::validate::check(&bp).unwrap();
        }
    }

    #[test]
    fn populate_creates_expected_counts() {
        let spec = DesignSpec::tiny();
        let mut server = ProjectServer::from_source(&spec.blueprint_source(true)).unwrap();
        populate(&mut server, &spec).unwrap();
        assert_eq!(server.db().oid_count(), spec.oid_count());
        // chain links: (stages-1)*blocks; hierarchy: stages*(blocks-1)
        let expected_links = (spec.stages - 1) * spec.blocks + spec.stages * (spec.blocks - 1);
        assert_eq!(server.db().link_count(), expected_links);
    }

    #[test]
    fn populated_design_starts_up_to_date() {
        let spec = DesignSpec::tiny();
        let mut server = ProjectServer::from_source(&spec.blueprint_source(true)).unwrap();
        populate(&mut server, &spec).unwrap();
        let stale = server.query().out_of_date("uptodate");
        assert!(stale.is_empty(), "stale after populate: {stale:?}");
    }

    #[test]
    fn checkin_at_root_invalidates_downstream() {
        let spec = DesignSpec {
            stages: 3,
            blocks: 2,
            fanout: 2,
        };
        let mut server = ProjectServer::from_source(&spec.blueprint_source(true)).unwrap();
        populate(&mut server, &spec).unwrap();
        apply_activity(
            &mut server,
            &Activity::Checkin {
                block: "blk0".into(),
                view: "v0".into(),
            },
        )
        .unwrap();
        // v0/blk0 fresh; derived v1..v2 of blk0 (and hierarchy children)
        // stale.
        let fresh = server.prop(&Oid::new("blk0", "v0", 2), "uptodate").unwrap();
        assert_eq!(fresh, Value::Bool(true));
        let stale = server.query().out_of_date("uptodate");
        assert!(!stale.is_empty());
    }

    #[test]
    fn activity_stream_is_deterministic() {
        let spec = DesignSpec::tiny();
        let a: Vec<Activity> = ActivityStream::new(spec, 7, 0.5).take_activities(20);
        let b: Vec<Activity> = ActivityStream::new(spec, 7, 0.5).take_activities(20);
        assert_eq!(a, b);
        let c: Vec<Activity> = ActivityStream::new(spec, 8, 0.5).take_activities(20);
        assert_ne!(a, c);
    }

    #[test]
    fn checkin_ratio_respected() {
        let spec = DesignSpec::tiny();
        let acts = ActivityStream::new(spec, 1, 1.0).take_activities(10);
        assert!(acts.iter().all(|a| matches!(a, Activity::Checkin { .. })));
        let acts = ActivityStream::new(spec, 1, 0.0).take_activities(10);
        assert!(acts.iter().all(|a| matches!(a, Activity::Validate { .. })));
    }

    #[test]
    fn parent_of_builds_a_tree() {
        let spec = DesignSpec {
            stages: 1,
            blocks: 7,
            fanout: 2,
        };
        assert_eq!(spec.parent_of(0), None);
        assert_eq!(spec.parent_of(1), Some(0));
        assert_eq!(spec.parent_of(2), Some(0));
        assert_eq!(spec.parent_of(3), Some(1));
        assert_eq!(spec.parent_of(6), Some(2));
    }
}

//! A deeper, modern-shaped ASIC sign-off flow blueprint.
//!
//! The paper's EDTC example is deliberately small; real projects the
//! BluePrint targets ("today's large IC designs involve highly partitioned,
//! highly coupled and voluminous design data") run longer chains. This flow
//! exercises the engine on a realistic nine-view pipeline with both derive
//! and depend-on relations, a sign-off stage, and richer continuous
//! assignments.

use blueprint_core::lang::ast::Blueprint;
use blueprint_core::lang::parser;

/// A nine-view ASIC implementation flow:
/// spec → rtl → netlist (synth, depends on stdcell_lib) → floorplan →
/// placed → routed → gds, with timing and power analyses attached to the
/// routed view.
pub const ASIC_SOURCE: &str = r#"
blueprint asic_signoff

view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview

view spec
    property review default pending
    when spec_review do review = $arg done
endview

view rtl
    property lint_result default unknown
    property sim_result default bad
    let state = ($lint_result == clean) and ($sim_result == good) and ($uptodate == true)
    link_from spec move propagates outofdate type derived
    use_link move propagates outofdate
    when lint do lint_result = $arg done
    when rtl_sim do sim_result = $arg done
endview

view stdcell_lib
endview

view netlist
    property synth_qor default unknown
    property equiv default unknown
    let state = ($equiv == pass) and ($uptodate == true)
    link_from rtl move propagates outofdate type derived
    link_from stdcell_lib move propagates outofdate type depend_on
    use_link move propagates outofdate
    when synth do synth_qor = $arg done
    when lec do equiv = $arg done
endview

view floorplan
    link_from netlist move propagates outofdate type derived
    when ckin do exec placer "$oid" done
endview

view placed
    property congestion default unknown
    link_from floorplan move propagates outofdate type derived
    when congestion_rpt do congestion = $arg done
endview

view routed
    property timing default unknown
    property power default unknown
    property drc_result default unknown
    let signoff = ($timing == met) and ($power == ok) and ($drc_result == clean) and ($uptodate == true)
    link_from placed move propagates outofdate type derived
    when sta do timing = $arg done
    when power_rpt do power = $arg done
    when drc do drc_result = $arg done
endview

view gds
    property tapeout_ok default false
    link_from routed move propagates outofdate type derived
    when signoff_ok do tapeout_ok = true done
endview

endblueprint
"#;

/// Parses [`ASIC_SOURCE`].
///
/// # Panics
///
/// Never in practice (tested constant).
pub fn asic_blueprint() -> Blueprint {
    parser::parse(ASIC_SOURCE).expect("ASIC blueprint source is valid")
}

/// The ordered derive chain of the ASIC flow (excluding `stdcell_lib`).
pub const ASIC_CHAIN: [&str; 7] = [
    "spec",
    "rtl",
    "netlist",
    "floorplan",
    "placed",
    "routed",
    "gds",
];

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::engine::server::ProjectServer;
    use blueprint_core::lang::validate;
    use damocles_meta::{Oid, Value};

    #[test]
    fn asic_parses_and_validates() {
        let bp = asic_blueprint();
        assert_eq!(bp.views.len(), 9);
        let issues = validate::check(&bp).expect("no errors");
        assert!(issues.is_empty(), "{issues:?}");
    }

    /// Builds the seven-stage chain for one block and drives it stale.
    #[test]
    fn deep_chain_invalidation() {
        let mut server = ProjectServer::new(asic_blueprint()).unwrap();
        let mut prev: Option<Oid> = None;
        for view in ASIC_CHAIN {
            let oid = server
                .checkin("soc", view, "team", format!("{view}-v1").into_bytes())
                .unwrap();
            if let Some(p) = &prev {
                server.connect_oids(p, &oid).unwrap();
            }
            prev = Some(oid);
        }
        server.process_all().unwrap();
        assert!(server.query().out_of_date("uptodate").is_empty());

        // A spec change invalidates all six downstream views.
        server
            .checkin("soc", "spec", "architect", b"spec-v2".to_vec())
            .unwrap();
        server.process_all().unwrap();
        let stale = server.query().out_of_date("uptodate");
        assert_eq!(stale.len(), 6, "rtl..gds all stale: {stale:?}");
    }

    #[test]
    fn signoff_let_combines_three_analyses() {
        let mut server = ProjectServer::new(asic_blueprint()).unwrap();
        let routed = server
            .checkin("soc", "routed", "pnr", b"routed-v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        for (event, arg) in [("sta", "met"), ("power_rpt", "ok"), ("drc", "clean")] {
            server
                .post_line(
                    &format!("postEvent {event} up {routed} \"{arg}\""),
                    "signoff",
                )
                .unwrap();
        }
        server.process_all().unwrap();
        assert_eq!(server.prop(&routed, "signoff").unwrap(), Value::Bool(true));

        // Any regression flips it back.
        server
            .post_line(
                &format!("postEvent sta up {routed} \"violated\""),
                "signoff",
            )
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&routed, "signoff").unwrap(), Value::Bool(false));
    }

    #[test]
    fn stdcell_lib_release_invalidates_netlist() {
        // "The synthesis library is tracked so that the installation of a
        // new version of the library will automatically invalidate data
        // which depends on it" — same pattern, modern names.
        let mut server = ProjectServer::new(asic_blueprint()).unwrap();
        let lib = server
            .checkin("lib7nm", "stdcell_lib", "vendor", b"lib-v1".to_vec())
            .unwrap();
        let net = server
            .checkin("soc", "netlist", "synth", b"net-v1".to_vec())
            .unwrap();
        server.connect_oids(&lib, &net).unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&net, "uptodate").unwrap(), Value::Bool(true));

        server
            .checkin("lib7nm", "stdcell_lib", "vendor", b"lib-v2".to_vec())
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&net, "uptodate").unwrap(), Value::Bool(false));
    }
}

//! The complete BluePrint of Section 3.4 ("EDTC_example").
//!
//! The source below is the paper's listing with three normalizations, each
//! documented because a reproduction should be honest about its inputs:
//!
//! 1. The paper omits `endview` after the `netlist` view's rules (its own
//!    parser presumably didn't need it either; ours accepts both, but the
//!    embedded copy writes it for clarity).
//! 2. The schematic view's `when ckin do lvs_res = …; post lvs down …` uses
//!    `lvs_res` which only the schematic itself defines — kept verbatim.
//! 3. The paper's prose shows `link_from HDL_model move propagates …` while
//!    the final listing drops the `move`; we keep `move` (the prose form),
//!    because the walkthrough *requires* it: checking in
//!    `<CPU.HDL_model.3>` can only invalidate `<CPU.schematic.1>` if the
//!    derive link followed the HDL model to version 3.

use blueprint_core::lang::ast::Blueprint;
use blueprint_core::lang::parser;

/// The Section 3.4 blueprint source (normalized as documented above).
pub const EDTC_SOURCE: &str = r#"
# The project BluePrint of Section 3.4, "EDTC_example".
blueprint EDTC_example

view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview

view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
endview

view synth_lib
endview

view schematic
    property nl_sim_res default bad
    property lvs_res default not_equiv
    let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
    link_from HDL_model move propagates outofdate type derived
    link_from synth_lib move propagates outofdate type depend_on
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do lvs_res = "$oid changed by $user"; post lvs down "$lvs_res" done
    when ckin do exec netlister "$oid" done
endview

view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
endview

view layout
    property drc_result default bad
    property lvs_result default not_equiv
    let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do lvs_result = "$oid changed by $user"; post lvs up "$lvs_result" done
endview

endblueprint
"#;

/// A "loosened" variant for early design phases: "early in the design cycle,
/// when the data has not yet been validated and changes occur very often, the
/// BluePrint can be 'loosened' thereby limiting change propagation"
/// (Section 3.2). All `outofdate` propagation is removed; only simulation /
/// DRC / LVS results are recorded, and the netlister is no longer invoked
/// automatically.
pub const EDTC_LOOSENED_SOURCE: &str = r#"
blueprint EDTC_example_loosened

view default
    property uptodate default true
endview

view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
endview

view synth_lib
endview

view schematic
    property nl_sim_res default bad
    property lvs_res default not_equiv
    link_from HDL_model move propagates nothing type derived
    link_from synth_lib move propagates nothing type depend_on
    use_link move propagates nothing
    when nl_sim do nl_sim_res = $arg done
endview

view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim type derived
    when nl_sim do sim_result = $arg done
endview

view layout
    property drc_result default bad
    property lvs_result default not_equiv
    link_from schematic move propagates lvs type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
endview

endblueprint
"#;

/// Parses [`EDTC_SOURCE`].
///
/// # Panics
///
/// Never in practice: the source is a compile-time constant covered by
/// tests.
pub fn edtc_blueprint() -> Blueprint {
    parser::parse(EDTC_SOURCE).expect("EDTC blueprint source is valid")
}

/// Parses [`EDTC_LOOSENED_SOURCE`].
///
/// # Panics
///
/// Never in practice (tested constant).
pub fn edtc_loosened_blueprint() -> Blueprint {
    parser::parse(EDTC_LOOSENED_SOURCE).expect("loosened EDTC blueprint source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_core::lang::validate;

    #[test]
    fn edtc_parses_and_validates_clean() {
        let bp = edtc_blueprint();
        assert_eq!(bp.name, "EDTC_example");
        assert_eq!(bp.views.len(), 6);
        let issues = validate::check(&bp).expect("no errors");
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn edtc_tracks_the_five_views_plus_default() {
        let bp = edtc_blueprint();
        for view in [
            "default",
            "HDL_model",
            "synth_lib",
            "schematic",
            "netlist",
            "layout",
        ] {
            assert!(bp.view(view).is_some(), "missing view {view}");
        }
    }

    #[test]
    fn schematic_state_depends_on_three_properties() {
        let bp = edtc_blueprint();
        let schematic = bp.view("schematic").unwrap();
        let state = &schematic.lets[0];
        assert_eq!(state.name, "state");
        assert_eq!(
            state.expr.variables(),
            vec!["lvs_res", "nl_sim_res", "uptodate"]
        );
    }

    #[test]
    fn loosened_variant_propagates_no_outofdate() {
        let bp = edtc_loosened_blueprint();
        let events = bp.known_events();
        assert!(!events.contains(&"outofdate".to_string()));
        // Simulation results still travel.
        assert!(events.contains(&"nl_sim".to_string()));
    }

    #[test]
    fn edtc_known_events_match_the_figure() {
        // Fig. 5 names: hdl_sim, nl_sim, drc, lvs plus ckin/outofdate.
        let events = edtc_blueprint().known_events();
        for e in ["ckin", "outofdate", "hdl_sim", "nl_sim", "drc", "lvs"] {
            assert!(events.contains(&e.to_string()), "missing event {e}");
        }
    }

    #[test]
    fn roundtrips_through_the_printer() {
        let bp = edtc_blueprint();
        let printed = blueprint_core::lang::printer::print(&bp);
        let reparsed = parser::parse(&printed).unwrap();
        assert_eq!(reparsed.normalized(), bp.normalized());
    }
}

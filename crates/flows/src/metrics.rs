//! Small reporting helpers shared by examples and the benchmark harness.

use std::fmt::Write;
use std::time::{Duration, Instant};

/// Renders an ASCII table: a header row plus data rows, columns padded to
/// the widest cell.
///
/// # Example
///
/// ```
/// use damocles_flows::metrics::table;
///
/// let out = table(
///     &["tracker", "work"],
///     &[vec!["damocles".into(), "12".into()],
///       vec!["eager".into(), "340".into()]],
/// );
/// assert!(out.contains("tracker"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            let _ = write!(line, " {cell:w$} |");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    };
    let separator = {
        let mut line = String::from("|");
        for w in &widths {
            line.push_str(&"-".repeat(w + 2));
            line.push('|');
        }
        line
    };
    render_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Times a closure, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration compactly (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.1}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_columns() {
        let out = table(
            &["a", "longer"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn table_handles_empty_rows() {
        let out = table(&["h"], &[]);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(1_500)), "1.50s");
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}

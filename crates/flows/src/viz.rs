//! Design-state visualization: the paper's second stated future-work item.
//!
//! "In addition, we are working on a graphical interface to visualize the
//! design state relative to its flow." — Section 5.
//!
//! Two Graphviz DOT exporters:
//!
//! * [`blueprint_to_dot`] renders the *flow* — the BluePrint representation
//!   of Fig. 5: views as nodes, `link_from`/`use_link` templates as edges
//!   labelled with their PROPAGATE sets and types;
//! * [`db_to_dot`] renders the *design state* — the live meta-database with
//!   one node per OID, coloured by a chosen state property, and one edge per
//!   link.

use std::fmt::Write;

use blueprint_core::lang::ast::{Blueprint, LinkSource};
use damocles_meta::MetaDb;

use damocles_meta::dump::dot_escape as escape;

/// Renders the BluePrint's view/link structure (the Fig. 5 representation)
/// as a DOT digraph.
///
/// # Example
///
/// ```
/// use damocles_flows::{edtc_blueprint, viz};
///
/// let dot = viz::blueprint_to_dot(&edtc_blueprint());
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("schematic"));
/// assert!(dot.contains("outofdate"));
/// ```
pub fn blueprint_to_dot(bp: &Blueprint) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&bp.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for view in &bp.views {
        if view.name == "default" {
            continue;
        }
        let props: Vec<&str> = view.properties.iter().map(|p| p.name.as_str()).collect();
        let label = if props.is_empty() {
            view.name.clone()
        } else {
            format!("{}\\n[{}]", view.name, props.join(", "))
        };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\"];",
            escape(&view.name),
            escape(&label).replace("\\\\n", "\\n")
        );
    }
    for view in &bp.views {
        for link in &view.links {
            let (from, style) = match &link.source {
                LinkSource::View(v) => (v.clone(), "solid"),
                LinkSource::UseLink => (view.name.clone(), "dashed"),
            };
            let mut label = link.propagates.join(", ");
            if let Some(kind) = &link.kind {
                if label.is_empty() {
                    label = kind.clone();
                } else {
                    label = format!("{kind}: {label}");
                }
            }
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
                escape(&from),
                escape(&view.name),
                escape(&label),
                style
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the live design state as a DOT digraph: one node per OID,
/// coloured green/red/grey by the truthiness (or absence) of `state_prop`,
/// one edge per link (use links dashed).
///
/// The renderer lives in [`damocles_meta::dump::to_dot`] so the command
/// protocol's `Dot` request can serve it without depending on this crate;
/// this re-export keeps the historical call site.
pub fn db_to_dot(db: &MetaDb, state_prop: &str) -> String {
    damocles_meta::dump::to_dot(db, state_prop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edtc::edtc_blueprint;
    use blueprint_core::engine::server::ProjectServer;
    use damocles_meta::Value;

    #[test]
    fn blueprint_dot_contains_views_and_events() {
        let dot = blueprint_to_dot(&edtc_blueprint());
        for needle in [
            "digraph",
            "HDL_model",
            "schematic",
            "netlist",
            "layout",
            "synth_lib",
            "outofdate",
            "equivalence",
        ] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
        // The default view is configuration, not a flow node.
        assert!(!dot.contains("\"default\""));
    }

    #[test]
    fn use_links_are_dashed() {
        let dot = blueprint_to_dot(&edtc_blueprint());
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn db_dot_colors_by_state() {
        let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
        let hdl = server
            .checkin("CPU", "HDL_model", "d", b"m".to_vec())
            .unwrap();
        let sch = server
            .checkin("CPU", "schematic", "d", b"s".to_vec())
            .unwrap();
        server.connect_oids(&hdl, &sch).unwrap();
        server.process_all().unwrap();
        server
            .checkin("CPU", "HDL_model", "d", b"m2".to_vec())
            .unwrap();
        server.process_all().unwrap();

        let dot = db_to_dot(server.db(), "uptodate");
        assert!(dot.contains("palegreen"), "fresh nodes green");
        assert!(dot.contains("lightcoral"), "stale nodes red");
        assert!(dot.contains("CPU,schematic,1"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut db = MetaDb::new();
        let id = db
            .create_oid(damocles_meta::Oid::new("blk", "v", 1))
            .unwrap();
        db.set_prop(id, "state", Value::Str("say \"hi\"".into()))
            .unwrap();
        let dot = db_to_dot(&db, "state");
        assert!(dot.contains("\\\"hi\\\""));
    }
}

//! Scripted scenario player: replays designer sessions against a project
//! server, as the Section 3.4 walkthrough does.

use blueprint_core::engine::exec::ScriptExecutor;
use blueprint_core::engine::server::{ProcessReport, ProjectServer};
use blueprint_core::EngineError;

/// One scripted designer action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Check in new design data.
    Checkin {
        /// Block name.
        block: String,
        /// View name.
        view: String,
        /// Acting designer.
        user: String,
        /// Design data payload.
        payload: Vec<u8>,
    },
    /// Post a raw `postEvent` line.
    PostLine {
        /// The wire-format line.
        line: String,
        /// Posting user/tool.
        user: String,
    },
    /// Drain the event queue.
    ProcessAll,
}

impl Step {
    /// Convenience constructor for check-ins.
    pub fn checkin(block: &str, view: &str, user: &str, payload: &[u8]) -> Self {
        Step::Checkin {
            block: block.to_string(),
            view: view.to_string(),
            user: user.to_string(),
            payload: payload.to_vec(),
        }
    }

    /// Convenience constructor for event posts.
    pub fn post(line: &str, user: &str) -> Self {
        Step::PostLine {
            line: line.to_string(),
            user: user.to_string(),
        }
    }
}

/// Replays a list of steps, returning the merged process report.
///
/// # Errors
///
/// Propagates the first server error; earlier steps remain applied
/// (observer semantics).
pub fn play<E: ScriptExecutor>(
    server: &mut ProjectServer<E>,
    steps: &[Step],
) -> Result<ProcessReport, EngineError> {
    let mut total = ProcessReport::default();
    for step in steps {
        match step {
            Step::Checkin {
                block,
                view,
                user,
                payload,
            } => {
                server.checkin(block, view, user, payload.clone())?;
            }
            Step::PostLine { line, user } => {
                server.post_line(line, user)?;
            }
            Step::ProcessAll => {
                let report = server.process_all()?;
                total = merge(total, report);
            }
        }
    }
    Ok(total)
}

fn merge(a: ProcessReport, b: ProcessReport) -> ProcessReport {
    ProcessReport {
        events: a.events + b.events,
        deliveries: a.deliveries + b.deliveries,
        scripts: a.scripts + b.scripts,
        emitted: a.emitted + b.emitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edtc::edtc_blueprint;
    use blueprint_core::engine::server::ProjectServer;
    use damocles_meta::Value;

    #[test]
    fn plays_a_checkin_and_simulation() {
        let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
        let steps = vec![
            Step::checkin("CPU", "HDL_model", "yves", b"module cpu;"),
            Step::ProcessAll,
            Step::post("postEvent hdl_sim up CPU,HDL_model,1 \"good\"", "simwrap"),
            Step::ProcessAll,
        ];
        let report = play(&mut server, &steps).unwrap();
        assert_eq!(report.events, 2);
        assert_eq!(
            server
                .prop(
                    &damocles_meta::Oid::new("CPU", "HDL_model", 1),
                    "sim_result"
                )
                .unwrap(),
            Value::Str("good".into())
        );
    }

    #[test]
    fn error_stops_playback() {
        let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
        let steps = vec![
            Step::post("postEvent hdl_sim up ghost,HDL_model,1 \"good\"", "x"),
            Step::ProcessAll,
        ];
        assert!(play(&mut server, &steps).is_err());
    }
}

//! `damocles_server` — the networked project-server front door, in one
//! of two roles.
//!
//! **Leader** (default): the paper's wrapper programs emit `postEvent`
//! lines "over the network" (§3.1); this binary gives them an actual
//! network to talk to. It loads a blueprint, spawns the single-engine
//! command loop, and serves the typed command protocol over a minimal
//! line-framed TCP socket: each connection is one session, each line one
//! request, answered by exactly one response line in the
//! `Request`/`Response` text codec. Bare `postEvent …` wire lines are
//! accepted as sugar for `post`.
//!
//! ```console
//! $ damocles_server edtc.bp --listen 127.0.0.1:7425 --journal ./dura --wave-workers 4
//! listening on 127.0.0.1:7425
//! $ printf 'checkin CPU HDL_model yves 6d6f64756c65\nprocess\n' | nc 127.0.0.1 7425
//! created CPU,HDL_model,1
//! processed 1 2 0 0
//! ```
//!
//! Requests from all connections are serialized onto the engine in
//! arrival order and **group-committed** with an adaptive window: each
//! batch takes exactly what is queued when it forms, so an idle client
//! pays one fsync of latency while a burst amortizes one append+fsync
//! across the whole backlog — a reply in hand always means the effect is
//! durable. There is no batch-size knob to tune. Each `process` drain is
//! sharded across wave worker threads — hardware parallelism by default
//! (sharded waves are byte-identical to sequential execution);
//! `--wave-workers N` overrides the count and `--wave-workers 1` opts
//! back into sequential draining (see `DESIGN.md` §9).
//!
//! **Follower** (`--follow <leader-addr>`): a read-only replica. It
//! connects to a journaling leader, bootstraps from the leader's
//! checkpoint snapshot, applies the committed journal-record stream live
//! (records only become visible after the leader's group-commit fsync),
//! and serves `query`/`show`/`summary`/`dump`/`stat`/… from the replica
//! while rejecting mutations with a structured `read-only` error naming
//! the leader. A lost leader connection degrades to stale reads and
//! reconnects with the follower's cursor.
//!
//! ```console
//! $ damocles_server edtc.bp --follow 10.0.0.7:7425 --listen 127.0.0.1:7426
//! following 10.0.0.7:7425; read-only front door on 127.0.0.1:7426
//! ```
//!
//! **Fleet** (`--fleet <root>`): a multi-project front door. The root
//! directory holds one journal dir per project; sessions attach with
//! `project <name>` (add `new` to register) and are routed onto
//! `--engine-workers N` engine threads, with at most `--max-active M`
//! projects in memory — idle ones are LRU-evicted through their
//! checkpoints and lazily recovered on the next request. All tenants
//! share one compiled blueprint. See `DESIGN.md` §12.
//!
//! ```console
//! $ damocles_server edtc.bp --fleet ./projects --engine-workers 4 --max-active 8
//! fleet root ./projects: 0 projects registered; 4 engine workers, 8 max active
//! listening on 127.0.0.1:7425 (fleet mode)
//! ```

use std::net::TcpListener;

use blueprint_core::engine::api::{Request, Response, DEFAULT_CHECKPOINT_EVERY};
use blueprint_core::engine::exec::NullExecutor;
use blueprint_core::engine::fleet::{spawn_fleet, FleetConfig, ProjectRegistry};
use blueprint_core::engine::follower::{spawn_follower_loop, FollowerMsg};
use blueprint_core::engine::service::{
    serve_listener, serve_with, spawn_project_loop, ProjectService,
};
use damocles_tools::remote::{RemoteWrapper, TailHandshake};

const USAGE: &str = "usage: damocles_server <blueprint.bp> [--listen <addr>] \
                     [--journal <dir>] [--every <ops>] [--wave-workers <n>] \
                     [--retry <retries,base_ms,mult,timeout_ms>] \
                     [--follow <leader-addr>] [--replay-until <epoch,seq>] \
                     [--fleet <root>] [--engine-workers <n>] [--max-active <m>]";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut blueprint_path: Option<String> = None;
    let mut listen = "127.0.0.1:7425".to_string();
    let mut journal_dir: Option<String> = None;
    let mut every: u64 = DEFAULT_CHECKPOINT_EVERY;
    let mut wave_workers: Option<usize> = None;
    let mut retry: Option<[u64; 4]> = None;
    let mut follow: Option<String> = None;
    let mut replay_until: Option<(u64, u64)> = None;
    let mut fleet_root: Option<String> = None;
    let mut engine_workers: usize = 4;
    let mut max_active: usize = 64;

    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = value_of(&mut args, "--listen"),
            "--journal" => journal_dir = Some(value_of(&mut args, "--journal")),
            "--every" => {
                every = value_of(&mut args, "--every").parse().unwrap_or_else(|_| {
                    eprintln!("error: --every needs a number\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--wave-workers" => {
                wave_workers = Some(
                    value_of(&mut args, "--wave-workers")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("error: --wave-workers needs a number\n{USAGE}");
                            std::process::exit(2);
                        }),
                )
            }
            "--retry" => {
                let spec = value_of(&mut args, "--retry");
                let parts: Vec<u64> = spec
                    .split(',')
                    .map(|p| p.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .unwrap_or_default();
                let [a, b, c, d] = parts[..] else {
                    eprintln!("error: --retry wants `retries,base_ms,mult,timeout_ms`\n{USAGE}");
                    std::process::exit(2);
                };
                retry = Some([a, b, c, d]);
            }
            "--follow" => follow = Some(value_of(&mut args, "--follow")),
            "--fleet" => fleet_root = Some(value_of(&mut args, "--fleet")),
            "--engine-workers" => {
                engine_workers = value_of(&mut args, "--engine-workers")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --engine-workers needs a number\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            "--max-active" => {
                max_active = value_of(&mut args, "--max-active")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --max-active needs a number\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            "--replay-until" => {
                let spec = value_of(&mut args, "--replay-until");
                let parsed = spec
                    .split_once(',')
                    .and_then(|(e, s)| Some((e.trim().parse().ok()?, s.trim().parse().ok()?)));
                replay_until = match parsed {
                    Some(cursor) => Some(cursor),
                    None => {
                        eprintln!("error: --replay-until wants `epoch,seq`\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if blueprint_path.is_none() => blueprint_path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(blueprint_path) = blueprint_path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if follow.is_some() && journal_dir.is_some() {
        eprintln!("error: --follow and --journal are exclusive (a follower replicates the leader's journal)\n{USAGE}");
        std::process::exit(2);
    }
    let source = match std::fs::read_to_string(&blueprint_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {blueprint_path}: {e}");
            std::process::exit(2);
        }
    };

    if let Some(root) = fleet_root {
        if follow.is_some() || journal_dir.is_some() || replay_until.is_some() {
            eprintln!("error: --fleet is exclusive with --follow/--journal/--replay-until (each project journals under the fleet root)\n{USAGE}");
            std::process::exit(2);
        }
        run_fleet(&root, &source, &listen, engine_workers, max_active, every);
        return;
    }

    // Drive setup through the same protocol the network speaks.
    let mut service: ProjectService = ProjectService::new();
    match service.call(Request::Init { source }) {
        Response::Blueprint { name } => eprintln!("blueprint `{name}` initialized"),
        Response::Error(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        other => {
            eprintln!("error: unexpected init response {other:?}");
            std::process::exit(2);
        }
    }

    // Time-travel mode: reconstruct the image at the cursor from the
    // journal directory *at rest* and serve it WITHOUT journaling — the
    // evidence directory is never written, so a bug report (journal dir +
    // cursor) can be inspected repeatedly and non-destructively.
    if let Some((epoch, seq)) = replay_until {
        let Some(dir) = journal_dir.take() else {
            eprintln!("error: --replay-until needs --journal <dir> as the journal source\n{USAGE}");
            std::process::exit(2);
        };
        if follow.is_some() {
            eprintln!("error: --replay-until and --follow are exclusive\n{USAGE}");
            std::process::exit(2);
        }
        match blueprint_core::engine::server::replay_dir(&dir, epoch, seq) {
            Ok((oids, image)) => {
                let adopted = service
                    .server_mut()
                    .expect("initialized above")
                    .adopt_replica_image(&image);
                if let Err(e) = adopted {
                    eprintln!("error: cannot adopt replayed image: {e}");
                    std::process::exit(2);
                }
                eprintln!(
                    "replayed {dir} at cursor ({epoch}, {seq}): {oids} OIDs; \
                     serving the historical image, journaling off"
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            std::process::exit(2);
        }
    };
    let bound = listener.local_addr().map_or(listen, |a| a.to_string());

    if let Some(leader) = follow {
        run_follower(service, listener, &bound, leader);
        return;
    }

    if let Some(dir) = journal_dir {
        match service.call(Request::EnableJournal {
            dir: dir.clone(),
            every,
        }) {
            Response::Epoch { epoch } => {
                eprintln!("journaling to {dir} (epoch {epoch}, checkpoint every {every} ops)");
            }
            Response::Error(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            other => {
                eprintln!("error: unexpected journal response {other:?}");
                std::process::exit(2);
            }
        }
    }

    if let Some([max_retries, base_delay_ms, multiplier, timeout_ms]) = retry {
        match service.call(Request::SetRetryPolicy {
            script: None,
            max_retries,
            base_delay_ms,
            multiplier,
            timeout_ms,
        }) {
            Response::Ok => eprintln!(
                "default tool retry policy: {max_retries} retries, \
                 {base_delay_ms}ms base delay x{multiplier}, {timeout_ms}ms timeout"
            ),
            other => {
                eprintln!("error: unexpected retry response {other:?}");
                std::process::exit(2);
            }
        }
    }

    // Without the flag the service defaults to hardware parallelism
    // (or `DAMOCLES_WAVE_WORKERS`); an explicit value always wins, and
    // `--wave-workers 1` is the sequential opt-out.
    if let Some(workers) = wave_workers {
        match service.call(Request::SetWaveWorkers {
            workers: workers.max(1) as u64,
        }) {
            Response::Ok => eprintln!("wave sharding across {workers} workers"),
            other => {
                eprintln!("error: unexpected waveworkers response {other:?}");
                std::process::exit(2);
            }
        }
    }
    eprintln!("listening on {bound} (adaptive group commit)");
    let (handle, _join) = spawn_project_loop(service);
    if let Err(e) = serve_listener(listener, &handle) {
        eprintln!("error: listener failed: {e}");
        std::process::exit(1);
    }
}

/// Fleet role: open the project registry, spawn the router + engine
/// worker pool, and serve the same line-framed protocol — sessions
/// attach with `project <name>` before routing commands.
fn run_fleet(
    root: &str,
    source: &str,
    listen: &str,
    engine_workers: usize,
    max_active: usize,
    every: u64,
) {
    let config = FleetConfig {
        engine_workers: engine_workers.max(1),
        max_active: max_active.max(1),
        checkpoint_every: every,
        ..FleetConfig::default()
    };
    let registry = match ProjectRegistry::open(root, source, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "fleet root {root}: {} projects registered; {} engine workers, {} max active",
        registry.projects().count(),
        engine_workers.max(1),
        max_active.max(1)
    );
    let listener = match TcpListener::bind(listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            std::process::exit(2);
        }
    };
    let bound = listener
        .local_addr()
        .map_or_else(|_| listen.to_string(), |a| a.to_string());
    let (fleet, _join) = spawn_fleet::<NullExecutor>(registry);
    eprintln!("listening on {bound} (fleet mode)");
    if let Err(e) = serve_with(listener, || fleet.session(), None) {
        eprintln!("error: listener failed: {e}");
        std::process::exit(1);
    }
}

/// Follower role: spawn the read-only loop, keep a tail connection to
/// the leader alive (reconnecting from the applied cursor), and serve
/// the front door — reads from the replica, `tailfrom` fan-out from the
/// node's own hub (replica trees), and `promote` to take leadership
/// (after which the same loop serves the full mutation surface).
fn run_follower(service: ProjectService, listener: TcpListener, bound: &str, leader: String) {
    // The node's own publication hub: the loop republishes applied
    // frames here, so downstream replicas (and the post-promotion tail)
    // stream from this node exactly as it streams from the leader.
    let hub = service.tail_hub();
    let (handle, _join) = spawn_follower_loop(service, leader.clone());
    let feed = handle.feed();
    let status = handle.status();
    eprintln!("following {leader}; read-only front door on {bound}");

    std::thread::spawn(move || loop {
        if status.promoted() {
            // This node leads now: the old stream is dead to us (any
            // frame it still carried would be refused as stale anyway).
            return;
        }
        // The unservable sentinel cursor (after a divergence) forces the
        // leader to answer with a full snapshot reset.
        let (epoch, seq) = status.handshake_cursor();
        let gone = |reason: String| {
            let _ = feed.send(FollowerMsg::LeaderGone { reason });
        };
        match RemoteWrapper::connect(&leader, "follower") {
            Ok(wrapper) => match wrapper.tail_from(epoch, seq) {
                Ok(TailHandshake::Accepted {
                    position,
                    mut stream,
                }) => {
                    eprintln!(
                        "tailing {leader} from ({epoch}, {seq}); leader at `{}`",
                        position.encode()
                    );
                    loop {
                        match stream.next_frame() {
                            Ok(frame) => {
                                if feed.send(FollowerMsg::Frame(frame)).is_err() {
                                    return; // follower loop gone: shut down
                                }
                                if status.promoted() {
                                    return;
                                }
                                if status.needs_reset() {
                                    // The replica diverged: incremental
                                    // frames from this connection cannot
                                    // repair it. Reconnect for a reset.
                                    gone("replica diverged; re-bootstrapping".to_string());
                                    break;
                                }
                            }
                            Err(e) => {
                                gone(e.to_string());
                                break;
                            }
                        }
                    }
                }
                Ok(TailHandshake::Refused(resp)) => {
                    gone(format!("leader refused tail: {}", resp.encode()));
                }
                Err(e) => gone(format!("tail handshake failed: {e}")),
            },
            Err(e) => gone(format!("cannot connect: {e}")),
        }
        std::thread::sleep(std::time::Duration::from_secs(1));
    });

    if let Err(e) = serve_with(listener, || handle.session(), Some(hub)) {
        eprintln!("error: listener failed: {e}");
        std::process::exit(1);
    }
}

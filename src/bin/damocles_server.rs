//! `damocles_server` — the networked project-server front door.
//!
//! The paper's wrapper programs emit `postEvent` lines "over the network"
//! (§3.1); this binary gives them an actual network to talk to. It loads
//! a blueprint, spawns the single-engine command loop, and serves the
//! typed command protocol over a minimal line-framed TCP socket: each
//! connection is one session, each line one request, answered by exactly
//! one response line in the `Request`/`Response` text codec. Bare
//! `postEvent …` wire lines are accepted as sugar for `post`.
//!
//! ```console
//! $ damocles_server edtc.bp --listen 127.0.0.1:7425 --journal ./dura --batch 32
//! listening on 127.0.0.1:7425
//! $ printf 'checkin CPU HDL_model yves 6d6f64756c65\nprocess\n' | nc 127.0.0.1 7425
//! created CPU,HDL_model,1
//! processed 1 2 0 0
//! ```
//!
//! Requests from all connections are serialized onto the engine in
//! arrival order and **group-committed**: up to `--batch` queued requests
//! execute back-to-back, their journal ops land with one append+fsync,
//! and only then are the replies written — so a reply in hand means the
//! effect is durable, at a fraction of the per-request fsync cost.

use std::net::TcpListener;

use blueprint_core::engine::api::{Request, Response, DEFAULT_CHECKPOINT_EVERY};
use blueprint_core::engine::service::{serve_listener, spawn_project_loop, ProjectService};

const USAGE: &str = "usage: damocles_server <blueprint.bp> [--listen <addr>] \
                     [--journal <dir>] [--every <ops>] [--batch <n>]";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut blueprint_path: Option<String> = None;
    let mut listen = "127.0.0.1:7425".to_string();
    let mut journal_dir: Option<String> = None;
    let mut every: u64 = DEFAULT_CHECKPOINT_EVERY;
    let mut batch: usize = 32;

    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = value_of(&mut args, "--listen"),
            "--journal" => journal_dir = Some(value_of(&mut args, "--journal")),
            "--every" => {
                every = value_of(&mut args, "--every").parse().unwrap_or_else(|_| {
                    eprintln!("error: --every needs a number\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--batch" => {
                batch = value_of(&mut args, "--batch").parse().unwrap_or_else(|_| {
                    eprintln!("error: --batch needs a number\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if blueprint_path.is_none() => blueprint_path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(blueprint_path) = blueprint_path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(&blueprint_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {blueprint_path}: {e}");
            std::process::exit(2);
        }
    };

    // Drive setup through the same protocol the network speaks.
    let mut service: ProjectService = ProjectService::new();
    match service.call(Request::Init { source }) {
        Response::Blueprint { name } => eprintln!("blueprint `{name}` initialized"),
        Response::Error(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        other => {
            eprintln!("error: unexpected init response {other:?}");
            std::process::exit(2);
        }
    }
    if let Some(dir) = journal_dir {
        match service.call(Request::EnableJournal {
            dir: dir.clone(),
            every,
        }) {
            Response::Epoch { epoch } => {
                eprintln!("journaling to {dir} (epoch {epoch}, checkpoint every {every} ops)");
            }
            Response::Error(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            other => {
                eprintln!("error: unexpected journal response {other:?}");
                std::process::exit(2);
            }
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "listening on {} (group-commit batch {batch})",
        listener.local_addr().map_or(listen, |a| a.to_string())
    );
    let (handle, _join) = spawn_project_loop(service, batch);
    if let Err(e) = serve_listener(listener, &handle) {
        eprintln!("error: listener failed: {e}");
        std::process::exit(1);
    }
}

//! The DAMOCLES command-line shell.
//!
//! ```console
//! $ damocles my_project.bp          # load a blueprint, start the REPL
//! $ damocles my_project.bp script   # run a command script, then exit
//! $ echo "help" | damocles          # commands on stdin work too
//! ```
//!
//! Durability: `journal <dir>` turns on the append-only op journal with
//! incremental checkpoints, `checkpoint` folds the journal into a fresh
//! snapshot on demand, and `recover <dir>` restores a project after a
//! crash from `snapshot + journal tail` (see `damocles_meta::journal`).
//!
//! Every line routes through the typed command protocol
//! (`blueprint_core::engine::api`): the shell parses it into a `Request`
//! and renders the structured `Response`. The `damocles_server` binary
//! serves the very same protocol over TCP for networked wrappers.

use std::io::{BufRead, Write};

use damocles::shell::{Shell, ShellOutput};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell::new();

    let mut arg_iter = args.iter();
    if let Some(blueprint_path) = arg_iter.next() {
        let out = shell.execute(&format!("init {blueprint_path}"));
        report(&out);
        if out.is_error() {
            std::process::exit(2);
        }
    }
    if let Some(script_path) = arg_iter.next() {
        let script = match std::fs::read_to_string(script_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read script {script_path}: {e}");
                std::process::exit(2);
            }
        };
        let outputs = shell.run_script(&script);
        let mut failed = false;
        for out in &outputs {
            report(out);
            failed |= out.is_error();
        }
        std::process::exit(if failed { 1 } else { 0 });
    }

    // Interactive / stdin mode.
    let stdin = std::io::stdin();
    let interactive = atty_like();
    loop {
        if interactive {
            print!("damocles> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed == "quit" || trimmed == "exit" {
                    break;
                }
                report(&shell.execute(trimmed));
            }
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
    }
}

fn report(out: &ShellOutput) {
    match out {
        ShellOutput::Silent => {}
        ShellOutput::Text(t) => println!("{t}"),
        ShellOutput::Error(t) => eprintln!("{t}"),
    }
}

/// Crude interactivity probe without extra dependencies: honour an explicit
/// environment override, default to non-interactive prompts only when piped
/// input is likely (TERM unset).
fn atty_like() -> bool {
    std::env::var_os("DAMOCLES_PROMPT").is_some()
}

//! `damocles_inspect` — the offline flow inspector: renders what a slice
//! of history *did* from nothing but a copied durability directory (and,
//! optionally, a saved execution trace).
//!
//! Give it a journal directory and a cursor range `--from A --to B`; it
//! reconstructs the project image at both cursors via deterministic
//! replay (nothing in the directory is written) and prints either a
//! plain-text timeline — the journal ops in the range plus a line-level
//! before/after diff — or, with `--dot`, a Graphviz digraph where
//! changed objects are outlined, changed properties shown `old -> new`,
//! and links fired by the trace annotated with their step numbers.
//!
//! ```console
//! $ damocles_inspect ./dura --from 2 --to 6
//! inspecting ./dura at epoch 1, cursors 2 -> 6 (9 ops on disk)
//! ...
//! $ damocles_inspect ./dura --from 2 --to 6 --trace trace.txt --dot > slice.dot
//! ```
//!
//! The trace file is one [`TraceRecord`] wire line per row, exactly as
//! drained by the shell's `trace get` — redirect that output to a file
//! and hand it straight to `--trace`.
//!
//! A fleet tenant's durability directory is just `<fleet-root>/<name>` —
//! the same `snapshot.ddb` + `journal.djl` layout as a single-project
//! server — so point the inspector at the project subdirectory and it
//! works unchanged:
//!
//! ```console
//! $ damocles_inspect ./projects/asic9 --from 0 --to 4
//! ```

use blueprint_core::engine::server::{journal_dir_cursor, replay_dir};
use blueprint_core::engine::trace::TraceRecord;
use damocles_meta::dump::{diff, to_dot_diff, FiredLink};
use damocles_meta::persist;

const USAGE: &str = "usage: damocles_inspect <journal-dir> [--from <seq>] [--to <seq>] \
                     [--trace <file>] [--state-prop <prop>] [--dot]";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<String> = None;
    let mut from: u64 = 0;
    let mut to: Option<u64> = None;
    let mut trace_file: Option<String> = None;
    let mut state_prop = "uptodate".to_string();
    let mut dot = false;

    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    let number = |raw: String, flag: &str| -> u64 {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} needs a number\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--from" => from = number(value_of(&mut args, "--from"), "--from"),
            "--to" => to = Some(number(value_of(&mut args, "--to"), "--to")),
            "--trace" => trace_file = Some(value_of(&mut args, "--trace")),
            "--state-prop" => state_prop = value_of(&mut args, "--state-prop"),
            "--dot" => dot = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };

    // Discover the addressable cursor range, then replay both endpoints.
    let (epoch, ops) = match journal_dir_cursor(&dir) {
        Ok(v) => v,
        Err(e) => fail(&e),
    };
    let end = ops.len() as u64;
    let to = to.unwrap_or(end);
    if from > to {
        fail(&format!("--from {from} is past --to {to}"));
    }
    let before_image = replay_dir(&dir, epoch, from).unwrap_or_else(|e| fail(&e)).1;
    let after_image = replay_dir(&dir, epoch, to).unwrap_or_else(|e| fail(&e)).1;
    let (before, _) = persist::load_project(&before_image).unwrap_or_else(|e| fail(&e));
    let (after, _) = persist::load_project(&after_image).unwrap_or_else(|e| fail(&e));

    // Optional execution trace: decode every line, keep `fire` records as
    // edge annotations for the DOT view, and all records for the timeline.
    let mut records: Vec<TraceRecord> = Vec::new();
    if let Some(path) = trace_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => fail(&format!("cannot read {path}: {e}")),
        };
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match TraceRecord::decode(line) {
                Ok(r) => records.push(r),
                Err(e) => fail(&format!("{path}:{}: bad trace record: {e}", i + 1)),
            }
        }
    }
    let fired: Vec<FiredLink> = records
        .iter()
        .enumerate()
        .filter_map(|(step, r)| match r {
            TraceRecord::Fire { from, to, event } => Some(FiredLink {
                from: from.to_string(),
                to: to.to_string(),
                event: event.clone(),
                step: step as u64,
            }),
            _ => None,
        })
        .collect();

    if dot {
        print!("{}", to_dot_diff(&before, &after, &state_prop, &fired));
        return;
    }

    // Plain-text timeline.
    println!("inspecting {dir} at epoch {epoch}, cursors {from} -> {to} ({end} ops on disk)");
    println!(
        "before: {} oids | after: {} oids",
        before.oid_count(),
        after.oid_count()
    );
    if from < to {
        println!("-- journal ops {from}..{to} --");
        for (i, op) in ops.iter().enumerate().take(to as usize).skip(from as usize) {
            println!("  op {i}: {op}");
        }
    }
    if !records.is_empty() {
        println!("-- trace ({} steps) --", records.len());
        for (step, r) in records.iter().enumerate() {
            println!("  step {step}: {}", r.encode());
        }
    }
    let (gone, came) = diff(&before, &after);
    println!("-- diff ({} removed, {} added) --", gone.len(), came.len());
    for line in &gone {
        println!("  - {}", line.trim());
    }
    for line in &came {
        println!("  + {}", line.trim());
    }
}

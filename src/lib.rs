//! # damocles — reproduction of the DAMOCLES project BluePrint
//!
//! A from-scratch Rust reproduction of *Controlling Change Propagation and
//! Project Policies in IC Design* (Yves Mathys, Marc Morgan, Salma Soudagar —
//! Motorola SSDT, DATE 1995): an event-driven design-data-flow management
//! system for IC design.
//!
//! This façade crate re-exports the four implementation crates:
//!
//! | crate | paper role |
//! |---|---|
//! | [`meta`] (`damocles-meta`) | §2 — the DAMOCLES meta-database: OIDs, Links, Configurations, workspaces |
//! | [`core`] (`blueprint-core`) | §3 — the project BluePrint: rule language + run-time engine + project server |
//! | [`tools`] (`damocles-tools`) | §3.1/3.3 — wrapper programs and simulated EDA tools |
//! | [`flows`] (`damocles-flows`) | §3.4/§4 — the EDTC flow, workload generators, baseline trackers |
//!
//! # Quickstart
//!
//! ```
//! use damocles::prelude::*;
//!
//! # fn main() -> Result<(), damocles::core::EngineError> {
//! // 1. The project administrator writes an ASCII rule file (§3.2).
//! let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE)?;
//!
//! // 2. Designers check data in; wrapper programs post events (§3.1).
//! let hdl = server.checkin("CPU", "HDL_model", "yves", b"module cpu;".to_vec())?;
//! server.process_all()?;
//! server.post_line(&format!("postEvent hdl_sim up {hdl} \"good\""), "sim-wrapper")?;
//! server.process_all()?;
//!
//! // 3. Designers query the state of the project (§3.1).
//! assert_eq!(server.prop(&hdl, "sim_result").unwrap().as_atom(), "good");
//! # Ok(())
//! # }
//! ```
//!
//! The runnable examples in `examples/` walk through the paper end to end:
//! `quickstart`, `edtc_walkthrough` (the §3.4 CPU/REG scenario),
//! `automated_flow` (§3.3 tool scheduling), `project_policies` (loosened vs
//! strict blueprints, frozen views), `baseline_report` (§4 comparison),
//! `design_tasks` and `flow_viz` (the §5 future-work items) and
//! `asic_signoff` (a deep modern flow). The `damocles` binary wraps the
//! same API in a line-oriented [`shell`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shell;

pub use blueprint_core as core;
pub use damocles_flows as flows;
pub use damocles_meta as meta;
pub use damocles_tools as tools;

/// The types most programs need.
pub mod prelude {
    pub use blueprint_core::engine::exec::{RecordingExecutor, ScriptExecutor};
    pub use blueprint_core::engine::invoke::{InvokeStats, RetryPolicy};
    pub use blueprint_core::engine::policy::Policy;
    pub use blueprint_core::engine::server::{ProcessReport, ProjectServer};
    pub use blueprint_core::lang::parser::parse;
    pub use blueprint_core::EngineError;
    pub use damocles_meta::{
        Configuration, Direction, EventMessage, MetaDb, Oid, ProjectQuery, Value, Workspace,
    };
    pub use damocles_tools::{FaultPlan, ToolExecutor};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Oid::new("a", "v", 1);
        let _ = FaultPlan::never();
        let _ = Policy::default();
    }
}

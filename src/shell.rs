//! The DAMOCLES command shell: the designer/administrator front-end the
//! paper's wrapper scripts talk to.
//!
//! One command per line; `#` starts a comment. Commands:
//!
//! | command | effect |
//! |---|---|
//! | `init <file>` | load a BluePrint (§3.2) |
//! | `checkin <block> <view> <user> [payload…]` | promote design data |
//! | `checkout <block> <view> <user>` | reserve a chain |
//! | `connect <block,view,ver> <block,view,ver>` | relate two OIDs |
//! | `postEvent <event> <up\|down> <oid> ["args"…]` | the §3.1 wire line |
//! | `process` | drain the event queue |
//! | `show <block,view,ver>` | properties of one OID |
//! | `query <terms…>` | run a `qlang` query (e.g. `stale.uptodate latest`) |
//! | `workleft <block,view,ver> <prop>` | §3.1 "what still needs work" |
//! | `summary <prop>` | per-view state summary |
//! | `snapshot <name> <block,view,ver>` | store a closure Configuration |
//! | `snapshots` | list stored configurations |
//! | `journal <dir> [every]` | enable op-journal durability under `dir` |
//! | `checkpoint` | fold the journal into a fresh snapshot |
//! | `recover <dir> [every]` | restore from snapshot + journal tail |
//! | `promote <dir> <term> [every]` | take leadership under a new term (HA failover) |
//! | `fence <term>` | depose this node: refuse mutations below `term` |
//! | `replay <epoch> <seq>` | reconstruct the image at a journal cursor |
//! | `trace on\|off\|get` | per-wave execution tracing |
//! | `freeze <view>` / `thaw <view>` | project policy: frozen views |
//! | `retry <script\|-> <n> <ms> <mult> <ms>` | retry policy for detached tools |
//! | `pump` | absorb finished tool invocations |
//! | `stat` | server statistics |
//! | `dot` | DOT dump of the live design state |
//! | `audit` | engine counters |
//! | `help` | this table |
//!
//! The shell is a **thin adapter over the typed command protocol**
//! ([`blueprint_core::engine::api`]): every line parses into a
//! [`Request`], executes through a [`ProjectService`], and the structured
//! [`Response`] is rendered back to text. The same requests travel the
//! TCP front door (`damocles_server`) byte-identically, so anything the
//! shell can do a networked wrapper can do.

use std::fmt::Write as _;

use blueprint_core::engine::api::{
    ApiError, Cursor, NodeRole, Request, Response, TraceMode, DEFAULT_CHECKPOINT_EVERY,
};
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::engine::service::ProjectService;
use damocles_flows::metrics;
use damocles_meta::{EventMessage, Oid};

/// A stateful command shell around a project service.
pub struct Shell {
    service: ProjectService,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one shell line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellOutput {
    /// Nothing to say (comment, blank line).
    Silent,
    /// Normal output text.
    Text(String),
    /// A user-level error (bad command, engine error) — the shell keeps
    /// running.
    Error(String),
}

impl ShellOutput {
    /// The rendered text, empty when silent.
    pub fn text(&self) -> &str {
        match self {
            ShellOutput::Silent => "",
            ShellOutput::Text(t) | ShellOutput::Error(t) => t,
        }
    }

    /// Whether this is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, ShellOutput::Error(_))
    }
}

/// Raw-word helpers over the protocol's positioned [`Cursor`]: the shell
/// grammar shares the codec's tokenizer and diagnostics but takes words
/// as raw user text — there is no escaping on a typed command line.
fn word(c: &mut Cursor<'_>, what: &str) -> Result<String, ApiError> {
    Ok(c.next_word(what)?.1.to_string())
}

fn oid_word(c: &mut Cursor<'_>, what: &str) -> Result<Oid, ApiError> {
    c.parse_with(what, |w| w.parse::<Oid>().map_err(|e| e.short_reason()))
}

fn u64_or(c: &mut Cursor<'_>, what: &str, default: u64) -> Result<u64, ApiError> {
    if c.at_end() {
        return Ok(default);
    }
    c.parse_with(what, |w| {
        w.parse::<u64>().map_err(|_| "not a number".to_string())
    })
}

impl Shell {
    /// A shell with no BluePrint loaded yet.
    pub fn new() -> Self {
        Shell {
            service: ProjectService::new(),
        }
    }

    /// A shell pre-initialized with a server.
    pub fn with_server(server: ProjectServer) -> Self {
        Shell {
            service: ProjectService::with_server(server),
        }
    }

    /// The server, if initialized.
    pub fn server(&self) -> Option<&ProjectServer> {
        self.service.server()
    }

    /// The protocol service behind the shell.
    pub fn service(&self) -> &ProjectService {
        &self.service
    }

    /// Executes one command line.
    pub fn execute(&mut self, line: &str) -> ShellOutput {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return ShellOutput::Silent;
        }
        if line == "help" {
            return ShellOutput::Text(HELP.trim().to_string());
        }
        // Parse line → Request (client side), execute → Response (the
        // protocol boundary), render Response → text (client side again).
        match parse_command(line) {
            Ok(request) => {
                let shown = presented(&request);
                let response = self.service.call(request);
                render(&shown, response)
            }
            Err(e) => ShellOutput::Error(format!("error: {e}")),
        }
    }

    /// Executes a whole script, collecting non-silent outputs.
    pub fn run_script(&mut self, script: &str) -> Vec<ShellOutput> {
        script
            .lines()
            .map(|l| self.execute(l))
            .filter(|o| !matches!(o, ShellOutput::Silent))
            .collect()
    }
}

/// Parses one shell line into a protocol [`Request`].
///
/// The shell grammar is the human-friendly form (unquoted payloads,
/// client-side file reads for `init`); the canonical codec form is
/// [`Request::encode`]. Both construct the same values.
///
/// # Errors
///
/// Positioned [`ApiError::Parse`] / [`ApiError::UnknownCommand`].
pub fn parse_command(line: &str) -> Result<Request, ApiError> {
    let mut words = Cursor::new(line);
    let (at, command) = words.next_word("a command")?;
    match command {
        "init" => {
            let path = word(&mut words, "a blueprint file path")?;
            let source = std::fs::read_to_string(&path).map_err(|e| ApiError::Io {
                reason: format!("cannot read {path}: {e}"),
            })?;
            Ok(Request::Init { source })
        }
        "postEvent" => {
            // The whole line IS the §3.1 wire format.
            let message = EventMessage::parse_wire(line)?;
            Ok(Request::Post {
                message,
                user: "shell".to_string(),
            })
        }
        "checkin" => {
            let block = word(&mut words, "a block name")?;
            let view = word(&mut words, "a view type")?;
            let user = word(&mut words, "a user name")?;
            let payload = words.rest().to_string();
            Ok(Request::Checkin {
                block,
                view,
                user,
                payload: payload.into_bytes(),
            })
        }
        "checkout" => Ok(Request::Checkout {
            block: word(&mut words, "a block name")?,
            view: word(&mut words, "a view type")?,
            user: word(&mut words, "a user name")?,
        }),
        "connect" => Ok(Request::Connect {
            from: oid_word(&mut words, "a source OID `block,view,version`")?,
            to: oid_word(&mut words, "a destination OID `block,view,version`")?,
        }),
        "process" => Ok(Request::ProcessAll),
        "show" => Ok(Request::Show {
            oid: oid_word(&mut words, "an OID `block,view,version`")?,
        }),
        "query" => Ok(Request::Query {
            terms: words.rest().to_string(),
        }),
        "workleft" => Ok(Request::WorkLeft {
            oid: oid_word(&mut words, "an OID `block,view,version`")?,
            prop: word(&mut words, "a state property name")?,
        }),
        "summary" => Ok(Request::Summary {
            prop: word(&mut words, "a state property name")?,
        }),
        "snapshot" => Ok(Request::Snapshot {
            name: word(&mut words, "a snapshot name")?,
            root: oid_word(&mut words, "a root OID `block,view,version`")?,
        }),
        "snapshots" => Ok(Request::ListSnapshots),
        "journal" => Ok(Request::EnableJournal {
            dir: word(&mut words, "a durability directory")?,
            every: u64_or(
                &mut words,
                "a checkpoint interval (ops)",
                DEFAULT_CHECKPOINT_EVERY,
            )?,
        }),
        "checkpoint" => Ok(Request::Checkpoint),
        "recover" => Ok(Request::Recover {
            dir: word(&mut words, "a durability directory")?,
            every: u64_or(
                &mut words,
                "a checkpoint interval (ops)",
                DEFAULT_CHECKPOINT_EVERY,
            )?,
        }),
        "replay" => {
            let num = |words: &mut Cursor<'_>, what| {
                words.parse_with(what, |w| {
                    w.parse::<u64>().map_err(|_| "not a number".to_string())
                })
            };
            Ok(Request::Replay {
                epoch: num(&mut words, "a journal epoch")?,
                seq: num(&mut words, "a journal sequence number")?,
            })
        }
        "promote" => {
            let dir = word(&mut words, "a durability directory")?;
            let term = words.parse_with("a leadership term", |w| {
                w.parse::<u64>().map_err(|_| "not a number".to_string())
            })?;
            Ok(Request::Promote {
                dir,
                every: u64_or(
                    &mut words,
                    "a checkpoint interval (ops)",
                    DEFAULT_CHECKPOINT_EVERY,
                )?,
                term,
            })
        }
        "fence" => Ok(Request::Fence {
            term: words.parse_with("a leadership term", |w| {
                w.parse::<u64>().map_err(|_| "not a number".to_string())
            })?,
        }),
        "trace" => Ok(Request::Trace {
            mode: words.parse_with("a trace mode (`on`, `off` or `get`)", |w| match w {
                "on" => Ok(TraceMode::On),
                "off" => Ok(TraceMode::Off),
                "get" => Ok(TraceMode::Get),
                other => Err(format!("unknown trace mode `{other}`")),
            })?,
        }),
        "freeze" => Ok(Request::Freeze {
            view: word(&mut words, "a view name")?,
        }),
        "thaw" => Ok(Request::Thaw {
            view: word(&mut words, "a view name")?,
        }),
        "save" => Ok(Request::SaveProject {
            path: word(&mut words, "a file path")?,
        }),
        "load" => Ok(Request::LoadProject {
            path: word(&mut words, "a file path")?,
        }),
        "dump" => Ok(Request::Dump),
        "dot" => Ok(Request::Dot),
        "audit" => Ok(Request::Audit),
        "stat" => Ok(Request::Stat),
        "workers" => Ok(Request::SetWaveWorkers {
            workers: words.parse_with("a wave worker count", |w| {
                w.parse::<u64>().map_err(|_| "not a number".to_string())
            })?,
        }),
        "retry" => {
            let script = match word(&mut words, "a script name (`-` = default policy)")?.as_str() {
                "-" => None,
                name => Some(name.to_string()),
            };
            let num = |words: &mut Cursor<'_>, what| {
                words.parse_with(what, |w| {
                    w.parse::<u64>().map_err(|_| "not a number".to_string())
                })
            };
            Ok(Request::SetRetryPolicy {
                script,
                max_retries: num(&mut words, "a retry count")?,
                base_delay_ms: num(&mut words, "a base delay (ms)")?,
                multiplier: num(&mut words, "a backoff multiplier")?,
                timeout_ms: num(&mut words, "a per-attempt timeout (ms)")?,
            })
        }
        "pump" => Ok(Request::PumpInvocations),
        "project" => {
            let project = word(&mut words, "a project name")?;
            let create = if words.at_end() {
                false
            } else {
                words.parse_with("`new` or end of line", |w| match w {
                    "new" => Ok(true),
                    _ => Err("not `new`".to_string()),
                })?
            };
            Ok(Request::Attach { project, create })
        }
        "projects" => Ok(Request::ListProjects),
        other => Err(ApiError::UnknownCommand {
            at: at as u64,
            found: other.to_string(),
        }),
    }
}

/// The slice of a request the renderer needs after the request itself
/// has moved into the service: presentation context only (paths, views,
/// endpoints) — never payloads or blueprint sources, so extracting it is
/// O(1) in the design data.
enum Presented {
    Post,
    Retry {
        script: Option<String>,
    },
    Checkout {
        block: String,
        view: String,
        user: String,
    },
    Connect {
        from: Oid,
        to: Oid,
    },
    Freeze {
        view: String,
    },
    Thaw {
        view: String,
    },
    Save {
        path: String,
    },
    Journal {
        dir: String,
        every: u64,
    },
    Load {
        path: String,
    },
    Trace {
        mode: TraceMode,
    },
    Dump,
    Other,
}

fn presented(request: &Request) -> Presented {
    match request {
        Request::Post { .. } => Presented::Post,
        Request::SetRetryPolicy { script, .. } => Presented::Retry {
            script: script.clone(),
        },
        Request::Checkout { block, view, user } => Presented::Checkout {
            block: block.clone(),
            view: view.clone(),
            user: user.clone(),
        },
        Request::Connect { from, to } => Presented::Connect {
            from: from.clone(),
            to: to.clone(),
        },
        Request::Freeze { view } => Presented::Freeze { view: view.clone() },
        Request::Thaw { view } => Presented::Thaw { view: view.clone() },
        Request::SaveProject { path } => Presented::Save { path: path.clone() },
        Request::EnableJournal { dir, every } => Presented::Journal {
            dir: dir.clone(),
            every: *every,
        },
        Request::LoadProject { path } => Presented::Load { path: path.clone() },
        Request::Trace { mode } => Presented::Trace { mode: *mode },
        Request::Dump => Presented::Dump,
        _ => Presented::Other,
    }
}

/// Renders a structured [`Response`] as the shell's legacy text, using
/// the presentation context (paths, views, …) taken from the request.
fn render(shown: &Presented, response: Response) -> ShellOutput {
    let out = match (shown, response) {
        (_, Response::Error(e)) => return ShellOutput::Error(format!("error: {e}")),
        (_, Response::Blueprint { name }) => format!("blueprint `{name}` initialized"),
        (Presented::Post, Response::Ok) => "queued".to_string(),
        (Presented::Retry { script }, Response::Ok) => match script {
            Some(s) => format!("retry policy set for `{s}`"),
            None => "default retry policy set".to_string(),
        },
        (Presented::Checkout { block, view, user }, Response::Ok) => {
            format!("{block}.{view} checked out by {user}")
        }
        (Presented::Connect { from, to }, Response::Ok) => format!("linked {from} -> {to}"),
        (Presented::Freeze { view }, Response::Ok) => format!("view `{view}` frozen"),
        (Presented::Thaw { view }, Response::Ok) => format!("view `{view}` thawed"),
        (Presented::Save { path }, Response::Ok) => format!("project saved to {path}"),
        (Presented::Trace { mode }, Response::Ok) => format!("tracing {mode}"),
        (_, Response::Created { oid }) => format!("created {oid} (ckin queued)"),
        (
            _,
            Response::Processed {
                events,
                deliveries,
                scripts,
                ..
            },
        ) => format!("processed {events} events ({deliveries} deliveries, {scripts} scripts)"),
        (_, Response::Refreshed { written }) => format!("refreshed {written} let propert(ies)"),
        (_, Response::Props { oid, props }) => {
            let mut out = format!("{oid}\n");
            for (name, value) in props {
                let _ = writeln!(out, "  {name} = {value}");
            }
            out.trim_end().to_string()
        }
        (_, Response::Hits { oids }) => {
            let mut out = format!("{} match(es)\n", oids.len());
            for oid in oids {
                let _ = writeln!(out, "  {oid}");
            }
            out.trim_end().to_string()
        }
        (_, Response::Work { target, items }) => {
            let mut out = format!("{} item(s) blocking {target}\n", items.len());
            for item in items {
                let current = item
                    .current
                    .map(|v| v.as_atom())
                    .unwrap_or_else(|| "<unset>".into());
                let _ = writeln!(out, "  {} ({} = {current})", item.oid, item.prop);
            }
            out.trim_end().to_string()
        }
        (_, Response::ViewSummary { rows }) => {
            let rows: Vec<Vec<String>> = rows
                .into_iter()
                .map(|r| {
                    vec![
                        r.view,
                        r.total.to_string(),
                        r.satisfied.to_string(),
                        r.untracked.to_string(),
                    ]
                })
                .collect();
            metrics::table(&["view", "total", "satisfied", "untracked"], &rows)
                .trim_end()
                .to_string()
        }
        (_, Response::Snapped { name, oids }) => {
            format!("snapshot `{name}` pinned {oids} OIDs")
        }
        (_, Response::SnapshotList { entries }) => {
            let mut out = String::new();
            for e in entries {
                let _ = writeln!(
                    out,
                    "  {}: {} OIDs, {} links, {} dangling",
                    e.name, e.oids, e.links, e.dangling
                );
            }
            if out.is_empty() {
                out = "  (none)".to_string();
            }
            out.trim_end().to_string()
        }
        (Presented::Journal { dir, every }, Response::Epoch { epoch }) => {
            format!("journaling to {dir} (epoch {epoch}, checkpoint every {every} ops)")
        }
        (_, Response::Epoch { epoch }) => format!("checkpoint written (epoch {epoch})"),
        (_, Response::Promoted { epoch, term }) => {
            format!("promoted: leading at epoch {epoch} under term {term}")
        }
        (
            _,
            Response::Recovered {
                epoch,
                snapshot_oids,
                replayed_ops,
                torn_tail,
                stale_journal,
            },
        ) => {
            let mut out = format!(
                "recovered epoch {epoch}: {snapshot_oids} OIDs from snapshot, {replayed_ops} journal ops replayed"
            );
            if let Some(reason) = torn_tail {
                let _ = write!(out, " (torn tail ignored: {reason})");
            }
            if stale_journal {
                out.push_str(" (stale journal ignored)");
            }
            out
        }
        (Presented::Load { path }, Response::Loaded { oids }) => {
            format!("project restored from {path} ({oids} OIDs)")
        }
        (_, Response::Loaded { oids }) => format!("project restored ({oids} OIDs)"),
        (Presented::Dump, Response::Text { text }) => text.trim_end().to_string(),
        (_, Response::Text { text }) => text,
        (
            _,
            Response::Replayed {
                epoch,
                seq,
                oids,
                image,
            },
        ) => {
            let mut out =
                format!("replayed cursor (epoch {epoch}, seq {seq}): {oids} OIDs\n{image}");
            out.truncate(out.trim_end().len());
            out
        }
        (_, Response::Trace { records }) => {
            if records.is_empty() {
                "(no trace records)".to_string()
            } else {
                records.join("\n")
            }
        }
        (_, Response::Audit { counters: s }) => {
            let mut out = format!(
                "deliveries={} assignments={} lets={} scripts={} posts={} propagations={} cycles={} templates={}",
                s.deliveries,
                s.assignments,
                s.reevaluations,
                s.scripts,
                s.posts,
                s.propagations,
                s.cycle_skips,
                s.templates
            );
            // Invocation-fault counters appear only once nonzero: quiet
            // projects keep the historical audit line byte-identical.
            if s.invoke_retries + s.invoke_timeouts + s.invoke_exhaustions > 0 {
                let _ = write!(
                    out,
                    " inv_retries={} inv_timeouts={} inv_exhaustions={}",
                    s.invoke_retries, s.invoke_timeouts, s.invoke_exhaustions
                );
            }
            out
        }
        (_, Response::Stat { stat }) => {
            let journal = match (stat.journal_epoch, stat.journal_records) {
                (Some(epoch), Some(records)) => {
                    format!(
                        "epoch {epoch}, {records} ops since checkpoint, \
                         cursor=({},{})",
                        stat.cursor_epoch, stat.cursor_seq
                    )
                }
                _ => "off".to_string(),
            };
            let mut out = format!(
                "oids={} links={} pending={} journal={journal} workers={} \
                 inv_pending={} inv_running={} inv_retrying={} inv_failed={}",
                stat.oids,
                stat.links,
                stat.pending_events,
                stat.wave_workers,
                stat.pending_invocations,
                stat.running_invocations,
                stat.retrying_invocations,
                stat.failed_invocations
            );
            // Fleet gauges appear only on a fleet node: single-project
            // servers keep the historical stat line byte-identical.
            if stat.active_projects + stat.resident_projects + stat.activations + stat.evictions > 0
            {
                let _ = write!(
                    out,
                    " active_projects={} resident_projects={} activations={} evictions={}",
                    stat.active_projects, stat.resident_projects, stat.activations, stat.evictions
                );
            }
            // Leadership fields appear once a node has a replication
            // identity (a follower, or any term past the first reign):
            // plain term-1 leaders keep the historical line byte-identical.
            if stat.term > 1 || stat.role != NodeRole::Leader {
                let _ = write!(out, " term={} role={}", stat.term, stat.role);
            }
            out
        }
        (_, Response::Attached { project, created }) => {
            if created {
                format!("attached to new project `{project}`")
            } else {
                format!("attached to project `{project}`")
            }
        }
        (_, Response::Projects { entries }) => {
            if entries.is_empty() {
                "(no projects registered)".to_string()
            } else {
                entries
                    .iter()
                    .map(|e| {
                        format!(
                            "{} {}",
                            e.name,
                            if e.active { "[active]" } else { "[cold]" }
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            }
        }
        (_, Response::Ok) => "ok".to_string(),
        // Response is non_exhaustive-proof: render the codec form rather
        // than lose information.
        (_, other) => other.encode(),
    };
    ShellOutput::Text(out)
}

const HELP: &str = r#"
commands:
  init <file>                         load a BluePrint rule file
  checkin <block> <view> <user> [..]  promote design data (queues ckin)
  checkout <block> <view> <user>      reserve a chain
  connect <oid> <oid>                 relate two OIDs (template-filled)
  postEvent <ev> <up|down> <oid> [..] queue a design event (wire format)
  process                             drain the event queue
  show <oid>                          properties of one OID
  query <terms..>                     e.g. `view=schematic stale.uptodate latest`
  workleft <oid> <prop>               what blocks this OID's planned state
  summary <prop>                      per-view state counts
  snapshot <name> <oid>               pin the closure as a Configuration
  snapshots                           list stored configurations
  journal <dir> [every]               enable op-journal durability under dir
  checkpoint                          fold the journal into a fresh snapshot
  recover <dir> [every]               restore from snapshot + journal tail
  replay <epoch> <seq>                reconstruct the historical image at a
                                      journal cursor (see `stat`'s cursor)
  promote <dir> <term> [every]        take leadership under a strictly
                                      higher term, journaling under dir
  fence <term>                        depose this node: mutations refuse
                                      until a promotion above <term>
  trace on|off|get                    per-wave execution tracing: retain,
                                      drop, or drain captured records
  freeze <view> / thaw <view>         project policy: forbid/allow check-ins
  save <file>                         persist database + payloads
  load <file>                         restore database + payloads
  stat                                server statistics
  workers <n>                         shard waves across n worker threads
                                      (default: hardware parallelism; 1 = sequential)
  retry <script|-> <n> <ms> <m> <ms>  tool retry policy: retries, base
                                      delay, backoff multiplier, timeout
                                      (`-` sets the default policy)
  pump                                absorb finished tool invocations
  project <name> [new]                attach this session to a fleet
                                      project (`new` registers it first)
  projects                            list the fleet's projects
  dump                                full textual database dump
  dot                                 Graphviz dump of the design state
  audit                               engine counters
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn edtc_shell() -> Shell {
        let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        Shell::with_server(server)
    }

    #[test]
    fn project_commands_parse_and_single_node_says_no_fleet() {
        // Parsing: `project <name> [new]` / `projects` become the typed
        // attach requests...
        assert_eq!(
            parse_command("project asic9").unwrap(),
            Request::Attach {
                project: "asic9".into(),
                create: false,
            }
        );
        assert_eq!(
            parse_command("project asic9 new").unwrap(),
            Request::Attach {
                project: "asic9".into(),
                create: true,
            }
        );
        assert_eq!(parse_command("projects").unwrap(), Request::ListProjects);
        // ...and a single-project node answers with the structured
        // `no-fleet` taxonomy rather than a parse error.
        let mut sh = edtc_shell();
        let out = sh.execute("project asic9");
        assert!(out.is_error());
        assert!(out.text().contains("fleet"), "{out:?}");
        let out = sh.execute("projects");
        assert!(out.is_error());
        assert!(out.text().contains("fleet"), "{out:?}");
    }

    #[test]
    fn attached_and_projects_render() {
        let shown = Presented::Other;
        let out = render(
            &shown,
            Response::Attached {
                project: "asic9".into(),
                created: true,
            },
        );
        assert_eq!(out.text(), "attached to new project `asic9`");
        let out = render(
            &shown,
            Response::Projects {
                entries: vec![
                    blueprint_core::engine::api::ProjectEntry {
                        name: "asic9".into(),
                        active: true,
                    },
                    blueprint_core::engine::api::ProjectEntry {
                        name: "fpga".into(),
                        active: false,
                    },
                ],
            },
        );
        assert_eq!(out.text(), "asic9 [active]\nfpga [cold]");
        let out = render(&shown, Response::Projects { entries: vec![] });
        assert_eq!(out.text(), "(no projects registered)");
    }

    #[test]
    fn stat_line_hides_fleet_gauges_off_fleet() {
        // A single-project server's stat line must stay byte-identical
        // to the pre-fleet rendering (no fleet gauges).
        let mut sh = edtc_shell();
        let out = sh.execute("stat");
        assert!(!out.text().contains("active_projects"), "{out:?}");
    }

    #[test]
    fn uninitialized_shell_demands_init() {
        let mut sh = Shell::new();
        let out = sh.execute("process");
        assert!(out.is_error());
        assert!(out.text().contains("init"));
    }

    #[test]
    fn comments_and_blanks_are_silent() {
        let mut sh = edtc_shell();
        assert_eq!(sh.execute("# a comment"), ShellOutput::Silent);
        assert_eq!(sh.execute("   "), ShellOutput::Silent);
    }

    #[test]
    fn checkin_show_roundtrip() {
        let mut sh = edtc_shell();
        let out = sh.execute("checkin CPU HDL_model yves module cpu");
        assert!(out.text().contains("CPU,HDL_model,1"), "{out:?}");
        sh.execute("process");
        let out = sh.execute("show CPU,HDL_model,1");
        assert!(out.text().contains("sim_result = bad"), "{out:?}");
        assert!(out.text().contains("uptodate = true"));
    }

    #[test]
    fn post_event_wire_line_works_verbatim() {
        let mut sh = edtc_shell();
        sh.execute("checkin reg verilog_ wrapperuser x");
        // Use a tracked view for the real test:
        sh.execute("checkin CPU HDL_model yves module");
        sh.execute("process");
        let out = sh.execute("postEvent hdl_sim up CPU,HDL_model,1 \"logic sim passed\"");
        assert!(!out.is_error(), "{out:?}");
        sh.execute("process");
        let out = sh.execute("show CPU,HDL_model,1");
        assert!(out.text().contains("sim_result = logic sim passed"));
    }

    #[test]
    fn full_scripted_session() {
        let mut sh = edtc_shell();
        let outputs = sh.run_script(
            r#"
            # the §3.4 scenario, scripted
            checkin CPU HDL_model designers module cpu v1
            checkin CPU schematic synth cpu schematic
            connect CPU,HDL_model,1 CPU,schematic,1
            process
            checkin CPU HDL_model designers module cpu v2
            process
            query stale.uptodate
            workleft CPU,schematic,1 uptodate
            summary uptodate
            audit
            "#,
        );
        assert!(outputs.iter().all(|o| !o.is_error()), "{outputs:?}");
        let query_out = &outputs[6];
        assert!(query_out.text().contains("1 match(es)"), "{query_out:?}");
        assert!(query_out.text().contains("CPU,schematic,1"));
        let summary_out = &outputs[8];
        assert!(summary_out.text().contains("schematic"));
    }

    #[test]
    fn freeze_blocks_checkin_until_thaw() {
        let mut sh = edtc_shell();
        sh.execute("freeze layout");
        let out = sh.execute("checkin CPU layout mask data");
        assert!(out.is_error());
        assert!(out.text().contains("frozen"));
        sh.execute("thaw layout");
        let out = sh.execute("checkin CPU layout mask data");
        assert!(!out.is_error());
    }

    #[test]
    fn snapshots_are_stored_and_listed() {
        let mut sh = edtc_shell();
        sh.run_script(
            "checkin CPU HDL_model d x\ncheckin CPU schematic d y\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess",
        );
        let out = sh.execute("snapshot step1 CPU,HDL_model,1");
        assert!(out.text().contains("pinned 2 OIDs"), "{out:?}");
        let out = sh.execute("snapshots");
        assert!(out.text().contains("step1"));
    }

    #[test]
    fn dot_output_is_graphviz() {
        let mut sh = edtc_shell();
        sh.run_script("checkin CPU HDL_model d x\nprocess");
        let out = sh.execute("dot");
        assert!(out.text().starts_with("digraph"));
    }

    #[test]
    fn unknown_command_is_reported() {
        let mut sh = edtc_shell();
        let out = sh.execute("frobnicate");
        assert!(out.is_error());
        assert!(out.text().contains("unknown command"));
    }

    #[test]
    fn usage_errors_carry_positions() {
        let mut sh = edtc_shell();
        // Missing argument: position is end-of-line, expectation is named.
        let out = sh.execute("workleft CPU,HDL_model,1");
        assert!(out.is_error());
        assert!(out.text().contains("at byte 24"), "{out:?}");
        assert!(out.text().contains("state property"), "{out:?}");
        assert!(out.text().contains("end of line"), "{out:?}");
        // Malformed token: position points at the token itself.
        let out = sh.execute("connect not-an-oid CPU,HDL_model,1");
        assert!(out.is_error());
        assert!(out.text().contains("at byte 8"), "{out:?}");
        assert!(out.text().contains("not-an-oid"), "{out:?}");
        // Bad wire direction: position from the wire grammar.
        let out = sh.execute("postEvent ckin sideways CPU,HDL_model,1");
        assert!(out.is_error());
        assert!(out.text().contains("at byte 15"), "{out:?}");
        assert!(out.text().contains("sideways"), "{out:?}");
    }

    #[test]
    fn stat_reports_server_state() {
        let mut sh = edtc_shell();
        sh.run_script("checkin CPU HDL_model d x\nprocess");
        let out = sh.execute("stat");
        assert!(out.text().contains("oids=1"), "{out:?}");
        assert!(out.text().contains("journal=off"), "{out:?}");
    }

    #[test]
    fn stat_reports_invocation_counters() {
        let mut sh = edtc_shell();
        let out = sh.execute("stat");
        assert!(out.text().contains("inv_pending=0"), "{out:?}");
        assert!(out.text().contains("inv_failed=0"), "{out:?}");
    }

    #[test]
    fn retry_command_sets_policies_and_pump_drains() {
        let mut sh = edtc_shell();
        let out = sh.execute("retry - 5 10 2 30000");
        assert_eq!(out.text(), "default retry policy set", "{out:?}");
        let out = sh.execute("retry hdl_sim 0 1 1 1000");
        assert_eq!(out.text(), "retry policy set for `hdl_sim`", "{out:?}");
        let (default_policy, overrides) = sh.server().unwrap().retry_policies();
        assert_eq!(default_policy.max_retries, 5);
        assert_eq!(
            overrides,
            vec![(
                "hdl_sim".to_string(),
                blueprint_core::engine::invoke::RetryPolicy {
                    max_retries: 0,
                    base_delay: std::time::Duration::from_millis(1),
                    multiplier: 1,
                    timeout: std::time::Duration::from_millis(1000),
                }
            )]
        );
        // A pump on an idle server is a harmless empty drain.
        let out = sh.execute("pump");
        assert!(out.text().starts_with("processed 0 events"), "{out:?}");
        // Usage errors are positioned like every other command.
        let out = sh.execute("retry - 5 x 2 30000");
        assert!(out.is_error());
        assert!(out.text().contains("base delay"), "{out:?}");
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = Shell::new();
        let out = sh.execute("help");
        assert!(out.text().contains("postEvent"));
        assert!(out.text().contains("snapshot"));
        assert!(out.text().contains("replay"));
        assert!(out.text().contains("trace"));
    }

    #[test]
    fn trace_captures_and_drains_records() {
        let mut sh = edtc_shell();
        assert_eq!(sh.execute("trace on").text(), "tracing on");
        sh.run_script("checkin CPU HDL_model yves module\nprocess");
        let out = sh.execute("trace get");
        assert!(out.text().contains("begin ckin"), "{out:?}");
        assert!(out.text().contains("write"), "{out:?}");
        assert!(out.text().contains("end"), "{out:?}");
        // The get drained: a second poll is empty, retention stays on.
        assert_eq!(sh.execute("trace get").text(), "(no trace records)");
        assert_eq!(sh.execute("trace off").text(), "tracing off");
        // With retention off, waves leave no records.
        sh.run_script("checkin CPU HDL_model yves v2\nprocess");
        assert_eq!(sh.execute("trace get").text(), "(no trace records)");
        // Usage errors are positioned.
        let out = sh.execute("trace sideways");
        assert!(out.is_error());
        assert!(out.text().contains("sideways"), "{out:?}");
    }

    #[test]
    fn replay_requires_journaling() {
        let mut sh = edtc_shell();
        let out = sh.execute("replay 1 0");
        assert!(out.is_error());
        assert!(out.text().contains("journal"), "{out:?}");
    }

    #[test]
    fn init_from_file_works() {
        let dir = std::env::temp_dir().join("damocles-shell-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bp.bp");
        std::fs::write(&path, "blueprint filetest view v endview endblueprint").unwrap();
        let mut sh = Shell::new();
        let out = sh.execute(&format!("init {}", path.display()));
        assert!(out.text().contains("filetest"), "{out:?}");
        let out = sh.execute("init /nonexistent/path.bp");
        assert!(out.is_error());
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    fn edtc_shell() -> Shell {
        let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        Shell::with_server(server)
    }

    #[test]
    fn journal_checkpoint_recover_commands() {
        let dir = std::env::temp_dir().join("damocles-shell-journal");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();

        let mut sh = edtc_shell();
        let out = sh.execute(&format!("journal {dir_s} 4096"));
        assert!(out.text().contains("journaling"), "{out:?}");
        sh.run_script(
            "checkin CPU HDL_model yves module cpu\ncheckin CPU schematic synth cell\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess",
        );
        let out = sh.execute("checkpoint");
        assert!(out.text().contains("epoch"), "{out:?}");
        // More work after the checkpoint lands in the journal tail.
        sh.run_script("checkin CPU HDL_model yves module v2\nprocess");
        let image = damocles_meta::persist::save(sh.server().unwrap().db());

        // A fresh shell recovers snapshot + tail and keeps tracking.
        let mut sh2 = edtc_shell();
        let out = sh2.execute(&format!("recover {dir_s}"));
        assert!(out.text().contains("recovered"), "{out:?}");
        assert!(out.text().contains("journal ops replayed"), "{out:?}");
        assert_eq!(
            damocles_meta::persist::save(sh2.server().unwrap().db()),
            image
        );
        let out = sh2.execute("show CPU,schematic,1");
        assert!(out.text().contains("uptodate = false"), "{out:?}");

        // Bad invocations are user errors, not crashes.
        assert!(sh2.execute("journal").is_error());
        assert!(sh2.execute("recover /nonexistent/dir").is_error());
        let mut fresh = edtc_shell();
        assert!(fresh.execute("checkpoint").is_error());
    }

    #[test]
    fn replay_reconstructs_historical_images() {
        let dir = std::env::temp_dir().join("damocles-shell-replay");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();

        let mut sh = edtc_shell();
        sh.execute(&format!("journal {dir_s} 4096"));
        sh.run_script("checkin CPU HDL_model yves module cpu\nprocess");
        // The live cursor from `stat` replays to the live image.
        let stat = sh.execute("stat");
        let cursor = stat
            .text()
            .split("cursor=(")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .expect("stat reports a cursor")
            .to_string();
        let (epoch, seq) = cursor.split_once(',').expect("epoch,seq");
        let out = sh.execute(&format!("replay {epoch} {seq}"));
        assert!(!out.is_error(), "{out:?}");
        assert!(out.text().contains("replayed cursor"), "{out:?}");
        let live = blueprint_core::engine::server::ProjectServer::project_image(
            sh.server().expect("initialized"),
        );
        assert!(out.text().ends_with(live.trim_end()), "{out:?}");
        // Seq 0 is the bare snapshot (empty project here): time travel.
        let out = sh.execute(&format!("replay {epoch} 0"));
        assert!(out.text().contains("0 OIDs"), "{out:?}");
        // A cursor beyond the journal is a loud, structured error.
        let out = sh.execute(&format!("replay {epoch} 999999"));
        assert!(out.is_error());
        assert!(out.text().contains("beyond"), "{out:?}");
        // As is an epoch no longer on disk.
        let out = sh.execute("replay 999 0");
        assert!(out.is_error());
        assert!(out.text().contains("epoch"), "{out:?}");
    }

    #[test]
    fn save_and_load_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("damocles-shell-persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("proj.ddb");
        let path_s = path.display().to_string();

        let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        let mut sh = Shell::with_server(server);
        sh.run_script(
            "checkin CPU HDL_model yves module cpu\ncheckin CPU schematic synth cell\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess",
        );
        let out = sh.execute(&format!("save {path_s}"));
        assert!(!out.is_error(), "{out:?}");

        // A fresh shell restores the project and continues tracking.
        let server2 = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        let mut sh2 = Shell::with_server(server2);
        let out = sh2.execute(&format!("load {path_s}"));
        assert!(out.text().contains("2 OIDs"), "{out:?}");
        let out = sh2.execute("show CPU,schematic,1");
        assert!(out.text().contains("uptodate = true"), "{out:?}");
        // Change propagation still works on the restored database.
        sh2.run_script("checkin CPU HDL_model yves module v2\nprocess");
        let out = sh2.execute("show CPU,schematic,1");
        assert!(out.text().contains("uptodate = false"), "{out:?}");
    }
}

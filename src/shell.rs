//! The DAMOCLES command shell: the designer/administrator front-end the
//! paper's wrapper scripts talk to.
//!
//! One command per line; `#` starts a comment. Commands:
//!
//! | command | effect |
//! |---|---|
//! | `init <file>` / `initsrc … endblueprint` | load a BluePrint (§3.2) |
//! | `checkin <block> <view> <user> [payload…]` | promote design data |
//! | `checkout <block> <view> <user>` | reserve a chain |
//! | `connect <block,view,ver> <block,view,ver>` | relate two OIDs |
//! | `postEvent <event> <up\|down> <oid> ["args"…]` | the §3.1 wire line |
//! | `process` | drain the event queue |
//! | `show <block,view,ver>` | properties of one OID |
//! | `query <terms…>` | run a `qlang` query (e.g. `stale.uptodate latest`) |
//! | `workleft <block,view,ver> <prop>` | §3.1 "what still needs work" |
//! | `summary <prop>` | per-view state summary |
//! | `snapshot <name> <block,view,ver>` | store a closure Configuration |
//! | `snapshots` | list stored configurations |
//! | `journal <dir> [every]` | enable op-journal durability under `dir` |
//! | `checkpoint` | fold the journal into a fresh snapshot |
//! | `recover <dir> [every]` | restore from snapshot + journal tail |
//! | `freeze <view>` / `thaw <view>` | project policy: frozen views |
//! | `dot` | DOT dump of the live design state |
//! | `audit` | engine counters |
//! | `help` | this table |
//!
//! The shell is a thin, line-oriented wrapper over the public API, so
//! everything it does is equally scriptable from Rust.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default checkpoint fold interval for the `journal`/`recover` commands.
const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

use blueprint_core::engine::server::ProjectServer;
use blueprint_core::EngineError;
use damocles_flows::{metrics, viz};
use damocles_meta::qlang::Query;
use damocles_meta::{Configuration, ConfigurationBuilder, Oid, SnapshotRule};

/// A stateful command shell around a project server.
pub struct Shell {
    server: Option<ProjectServer>,
    snapshots: BTreeMap<String, Configuration>,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one shell line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellOutput {
    /// Nothing to say (comment, blank line).
    Silent,
    /// Normal output text.
    Text(String),
    /// A user-level error (bad command, engine error) — the shell keeps
    /// running.
    Error(String),
}

impl ShellOutput {
    /// The rendered text, empty when silent.
    pub fn text(&self) -> &str {
        match self {
            ShellOutput::Silent => "",
            ShellOutput::Text(t) | ShellOutput::Error(t) => t,
        }
    }

    /// Whether this is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, ShellOutput::Error(_))
    }
}

impl Shell {
    /// A shell with no BluePrint loaded yet.
    pub fn new() -> Self {
        Shell {
            server: None,
            snapshots: BTreeMap::new(),
        }
    }

    /// A shell pre-initialized with a server.
    pub fn with_server(server: ProjectServer) -> Self {
        Shell {
            server: Some(server),
            snapshots: BTreeMap::new(),
        }
    }

    /// The server, if initialized.
    pub fn server(&self) -> Option<&ProjectServer> {
        self.server.as_ref()
    }

    /// Executes one command line.
    pub fn execute(&mut self, line: &str) -> ShellOutput {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return ShellOutput::Silent;
        }
        match self.dispatch(line) {
            Ok(out) => out,
            Err(e) => ShellOutput::Error(format!("error: {e}")),
        }
    }

    /// Executes a whole script, collecting non-silent outputs.
    pub fn run_script(&mut self, script: &str) -> Vec<ShellOutput> {
        script
            .lines()
            .map(|l| self.execute(l))
            .filter(|o| !matches!(o, ShellOutput::Silent))
            .collect()
    }

    fn dispatch(&mut self, line: &str) -> Result<ShellOutput, EngineError> {
        let mut words = line.split_whitespace();
        let command = words.next().expect("non-empty line");
        match command {
            "help" => Ok(ShellOutput::Text(HELP.trim().to_string())),
            "init" => {
                let path = words
                    .next()
                    .ok_or_else(|| invalid("init needs a file path"))?;
                let source = std::fs::read_to_string(path)
                    .map_err(|e| invalid(&format!("cannot read {path}: {e}")))?;
                self.server = Some(ProjectServer::from_source(&source)?);
                Ok(ShellOutput::Text(format!(
                    "blueprint `{}` initialized",
                    self.server.as_ref().expect("just set").blueprint().name
                )))
            }
            "postEvent" => {
                let server = self.need_server()?;
                server.post_line(line, "shell")?;
                Ok(ShellOutput::Text("queued".to_string()))
            }
            "checkin" => {
                let server = self.need_server()?;
                let (block, view, user) = three(&mut words, "checkin <block> <view> <user>")?;
                let payload: String = words.collect::<Vec<_>>().join(" ");
                let oid = server.checkin(&block, &view, &user, payload.into_bytes())?;
                Ok(ShellOutput::Text(format!("created {oid} (ckin queued)")))
            }
            "checkout" => {
                let server = self.need_server()?;
                let (block, view, user) = three(&mut words, "checkout <block> <view> <user>")?;
                server.checkout(&block, &view, &user)?;
                Ok(ShellOutput::Text(format!(
                    "{block}.{view} checked out by {user}"
                )))
            }
            "connect" => {
                let server = self.need_server()?;
                let from = parse_oid(words.next(), "connect needs two OIDs")?;
                let to = parse_oid(words.next(), "connect needs two OIDs")?;
                server.connect_oids(&from, &to)?;
                Ok(ShellOutput::Text(format!("linked {from} -> {to}")))
            }
            "process" => {
                let server = self.need_server()?;
                let report = server.process_all()?;
                Ok(ShellOutput::Text(format!(
                    "processed {} events ({} deliveries, {} scripts)",
                    report.events, report.deliveries, report.scripts
                )))
            }
            "show" => {
                let server = self.need_server_ref()?;
                let oid = parse_oid(words.next(), "show needs an OID")?;
                let id = server.resolve(&oid)?;
                let props = server.db().props(id).map_err(EngineError::Meta)?;
                let mut out = format!("{oid}\n");
                for (name, value) in props.iter() {
                    let _ = writeln!(out, "  {name} = {value}");
                }
                Ok(ShellOutput::Text(out.trim_end().to_string()))
            }
            "query" => {
                let server = self.need_server_ref()?;
                let terms: String = words.collect::<Vec<_>>().join(" ");
                let query: Query = terms.parse().map_err(EngineError::Meta)?;
                let hits = query.run(server.db());
                let mut out = format!("{} match(es)\n", hits.len());
                for id in hits {
                    let _ = writeln!(out, "  {}", server.db().oid(id).map_err(EngineError::Meta)?);
                }
                Ok(ShellOutput::Text(out.trim_end().to_string()))
            }
            "workleft" => {
                let server = self.need_server_ref()?;
                let oid = parse_oid(words.next(), "workleft needs an OID")?;
                let prop = words
                    .next()
                    .ok_or_else(|| invalid("workleft needs a state property"))?;
                let id = server.resolve(&oid)?;
                let work = server
                    .query()
                    .work_remaining(id, prop)
                    .map_err(EngineError::Meta)?;
                let mut out = format!("{} item(s) blocking {oid}\n", work.len());
                for item in work {
                    let current = item
                        .blocking
                        .1
                        .map(|v| v.as_atom())
                        .unwrap_or_else(|| "<unset>".into());
                    let _ = writeln!(out, "  {} ({} = {current})", item.oid, item.blocking.0);
                }
                Ok(ShellOutput::Text(out.trim_end().to_string()))
            }
            "summary" => {
                let server = self.need_server_ref()?;
                let prop = words
                    .next()
                    .ok_or_else(|| invalid("summary needs a property name"))?;
                let rows: Vec<Vec<String>> = server
                    .query()
                    .summary(prop)
                    .into_iter()
                    .map(|s| {
                        vec![
                            s.view,
                            s.total.to_string(),
                            s.satisfied.to_string(),
                            s.untracked.to_string(),
                        ]
                    })
                    .collect();
                Ok(ShellOutput::Text(
                    metrics::table(&["view", "total", "satisfied", "untracked"], &rows)
                        .trim_end()
                        .to_string(),
                ))
            }
            "snapshot" => {
                let name = words
                    .next()
                    .ok_or_else(|| invalid("snapshot needs a name and an OID"))?
                    .to_string();
                let oid = parse_oid(words.next(), "snapshot needs a root OID")?;
                let server = self.need_server_ref()?;
                let id = server.resolve(&oid)?;
                let snap = ConfigurationBuilder::new(server.db())
                    .traverse(id, SnapshotRule::Closure)
                    .build(name.clone());
                let count = snap.oid_count();
                self.snapshots.insert(name.clone(), snap);
                Ok(ShellOutput::Text(format!(
                    "snapshot `{name}` pinned {count} OIDs"
                )))
            }
            "snapshots" => {
                let server = self.need_server_ref()?;
                let mut out = String::new();
                for (name, snap) in &self.snapshots {
                    let _ = writeln!(
                        out,
                        "  {name}: {} OIDs, {} links, {} dangling",
                        snap.oid_count(),
                        snap.link_count(),
                        snap.dangling(server.db())
                    );
                }
                if out.is_empty() {
                    out = "  (none)".to_string();
                }
                Ok(ShellOutput::Text(out.trim_end().to_string()))
            }
            "journal" => {
                let dir = words
                    .next()
                    .ok_or_else(|| invalid("journal needs a directory"))?
                    .to_string();
                let every: u64 = match words.next() {
                    Some(n) => n
                        .parse()
                        .map_err(|_| invalid(&format!("bad checkpoint interval `{n}`")))?,
                    None => DEFAULT_CHECKPOINT_EVERY,
                };
                let server = self.need_server()?;
                let epoch = server.enable_journal(&dir, every)?;
                Ok(ShellOutput::Text(format!(
                    "journaling to {dir} (epoch {epoch}, checkpoint every {every} ops)"
                )))
            }
            "checkpoint" => {
                let server = self.need_server()?;
                let epoch = server.checkpoint()?;
                Ok(ShellOutput::Text(format!(
                    "checkpoint written (epoch {epoch})"
                )))
            }
            "recover" => {
                let dir = words
                    .next()
                    .ok_or_else(|| invalid("recover needs a directory"))?
                    .to_string();
                let every: u64 = match words.next() {
                    Some(n) => n
                        .parse()
                        .map_err(|_| invalid(&format!("bad checkpoint interval `{n}`")))?,
                    None => DEFAULT_CHECKPOINT_EVERY,
                };
                let server = self.need_server()?;
                let report = server.recover_journal(&dir, every)?;
                let mut out = format!(
                    "recovered epoch {}: {} OIDs from snapshot, {} journal ops replayed",
                    report.epoch, report.snapshot_oids, report.replayed_ops
                );
                if let Some(reason) = &report.torn_tail {
                    let _ = write!(out, " (torn tail ignored: {reason})");
                }
                if report.stale_journal {
                    out.push_str(" (stale journal ignored)");
                }
                Ok(ShellOutput::Text(out))
            }
            "freeze" | "thaw" => {
                let view = words
                    .next()
                    .ok_or_else(|| invalid("freeze/thaw needs a view name"))?
                    .to_string();
                let freezing = command == "freeze";
                let server = self.need_server()?;
                if freezing {
                    server.policy_mut().frozen_views.insert(view.clone());
                } else {
                    server.policy_mut().frozen_views.remove(&view);
                }
                Ok(ShellOutput::Text(format!(
                    "view `{view}` {}",
                    if freezing { "frozen" } else { "thawed" }
                )))
            }
            "load" => {
                let path = words
                    .next()
                    .ok_or_else(|| invalid("load needs a file path"))?;
                let image = std::fs::read_to_string(path)
                    .map_err(|e| invalid(&format!("cannot read {path}: {e}")))?;
                let (db, workspace) =
                    damocles_meta::persist::load_project(&image).map_err(EngineError::Meta)?;
                let oids = db.oid_count();
                let server = self.need_server()?;
                server.adopt_project(db, workspace);
                if server.journal_enabled() {
                    // The on-disk journal described the replaced project;
                    // fold immediately so the crash window closes here.
                    server.checkpoint()?;
                }
                Ok(ShellOutput::Text(format!(
                    "project restored from {path} ({oids} OIDs)"
                )))
            }
            "save" => {
                let path = words
                    .next()
                    .ok_or_else(|| invalid("save needs a file path"))?;
                let server = self.need_server_ref()?;
                let image = damocles_meta::persist::save_project(server.db(), server.workspace());
                std::fs::write(path, image)
                    .map_err(|e| invalid(&format!("cannot write {path}: {e}")))?;
                Ok(ShellOutput::Text(format!("project saved to {path}")))
            }
            "dump" => {
                let server = self.need_server_ref()?;
                Ok(ShellOutput::Text(
                    damocles_meta::dump::dump(server.db())
                        .trim_end()
                        .to_string(),
                ))
            }
            "dot" => {
                let server = self.need_server_ref()?;
                Ok(ShellOutput::Text(viz::db_to_dot(server.db(), "uptodate")))
            }
            "audit" => {
                let server = self.need_server_ref()?;
                let s = server.audit().summary();
                Ok(ShellOutput::Text(format!(
                    "deliveries={} assignments={} lets={} scripts={} posts={} propagations={} cycles={} templates={}",
                    s.deliveries,
                    s.assignments,
                    s.reevaluations,
                    s.scripts,
                    s.posts,
                    s.propagations,
                    s.cycle_skips,
                    s.templates
                )))
            }
            other => Err(invalid(&format!("unknown command `{other}` (try `help`)"))),
        }
    }

    fn need_server(&mut self) -> Result<&mut ProjectServer, EngineError> {
        self.server
            .as_mut()
            .ok_or_else(|| invalid("no blueprint loaded; use `init <file>` first"))
    }

    fn need_server_ref(&self) -> Result<&ProjectServer, EngineError> {
        self.server
            .as_ref()
            .ok_or_else(|| invalid("no blueprint loaded; use `init <file>` first"))
    }
}

fn invalid(reason: &str) -> EngineError {
    EngineError::Meta(damocles_meta::MetaError::WireParse {
        reason: reason.to_string(),
        input: String::new(),
    })
}

fn three(
    words: &mut std::str::SplitWhitespace<'_>,
    usage: &str,
) -> Result<(String, String, String), EngineError> {
    match (words.next(), words.next(), words.next()) {
        (Some(a), Some(b), Some(c)) => Ok((a.to_string(), b.to_string(), c.to_string())),
        _ => Err(invalid(usage)),
    }
}

fn parse_oid(word: Option<&str>, usage: &str) -> Result<Oid, EngineError> {
    let word = word.ok_or_else(|| invalid(usage))?;
    word.parse::<Oid>().map_err(EngineError::Meta)
}

const HELP: &str = r#"
commands:
  init <file>                         load a BluePrint rule file
  checkin <block> <view> <user> [..]  promote design data (queues ckin)
  checkout <block> <view> <user>      reserve a chain
  connect <oid> <oid>                 relate two OIDs (template-filled)
  postEvent <ev> <up|down> <oid> [..] queue a design event (wire format)
  process                             drain the event queue
  show <oid>                          properties of one OID
  query <terms..>                     e.g. `view=schematic stale.uptodate latest`
  workleft <oid> <prop>               what blocks this OID's planned state
  summary <prop>                      per-view state counts
  snapshot <name> <oid>               pin the closure as a Configuration
  snapshots                           list stored configurations
  journal <dir> [every]               enable op-journal durability under dir
  checkpoint                          fold the journal into a fresh snapshot
  recover <dir> [every]               restore from snapshot + journal tail
  freeze <view> / thaw <view>         project policy: forbid/allow check-ins
  save <file>                         persist database + payloads
  load <file>                         restore database + payloads
  dump                                full textual database dump
  dot                                 Graphviz dump of the design state
  audit                               engine counters
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn edtc_shell() -> Shell {
        let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        Shell::with_server(server)
    }

    #[test]
    fn uninitialized_shell_demands_init() {
        let mut sh = Shell::new();
        let out = sh.execute("process");
        assert!(out.is_error());
        assert!(out.text().contains("init"));
    }

    #[test]
    fn comments_and_blanks_are_silent() {
        let mut sh = edtc_shell();
        assert_eq!(sh.execute("# a comment"), ShellOutput::Silent);
        assert_eq!(sh.execute("   "), ShellOutput::Silent);
    }

    #[test]
    fn checkin_show_roundtrip() {
        let mut sh = edtc_shell();
        let out = sh.execute("checkin CPU HDL_model yves module cpu");
        assert!(out.text().contains("CPU,HDL_model,1"), "{out:?}");
        sh.execute("process");
        let out = sh.execute("show CPU,HDL_model,1");
        assert!(out.text().contains("sim_result = bad"), "{out:?}");
        assert!(out.text().contains("uptodate = true"));
    }

    #[test]
    fn post_event_wire_line_works_verbatim() {
        let mut sh = edtc_shell();
        sh.execute("checkin reg verilog_ wrapperuser x");
        // Use a tracked view for the real test:
        sh.execute("checkin CPU HDL_model yves module");
        sh.execute("process");
        let out = sh.execute("postEvent hdl_sim up CPU,HDL_model,1 \"logic sim passed\"");
        assert!(!out.is_error(), "{out:?}");
        sh.execute("process");
        let out = sh.execute("show CPU,HDL_model,1");
        assert!(out.text().contains("sim_result = logic sim passed"));
    }

    #[test]
    fn full_scripted_session() {
        let mut sh = edtc_shell();
        let outputs = sh.run_script(
            r#"
            # the §3.4 scenario, scripted
            checkin CPU HDL_model designers module cpu v1
            checkin CPU schematic synth cpu schematic
            connect CPU,HDL_model,1 CPU,schematic,1
            process
            checkin CPU HDL_model designers module cpu v2
            process
            query stale.uptodate
            workleft CPU,schematic,1 uptodate
            summary uptodate
            audit
            "#,
        );
        assert!(outputs.iter().all(|o| !o.is_error()), "{outputs:?}");
        let query_out = &outputs[6];
        assert!(query_out.text().contains("1 match(es)"), "{query_out:?}");
        assert!(query_out.text().contains("CPU,schematic,1"));
        let summary_out = &outputs[8];
        assert!(summary_out.text().contains("schematic"));
    }

    #[test]
    fn freeze_blocks_checkin_until_thaw() {
        let mut sh = edtc_shell();
        sh.execute("freeze layout");
        let out = sh.execute("checkin CPU layout mask data");
        assert!(out.is_error());
        assert!(out.text().contains("frozen"));
        sh.execute("thaw layout");
        let out = sh.execute("checkin CPU layout mask data");
        assert!(!out.is_error());
    }

    #[test]
    fn snapshots_are_stored_and_listed() {
        let mut sh = edtc_shell();
        sh.run_script(
            "checkin CPU HDL_model d x\ncheckin CPU schematic d y\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess",
        );
        let out = sh.execute("snapshot step1 CPU,HDL_model,1");
        assert!(out.text().contains("pinned 2 OIDs"), "{out:?}");
        let out = sh.execute("snapshots");
        assert!(out.text().contains("step1"));
    }

    #[test]
    fn dot_output_is_graphviz() {
        let mut sh = edtc_shell();
        sh.run_script("checkin CPU HDL_model d x\nprocess");
        let out = sh.execute("dot");
        assert!(out.text().starts_with("digraph"));
    }

    #[test]
    fn unknown_command_is_reported() {
        let mut sh = edtc_shell();
        let out = sh.execute("frobnicate");
        assert!(out.is_error());
        assert!(out.text().contains("unknown command"));
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = Shell::new();
        let out = sh.execute("help");
        assert!(out.text().contains("postEvent"));
        assert!(out.text().contains("snapshot"));
    }

    #[test]
    fn init_from_file_works() {
        let dir = std::env::temp_dir().join("damocles-shell-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bp.bp");
        std::fs::write(&path, "blueprint filetest view v endview endblueprint").unwrap();
        let mut sh = Shell::new();
        let out = sh.execute(&format!("init {}", path.display()));
        assert!(out.text().contains("filetest"), "{out:?}");
        let out = sh.execute("init /nonexistent/path.bp");
        assert!(out.is_error());
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    fn edtc_shell() -> Shell {
        let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        Shell::with_server(server)
    }

    #[test]
    fn journal_checkpoint_recover_commands() {
        let dir = std::env::temp_dir().join("damocles-shell-journal");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();

        let mut sh = edtc_shell();
        let out = sh.execute(&format!("journal {dir_s} 4096"));
        assert!(out.text().contains("journaling"), "{out:?}");
        sh.run_script(
            "checkin CPU HDL_model yves module cpu\ncheckin CPU schematic synth cell\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess",
        );
        let out = sh.execute("checkpoint");
        assert!(out.text().contains("epoch"), "{out:?}");
        // More work after the checkpoint lands in the journal tail.
        sh.run_script("checkin CPU HDL_model yves module v2\nprocess");
        let image = damocles_meta::persist::save(sh.server().unwrap().db());

        // A fresh shell recovers snapshot + tail and keeps tracking.
        let mut sh2 = edtc_shell();
        let out = sh2.execute(&format!("recover {dir_s}"));
        assert!(out.text().contains("recovered"), "{out:?}");
        assert!(out.text().contains("journal ops replayed"), "{out:?}");
        assert_eq!(
            damocles_meta::persist::save(sh2.server().unwrap().db()),
            image
        );
        let out = sh2.execute("show CPU,schematic,1");
        assert!(out.text().contains("uptodate = false"), "{out:?}");

        // Bad invocations are user errors, not crashes.
        assert!(sh2.execute("journal").is_error());
        assert!(sh2.execute("recover /nonexistent/dir").is_error());
        let mut fresh = edtc_shell();
        assert!(fresh.execute("checkpoint").is_error());
    }

    #[test]
    fn save_and_load_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("damocles-shell-persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("proj.ddb");
        let path_s = path.display().to_string();

        let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        let mut sh = Shell::with_server(server);
        sh.run_script(
            "checkin CPU HDL_model yves module cpu\ncheckin CPU schematic synth cell\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess",
        );
        let out = sh.execute(&format!("save {path_s}"));
        assert!(!out.is_error(), "{out:?}");

        // A fresh shell restores the project and continues tracking.
        let server2 = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
        let mut sh2 = Shell::with_server(server2);
        let out = sh2.execute(&format!("load {path_s}"));
        assert!(out.text().contains("2 OIDs"), "{out:?}");
        let out = sh2.execute("show CPU,schematic,1");
        assert!(out.text().contains("uptodate = true"), "{out:?}");
        // Change propagation still works on the restored database.
        sh2.run_script("checkin CPU HDL_model yves module v2\nprocess");
        let out = sh2.execute("show CPU,schematic,1");
        assert!(out.text().contains("uptodate = false"), "{out:?}");
    }
}
